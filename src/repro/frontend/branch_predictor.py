"""Direction predictor: a small gshare/bimodal hybrid ("TAGE-lite").

The paper uses TAGE; for the phenomena studied here the predictor only
needs to (a) predict the heavily biased server branches well and (b) leave
a realistic residue of mispredictions, which a gshare-with-bimodal-chooser
achieves.  Both component tables use 2-bit saturating counters.
"""

from __future__ import annotations


class BimodalTable:
    """Direct-mapped table of 2-bit saturating counters."""

    def __init__(self, n_entries: int, init: int = 2):
        if n_entries <= 0 or n_entries & (n_entries - 1):
            raise ValueError("table size must be a positive power of two")
        self.n_entries = n_entries
        self._mask = n_entries - 1
        self._counters = bytearray([init] * n_entries)

    def index(self, key: int) -> int:
        return key & self._mask

    def predict(self, key: int) -> bool:
        return self._counters[key & self._mask] >= 2

    def update(self, key: int, taken: bool) -> None:
        i = key & self._mask
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
        elif c > 0:
            self._counters[i] = c - 1


class DirectionPredictor:
    """gshare + bimodal with a per-PC chooser."""

    def __init__(self, n_entries: int = 16 * 1024, history_bits: int = 12):
        self.bimodal = BimodalTable(n_entries)
        self.gshare = BimodalTable(n_entries)
        self.chooser = BimodalTable(n_entries, init=1)  # favour bimodal cold
        self.history_bits = history_bits
        self._history = 0
        self._hist_mask = (1 << history_bits) - 1
        self.predictions = 0
        self.mispredictions = 0

    def _keys(self, pc: int):
        base = pc >> 2
        return base, base ^ self._history

    def predict(self, pc: int) -> bool:
        k_bim, k_gs = self._keys(pc)
        if self.chooser.predict(k_bim):
            return self.gshare.predict(k_gs)
        return self.bimodal.predict(k_bim)

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and return whether the prediction was correct."""
        k_bim, k_gs = self._keys(pc)
        p_bim = self.bimodal.predict(k_bim)
        p_gs = self.gshare.predict(k_gs)
        use_gshare = self.chooser.predict(k_bim)
        predicted = p_gs if use_gshare else p_bim
        correct = predicted == taken

        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if p_bim != p_gs:
            self.chooser.update(k_bim, p_gs == taken)
        self.bimodal.update(k_bim, taken)
        self.gshare.update(k_gs, taken)
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask
        return correct

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions
