"""Trace-driven frontend simulator: fetch engine, BTB/RAS, predictor, stats."""

from .branch_predictor import BimodalTable, DirectionPredictor
from .config import FrontendConfig
from .engine import HIT, LATE, MISS, FrontendSimulator, simulate
from .l1pb import L1PrefetchBuffer
from .stats import FrontendStats
from .tage import TagePredictor

__all__ = [
    "FrontendConfig",
    "FrontendSimulator",
    "FrontendStats",
    "simulate",
    "HIT",
    "MISS",
    "LATE",
    "DirectionPredictor",
    "TagePredictor",
    "BimodalTable",
    "L1PrefetchBuffer",
]
