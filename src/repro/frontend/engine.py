"""Trace-driven, cycle-approximate frontend simulator.

The simulator advances a single timestamp through the fetch trace.  For
each :class:`~repro.workloads.trace.FetchRecord` it:

1. applies any fills whose data has arrived (MSHR drain);
2. looks up the L1i (and the L1i prefetch buffer, for schemes that use
   one); a full miss stalls for the whole fill latency, a hit on an
   in-flight prefetch stalls only for the *remaining* latency — the
   covered part is what the paper's CMAL metric measures;
3. charges instruction delivery cycles (``ceil(n_instr / width)``);
4. models the terminator branch: direction prediction, BTB lookup for
   taken branches (a miss costs the redirect penalty unless the BTB
   prefetch buffer rescues it), return-address-stack push/pop;
5. hands the access to the attached prefetcher, which may issue prefetch
   requests through :meth:`FrontendSimulator.issue_prefetch`.

Stall cycles that accumulate while a BTB-directed prefetcher has declared
itself blocked on a BTB miss are additionally attributed to *empty-FTQ*
stalls (Table I).
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..btb import BtbPrefetchBuffer, ConventionalBtb, ReturnAddressStack
from ..cfg import Program
from ..isa import CACHE_BLOCK_SIZE, BranchKind, Predecoder, block_base
from ..memory import (
    DynamicallyVirtualizedLlc,
    LastLevelCache,
    LatencyModel,
    MshrFile,
    SetAssociativeCache,
)
from ..workloads import NO_ADDR, Trace
from .branch_predictor import DirectionPredictor
from .config import FrontendConfig
from .eventlog import ScopedEmitter
from .tage import TagePredictor
from .l1pb import L1PrefetchBuffer
from .stats import FrontendStats

#: Demand access outcomes passed to prefetchers.
HIT = "hit"
MISS = "miss"
LATE = "late"                      # in-flight prefetch caught the demand


class FrontendSimulator:
    """One core's frontend running one fetch trace."""

    def __init__(self, trace: Trace, config: Optional[FrontendConfig] = None,
                 prefetcher=None, program: Optional[Program] = None,
                 llc=None, latency: Optional[LatencyModel] = None):
        self.trace = trace
        self.config = config or FrontendConfig()
        self.program = program
        cfg = self.config

        self.l1i = SetAssociativeCache(cfg.l1i_size, cfg.l1i_assoc,
                                       cfg.block_size, name="l1i")
        if llc is not None:
            # Shared LLC slice (multi-core simulation).
            self.llc = llc
        else:
            llc_cls = (DynamicallyVirtualizedLlc if cfg.dv_llc
                       else LastLevelCache)
            self.llc = llc_cls(cfg.llc_size, cfg.llc_assoc, cfg.block_size)
        self.latency = latency if latency is not None \
            else LatencyModel(cfg.latency)
        self.mshr = MshrFile(cfg.mshrs)
        self.btb = ConventionalBtb(cfg.btb_entries, cfg.btb_assoc)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        if cfg.predictor_kind == "tage":
            self.predictor = TagePredictor()
        else:
            self.predictor = DirectionPredictor(cfg.predictor_entries)
        self.stats = FrontendStats()

        self.cycle = 0
        self._demand_index = 0
        #: Timestamp prefetch requests are issued at.  During a demand
        #: access this is the access *start* cycle: the prefetcher's probe
        #: overlaps the demand fetch, exactly as in hardware, which is
        #: what gives even a next-line prefetcher partial timeliness.
        self.prefetch_clock = 0
        #: Set by BTB-directed prefetchers while their runahead is stalled
        #: on a BTB miss; stalls during this window count as empty-FTQ.
        self.runahead_blocked_until = 0

        #: Optional structures installed by prefetchers.
        self.btb_prefetch_buffer: Optional[BtbPrefetchBuffer] = None
        self.l1_prefetch_buffer: Optional[L1PrefetchBuffer] = None

        self._predecoder: Optional[Predecoder] = None
        #: Optional debugging aid: attach an ``EventLog`` to record a
        #: structured stream of simulator events (see frontend.eventlog).
        self.event_log = None
        #: Optional per-component prefetch attribution
        #: (:meth:`enable_component_telemetry`); ``None`` costs nothing.
        self.component_counters = None
        self._pf_sources = {}
        self.datapath = None
        if cfg.model_data:
            from .datapath import DataPathModel
            self.datapath = DataPathModel(self)
        self._call_depth = 0
        #: True when an explicit ``run(fast=True)`` had to fall back to
        #: the generic loop (also surfaced in ``stats.extra``).
        self.fast_path_downgraded = False
        self.prefetcher = prefetcher
        if prefetcher is not None:
            prefetcher.attach(self)

    # ------------------------------------------------------------------
    # services used by prefetchers

    @property
    def demand_index(self) -> int:
        """Index of the record currently being fetched."""
        return self._demand_index

    def emitter(self, source: str) -> ScopedEmitter:
        """A telemetry emitter stamping events with ``source``.

        Bound to this simulator, not to a specific log: it follows a
        later ``sim.event_log = ...`` attachment and is a single ``None``
        check when no log is attached.
        """
        return ScopedEmitter(self, source)

    def enable_component_telemetry(self):
        """Attribute prefetch outcomes to their issuing component.

        Returns the live :class:`~repro.obs.telemetry.ComponentCounters`;
        sources come from ``issue_prefetch(..., source=...)`` (defaulting
        to the attached prefetcher's name).  Disables the batched fast
        path, like any other observer.
        """
        if self.component_counters is None:
            from ..obs.telemetry import ComponentCounters
            self.component_counters = ComponentCounters()
        return self.component_counters

    def predecoder(self) -> Predecoder:
        if self._predecoder is None:
            if self.program is None:
                raise RuntimeError(
                    "this simulation was built without a Program; pass "
                    "program= to FrontendSimulator to enable pre-decoding"
                )
            self._predecoder = self.program.predecoder()
        return self._predecoder

    def lookup_cache(self, addr: int, touch: bool = False) -> bool:
        """Prefetcher-side L1i probe (counted as a cache lookup)."""
        self.stats.cache_lookups += 1
        if self.l1i.lookup(addr, touch=touch) is not None:
            return True
        return (self.l1_prefetch_buffer is not None
                and self.l1_prefetch_buffer.contains(addr))

    def in_flight(self, addr: int) -> bool:
        return block_base(addr) in self.mshr

    def issue_prefetch(self, addr: int, probe_cache: bool = True,
                       delay: int = 0, source: str = "") -> bool:
        """Issue a prefetch for the block containing ``addr``.

        Returns True when a request was actually sent to the memory
        hierarchy.  ``probe_cache=False`` skips the L1i lookup (the caller
        already probed, e.g. through the RLU filter path).  ``delay`` adds
        issue latency for longer prefetch paths, e.g. the Dis prefetcher's
        DisTable-lookup + pre-decode pipeline.  ``source`` names the
        issuing component for telemetry attribution (defaults to the
        attached prefetcher's name when component telemetry is on).
        """
        line = block_base(addr)
        if probe_cache and self.lookup_cache(line):
            return False
        if not probe_cache and self.l1i.contains(line):
            return False
        if line in self.mshr:
            return False
        llc_hit = self.llc.access(line, is_instruction=True)
        at = self.prefetch_clock + delay
        lat = self.latency.request(at, llc_hit=llc_hit)
        entry = self.mshr.issue(line, at, at + lat, is_prefetch=True)
        if entry is None:
            return False
        self.stats.prefetches_issued += 1
        if self.component_counters is not None:
            if not source and self.prefetcher is not None:
                source = self.prefetcher.name
            self.component_counters.on_issue(source)
            self._pf_sources[line] = source
        if self.event_log is not None:
            self.event_log.emit(at, "prefetch", line, f"lat={lat}",
                                source=source)
        return True

    def _pf_source(self, line: int) -> str:
        """Pop the issuing component of a prefetched ``line``."""
        return self._pf_sources.pop(line, "")

    # ------------------------------------------------------------------
    # fills

    def _apply_fill(self, line: int, is_prefetch: bool,
                    fill_latency: int) -> None:
        if is_prefetch and self.l1_prefetch_buffer is not None:
            victim = self.l1_prefetch_buffer.fill(line, fill_latency)
            if victim is not None:
                self.stats.prefetches_useless += 1
                if self.component_counters is not None:
                    self.component_counters.on_useless(
                        self._pf_source(victim))
            if self.prefetcher is not None:
                self.prefetch_clock = self.cycle
                self.prefetcher.on_fill(line, True, self.cycle)
            return
        victim = self.l1i.insert(line, is_prefetch=is_prefetch,
                                 is_instruction=True)
        resident = self.l1i.lookup(line, touch=False)
        if resident is not None:
            resident.fill_latency = fill_latency
        if self.event_log is not None:
            self.event_log.emit(self.cycle, "fill", line,
                                "prefetch" if is_prefetch else "demand")
        if victim is not None:
            if victim.is_prefetch:
                self.stats.prefetches_useless += 1
                if self.component_counters is not None:
                    self.component_counters.on_useless(
                        self._pf_source(victim.addr))
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "evict", victim.addr)
            if self.prefetcher is not None:
                self.prefetcher.on_evict(victim, self.cycle)
        if self.prefetcher is not None:
            # Fill-triggered prefetches (e.g. proactive Dis chains) start
            # when the block actually arrives, not at demand-access start.
            self.prefetch_clock = self.cycle
            self.prefetcher.on_fill(line, is_prefetch, self.cycle)

    def _drain_fills(self) -> None:
        for entry in self.mshr.pop_ready(self.cycle):
            self._apply_fill(entry.line, entry.is_prefetch,
                             entry.full_latency)

    # ------------------------------------------------------------------
    # stall attribution

    def _stall(self, cycles: int, bucket: str) -> None:
        if cycles <= 0:
            return
        setattr(self.stats, bucket, getattr(self.stats, bucket) + cycles)
        if self.cycle < self.runahead_blocked_until:
            overlap = min(cycles, self.runahead_blocked_until - self.cycle)
            self.stats.empty_ftq_stall_cycles += overlap
        self.cycle += cycles

    # ------------------------------------------------------------------
    # demand path

    def _demand_access(self, record) -> str:
        stats = self.stats
        stats.demand_accesses += 1
        stats.cache_lookups += 1
        line = record.line

        if self.config.perfect_l1i:
            stats.demand_hits += 1
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_hit", line,
                                    "perfect")
            return HIT

        resident = self.l1i.lookup(line)
        if resident is not None:
            stats.demand_hits += 1
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_hit", line)
            if resident.is_prefetch:
                stats.prefetches_useful += 1
                lat = resident.fill_latency
                stats.covered_latency += lat
                stats.prefetched_latency += lat
                resident.is_prefetch = False
                if self.component_counters is not None:
                    self.component_counters.on_useful(
                        self._pf_source(line), lat, lat)
                if self.prefetcher is not None:
                    self.prefetcher.on_prefetch_hit(line, self.cycle)
            return HIT

        if self.l1_prefetch_buffer is not None:
            buffered = self.l1_prefetch_buffer.take(line)
            if buffered is not None:
                stats.demand_hits += 1
                stats.prefetches_useful += 1
                stats.covered_latency += buffered
                stats.prefetched_latency += buffered
                if self.component_counters is not None:
                    self.component_counters.on_useful(
                        self._pf_source(line), buffered, buffered)
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "demand_hit", line,
                                        "l1pb")
                self.l1i.insert(line, is_prefetch=False, is_instruction=True)
                return HIT

        inflight = self.mshr.get(line)
        if inflight is not None and not inflight.is_prefetch:
            # A wrong-path fetch for this very line is already in flight:
            # the demand waits out the remainder (an accidental prefetch,
            # but not credited as one).
            remaining = inflight.remaining(self.cycle)
            stats.demand_misses += 1
            if record.seq:
                stats.seq_misses += 1
            else:
                stats.disc_misses += 1
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_miss", line,
                                    "inflight")
            self.mshr.remove(line)
            self._stall(remaining, "icache_stall_cycles")
            self._apply_fill(line, is_prefetch=False,
                             fill_latency=inflight.full_latency)
            return MISS
        if inflight is not None and inflight.is_prefetch:
            remaining = inflight.remaining(self.cycle)
            stats.demand_late_prefetch += 1
            # A late prefetch is an uncovered miss for coverage metrics
            # (the paper's Fig. 3 point), though its stall is shorter.
            if record.seq:
                stats.seq_misses += 1
            else:
                stats.disc_misses += 1
            stats.prefetches_useful += 1
            stats.covered_latency += inflight.full_latency - remaining
            stats.prefetched_latency += inflight.full_latency
            if self.component_counters is not None:
                self.component_counters.on_useful(
                    self._pf_source(line),
                    inflight.full_latency - remaining,
                    inflight.full_latency, late=True)
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_late", line,
                                    f"remaining={remaining}")
            self.mshr.remove(line)
            self._stall(remaining, "icache_stall_cycles")
            self._apply_fill(line, is_prefetch=False,
                             fill_latency=inflight.full_latency)
            if self.prefetcher is not None:
                self.prefetcher.on_prefetch_hit(line, self.cycle)
            return LATE

        # Full demand miss.
        stats.demand_misses += 1
        if record.seq:
            stats.seq_misses += 1
        else:
            stats.disc_misses += 1
        if self.event_log is not None:
            self.event_log.emit(self.cycle, "demand_miss", line,
                                "seq" if record.seq else "disc")
        llc_hit = self.llc.access(line, is_instruction=True)
        lat = self.latency.request(self.cycle, llc_hit=llc_hit)
        self._stall(lat, "icache_stall_cycles")
        self._apply_fill(line, is_prefetch=False, fill_latency=lat)
        return MISS

    # ------------------------------------------------------------------
    # branches

    def _handle_branch(self, record) -> None:
        stats = self.stats
        kind = record.branch_kind
        stats.branches += 1
        cfg = self.config

        if kind is BranchKind.COND:
            correct = self.predictor.update(record.branch_pc, record.taken)
            if not correct:
                stats.mispredicts += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "mispredict",
                                        record.branch_pc, "cond")
                self._stall(cfg.mispredict_penalty, "mispredict_stall_cycles")
                self._wrong_path_touch(record)
            if record.taken:
                self._btb_check(record)
            return

        if kind in (BranchKind.JUMP, BranchKind.CALL):
            if not record.taken:       # depth-guard-skipped call
                return
            self._btb_check(record)
            if kind is BranchKind.CALL:
                self.ras.push(record.branch_pc + record.branch_size)
            return

        if kind is BranchKind.INDIRECT:
            if not record.taken:
                return
            entry = None if cfg.perfect_btb else self.btb.lookup(record.branch_pc)
            if cfg.perfect_btb:
                self.ras.push(record.branch_pc + record.branch_size)
                return
            if entry is None:
                self._btb_miss(record)
            elif entry.target != record.branch_target:
                stats.mispredicts += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "mispredict",
                                        record.branch_pc, "indirect")
                self._stall(cfg.mispredict_penalty, "mispredict_stall_cycles")
                entry.target = record.branch_target
            self.ras.push(record.branch_pc + record.branch_size)
            return

        if kind is BranchKind.RETURN:
            predicted = self.ras.pop()
            if predicted != record.branch_target and record.branch_target != NO_ADDR:
                stats.mispredicts += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "mispredict",
                                        record.branch_pc, "return")
                if not cfg.perfect_btb:
                    self._stall(cfg.mispredict_penalty,
                                "mispredict_stall_cycles")

    def _btb_check(self, record) -> None:
        if self.config.perfect_btb:
            return
        entry = self.btb.lookup(record.branch_pc)
        if entry is None:
            self._btb_miss(record)
        elif entry.target != record.branch_target:
            entry.target = record.branch_target

    def _btb_miss(self, record) -> None:
        stats = self.stats
        if self.btb_prefetch_buffer is not None:
            buffered = self.btb_prefetch_buffer.lookup(record.branch_pc)
            if buffered is not None:
                target = (buffered.target if buffered.target is not None
                          else record.branch_target)
                self.btb.insert(record.branch_pc, target, buffered.kind)
                stats.btb_buffer_fills += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "btb_rescue",
                                        record.branch_pc)
                return
        stats.btb_misses += 1
        if self.event_log is not None:
            self.event_log.emit(self.cycle, "btb_miss", record.branch_pc)
        self._stall(self.config.btb_miss_penalty, "btb_stall_cycles")
        self.btb.insert(record.branch_pc, record.branch_target,
                        record.branch_kind)

    def _wrong_path_touch(self, record) -> None:
        """Wrong-path fetch after a misprediction.

        The squash penalty is charged separately.  The touch accounts for
        the wrong path's L1i lookup traffic, and — when
        ``wrong_path_depth`` > 0 — actually fetches the first wrong-path
        blocks: they burn shared bandwidth and pollute the L1i, though
        occasionally they act as accidental prefetches, both of which the
        paper's wrong-path modelling captures.
        """
        if record.taken:
            alt = record.branch_pc + record.branch_size
        else:
            alt = record.branch_target
        if alt == NO_ADDR:
            return
        self.stats.cache_lookups += 1
        self.l1i.lookup(alt, touch=False)
        base = block_base(alt)
        for i in range(self.config.wrong_path_depth):
            line = base + i * CACHE_BLOCK_SIZE
            if self.l1i.contains(line) or line in self.mshr \
                    or self.mshr.full:
                continue
            llc_hit = self.llc.access(line, is_instruction=True)
            lat = self.latency.request(self.cycle, llc_hit=llc_hit)
            self.mshr.issue(line, self.cycle, self.cycle + lat,
                            is_prefetch=False)
            self.stats.wrong_path_fetches += 1

    # ------------------------------------------------------------------

    def _reset_measurement(self) -> None:
        """Zero statistics after warmup, keeping microarchitectural state.

        Mirrors the SimFlex methodology the paper uses: caches, BTB and
        predictor stay warm; only the measurement counters restart.
        """
        self.stats = FrontendStats()
        if self.event_log is not None:
            # Counts restart with the statistics so the two reconcile;
            # buffered/streamed warmup events are kept for debugging.
            self.event_log.mark_measurement_start()
        if self.component_counters is not None:
            # Prefetch provenance (``_pf_sources``) survives — in-flight
            # and resident prefetches are microarchitectural state.
            self.component_counters.reset()
        self.latency.llc_latency_sum = 0.0
        self.latency.llc_latency_count = 0
        self.latency.contention.total_requests = 0
        if self.datapath is not None:
            self.datapath.reset_measurement()
        self.btb.hits = self.btb.misses = 0
        if self.btb_prefetch_buffer is not None:
            self.btb_prefetch_buffer.hits = 0
            self.btb_prefetch_buffer.misses = 0

    def process_record(self, idx: int, record) -> None:
        """Advance the frontend by one fetch record (one FTQ entry)."""
        stats = self.stats
        width = self.config.fetch_width
        prefetcher = self.prefetcher

        self._demand_index = idx
        self._drain_fills()
        start = self.cycle
        self.prefetch_clock = start
        outcome = self._demand_access(record)
        stats.instructions += record.n_instr
        stats.delivery_cycles += -(-record.n_instr // width)
        self.cycle += -(-record.n_instr // width)
        if self.datapath is not None:
            stall = self.datapath.access_for_record(record,
                                                    self._call_depth)
            if stall:
                stats.backend_cycles += stall
                self.cycle += stall
        if record.has_branch:
            if record.taken:
                if record.branch_kind in (BranchKind.CALL,
                                          BranchKind.INDIRECT):
                    self._call_depth = min(64, self._call_depth + 1)
                elif record.branch_kind is BranchKind.RETURN:
                    self._call_depth = max(0, self._call_depth - 1)
            self._handle_branch(record)
        if prefetcher is not None:
            self.prefetch_clock = start
            prefetcher.on_demand(idx, record, outcome, start)
            if record.has_branch:
                self.prefetch_clock = self.cycle
                prefetcher.on_branch_retire(record, self.cycle)

    def finalize(self) -> FrontendStats:
        """Charge the backend cycles and return the statistics."""
        cpi = (self.config.backend_cpi_with_data
               if self.datapath is not None
               else self.config.backend_cpi_extra)
        self.stats.backend_cycles += int(self.stats.instructions * cpi)
        if self.fast_path_downgraded:
            self.stats.extra["fast_path_downgraded"] = 1.0
        return self.stats

    def run(self, warmup: int = 0, fast: Optional[bool] = None
            ) -> FrontendStats:
        """Simulate the whole trace and return the filled statistics.

        The first ``warmup`` records warm caches, BTB and predictor but
        are excluded from the returned statistics.

        ``fast=None`` (the default) uses a batched fast path for the
        hot no-prefetcher configuration; it is bit-identical to the
        generic per-record loop, which ``fast=False`` forces (the
        throughput microbenchmark uses that to measure the gap).
        """
        records = getattr(self.trace, "records", None)
        if records is None:
            records = list(self.trace)
        n = len(records)
        if fast is None:
            use_fast = self._fast_path_eligible()
        else:
            use_fast = fast and self._fast_path_eligible()
            if fast and not use_fast:
                # An explicit fast=True that cannot be honoured must not
                # be mistaken for a fast-path measurement downstream.
                self.fast_path_downgraded = True
                warnings.warn(
                    "fast=True requested but this configuration is not "
                    "fast-path eligible (a prefetcher, event log, "
                    "datapath, buffer or wrong-path depth is attached); "
                    "running the generic per-record loop",
                    RuntimeWarning, stacklevel=2)
        span = self._run_span_fast if use_fast else self._run_span
        if 0 < warmup < n:
            span(records, 0, warmup)
            self._reset_measurement()
            span(records, warmup, n)
        else:
            span(records, 0, n)
        return self.finalize()

    def _fast_path_eligible(self) -> bool:
        """True when no per-record hook can fire besides the core
        demand/delivery/branch path the fast loop inlines."""
        return (self.prefetcher is None
                and self.datapath is None
                and self.event_log is None
                and self.component_counters is None
                and self.l1_prefetch_buffer is None
                and self.btb_prefetch_buffer is None
                and self.config.wrong_path_depth == 0
                and self.runahead_blocked_until == 0)

    def _run_span(self, records, start: int, stop: int) -> None:
        """Generic per-record stepping (pre-fast-path behaviour)."""
        process = self.process_record
        for idx in range(start, stop):
            process(idx, records[idx])

    def _run_span_fast(self, records, start: int, stop: int) -> None:
        """Batched no-prefetcher loop: retire consecutive L1i hits
        without the full per-record call chain.

        Inlines ``process_record`` + ``_demand_access`` for the case
        guarded by :meth:`_fast_path_eligible`; every counter update and
        cycle charge replicates the generic path exactly, so results are
        bit-identical.  The simulator clock is kept in a local and synced
        to ``self.cycle`` around the (rare) calls back into shared
        helpers.
        """
        stats = self.stats
        cfg = self.config
        width = cfg.fetch_width
        perfect = cfg.perfect_l1i
        l1i = self.l1i
        block = l1i.block_size
        n_sets = l1i.n_sets
        sets = l1i._sets
        mshr_entries = self.mshr._entries
        llc_access = self.llc.access
        latency_request = self.latency.request
        handle_branch = self._handle_branch
        not_branch = BranchKind.NOT_BRANCH
        call_kind = BranchKind.CALL
        indirect_kind = BranchKind.INDIRECT
        return_kind = BranchKind.RETURN
        cycle = self.cycle

        rec_start = self.prefetch_clock
        for idx in range(start, stop):
            record = records[idx]
            self._demand_index = idx
            rec_start = cycle
            if mshr_entries:
                # Manually issued prefetches (no attached prefetcher can
                # exist here) still drain through the shared path.
                self.cycle = cycle
                self._drain_fills()

            stats.demand_accesses += 1
            stats.cache_lookups += 1
            if perfect:
                stats.demand_hits += 1
            else:
                line = record.line
                key = line // block
                cset = sets[key % n_sets]
                entry = cset.get(key)
                if entry is not None:
                    cset.move_to_end(key)
                    stats.demand_hits += 1
                    if entry.is_prefetch:
                        stats.prefetches_useful += 1
                        lat = entry.fill_latency
                        stats.covered_latency += lat
                        stats.prefetched_latency += lat
                        entry.is_prefetch = False
                else:
                    inflight = mshr_entries.get(line) if mshr_entries \
                        else None
                    if inflight is not None:
                        remaining = inflight.ready_cycle - cycle
                        if remaining < 0:
                            remaining = 0
                        full_latency = inflight.ready_cycle - \
                            inflight.issue_cycle
                        if inflight.is_prefetch:
                            stats.demand_late_prefetch += 1
                            stats.prefetches_useful += 1
                            stats.covered_latency += full_latency - remaining
                            stats.prefetched_latency += full_latency
                        else:
                            stats.demand_misses += 1
                        if record.seq:
                            stats.seq_misses += 1
                        else:
                            stats.disc_misses += 1
                        del mshr_entries[line]
                        if remaining > 0:
                            stats.icache_stall_cycles += remaining
                            cycle += remaining
                        self.cycle = cycle
                        self._apply_fill(line, is_prefetch=False,
                                         fill_latency=full_latency)
                    else:
                        # Full demand miss.
                        stats.demand_misses += 1
                        if record.seq:
                            stats.seq_misses += 1
                        else:
                            stats.disc_misses += 1
                        llc_hit = llc_access(line, is_instruction=True)
                        lat = latency_request(cycle, llc_hit=llc_hit)
                        if lat > 0:
                            stats.icache_stall_cycles += lat
                            cycle += lat
                        victim = l1i.insert(line, is_prefetch=False,
                                            is_instruction=True)
                        resident = cset.get(key)
                        if resident is not None:
                            resident.fill_latency = lat
                        if victim is not None and victim.is_prefetch:
                            stats.prefetches_useless += 1

            n_instr = record.n_instr
            stats.instructions += n_instr
            delivery = -(-n_instr // width)
            stats.delivery_cycles += delivery
            cycle += delivery

            if record.branch_kind is not not_branch:
                if record.taken:
                    kind = record.branch_kind
                    if kind is call_kind or kind is indirect_kind:
                        if self._call_depth < 64:
                            self._call_depth += 1
                    elif kind is return_kind:
                        if self._call_depth > 0:
                            self._call_depth -= 1
                self.cycle = cycle
                handle_branch(record)
                cycle = self.cycle
        self.cycle = cycle
        self.prefetch_clock = rec_start


def simulate(trace: Trace, config: Optional[FrontendConfig] = None,
             prefetcher=None, program: Optional[Program] = None,
             warmup: int = 0) -> FrontendStats:
    """Convenience one-shot simulation."""
    return FrontendSimulator(trace, config=config, prefetcher=prefetcher,
                             program=program).run(warmup=warmup)
