"""Trace-driven, cycle-approximate frontend simulator.

The simulator advances a single timestamp through the fetch trace.  For
each :class:`~repro.workloads.trace.FetchRecord` it:

1. applies any fills whose data has arrived (MSHR drain);
2. looks up the L1i (and the L1i prefetch buffer, for schemes that use
   one); a full miss stalls for the whole fill latency, a hit on an
   in-flight prefetch stalls only for the *remaining* latency — the
   covered part is what the paper's CMAL metric measures;
3. charges instruction delivery cycles (``ceil(n_instr / width)``);
4. models the terminator branch: direction prediction, BTB lookup for
   taken branches (a miss costs the redirect penalty unless the BTB
   prefetch buffer rescues it), return-address-stack push/pop;
5. hands the access to the attached prefetcher, which may issue prefetch
   requests through :meth:`FrontendSimulator.issue_prefetch`.

Stall cycles that accumulate while a BTB-directed prefetcher has declared
itself blocked on a BTB miss are additionally attributed to *empty-FTQ*
stalls (Table I).
"""

from __future__ import annotations

import gc
import warnings
from bisect import bisect_left
from typing import Optional

from ..btb import BtbPrefetchBuffer, ConventionalBtb, ReturnAddressStack
from ..cfg import Program
from ..isa import CACHE_BLOCK_SIZE, BranchKind, Predecoder, block_base
from ..memory import (
    CacheLine,
    DynamicallyVirtualizedLlc,
    LastLevelCache,
    LatencyModel,
    MshrFile,
    SetAssociativeCache,
)
from ..workloads import NO_ADDR, Trace
from ..workloads.soa import engine_view
from .branch_predictor import DirectionPredictor
from .config import FrontendConfig
from .eventlog import ScopedEmitter
from .tage import TagePredictor
from .l1pb import L1PrefetchBuffer
from .stats import FrontendStats

#: Demand access outcomes passed to prefetchers.
HIT = "hit"
MISS = "miss"
LATE = "late"                      # in-flight prefetch caught the demand


class FrontendSimulator:
    """One core's frontend running one fetch trace."""

    def __init__(self, trace: Trace, config: Optional[FrontendConfig] = None,
                 prefetcher=None, program: Optional[Program] = None,
                 llc=None, latency: Optional[LatencyModel] = None):
        self.trace = trace
        self.config = config or FrontendConfig()
        self.program = program
        cfg = self.config

        self.l1i = SetAssociativeCache(cfg.l1i_size, cfg.l1i_assoc,
                                       cfg.block_size, name="l1i")
        if llc is not None:
            # Shared LLC slice (multi-core simulation).
            self.llc = llc
        else:
            llc_cls = (DynamicallyVirtualizedLlc if cfg.dv_llc
                       else LastLevelCache)
            self.llc = llc_cls(cfg.llc_size, cfg.llc_assoc, cfg.block_size)
        self.latency = latency if latency is not None \
            else LatencyModel(cfg.latency)
        self.mshr = MshrFile(cfg.mshrs)
        self.btb = ConventionalBtb(cfg.btb_entries, cfg.btb_assoc)
        self.ras = ReturnAddressStack(cfg.ras_depth)
        if cfg.predictor_kind == "tage":
            self.predictor = TagePredictor()
        else:
            self.predictor = DirectionPredictor(cfg.predictor_entries)
        self.stats = FrontendStats()

        self.cycle = 0
        self._demand_index = 0
        #: Timestamp prefetch requests are issued at.  During a demand
        #: access this is the access *start* cycle: the prefetcher's probe
        #: overlaps the demand fetch, exactly as in hardware, which is
        #: what gives even a next-line prefetcher partial timeliness.
        self.prefetch_clock = 0
        #: Set by BTB-directed prefetchers while their runahead is stalled
        #: on a BTB miss; stalls during this window count as empty-FTQ.
        self.runahead_blocked_until = 0

        #: Optional structures installed by prefetchers.
        self.btb_prefetch_buffer: Optional[BtbPrefetchBuffer] = None
        self.l1_prefetch_buffer: Optional[L1PrefetchBuffer] = None

        self._predecoder: Optional[Predecoder] = None
        #: Optional debugging aid: attach an ``EventLog`` to record a
        #: structured stream of simulator events (see frontend.eventlog).
        self.event_log = None
        #: Optional per-component prefetch attribution
        #: (:meth:`enable_component_telemetry`); ``None`` costs nothing.
        self.component_counters = None
        self._pf_sources = {}
        self.datapath = None
        if cfg.model_data:
            from .datapath import DataPathModel
            self.datapath = DataPathModel(self)
        self._call_depth = 0
        #: True when an explicit ``run(fast=True)`` had to fall back to
        #: the generic loop (also surfaced in ``stats.extra``).
        self.fast_path_downgraded = False
        self._downgrade_warned = False
        #: Engine loop the last ``run()`` selected: ``"generic"``,
        #: ``"vectorized"`` or ``"fast"`` (surfaced in ``stats.extra``).
        self.engine_path = "generic"
        self._vector_view = None
        self.prefetcher = prefetcher
        if prefetcher is not None:
            prefetcher.attach(self)

    # ------------------------------------------------------------------
    # services used by prefetchers

    @property
    def demand_index(self) -> int:
        """Index of the record currently being fetched."""
        return self._demand_index

    def emitter(self, source: str) -> ScopedEmitter:
        """A telemetry emitter stamping events with ``source``.

        Bound to this simulator, not to a specific log: it follows a
        later ``sim.event_log = ...`` attachment and is a single ``None``
        check when no log is attached.
        """
        return ScopedEmitter(self, source)

    def enable_component_telemetry(self):
        """Attribute prefetch outcomes to their issuing component.

        Returns the live :class:`~repro.obs.telemetry.ComponentCounters`;
        sources come from ``issue_prefetch(..., source=...)`` (defaulting
        to the attached prefetcher's name).  Disables the batched fast
        path, like any other observer.
        """
        if self.component_counters is None:
            from ..obs.telemetry import ComponentCounters
            self.component_counters = ComponentCounters()
        return self.component_counters

    def predecoder(self) -> Predecoder:
        if self._predecoder is None:
            if self.program is None:
                raise RuntimeError(
                    "this simulation was built without a Program; pass "
                    "program= to FrontendSimulator to enable pre-decoding"
                )
            self._predecoder = self.program.predecoder()
        return self._predecoder

    def lookup_cache(self, addr: int, touch: bool = False) -> bool:
        """Prefetcher-side L1i probe (counted as a cache lookup)."""
        self.stats.cache_lookups += 1
        if self.l1i.lookup(addr, touch=touch) is not None:
            return True
        return (self.l1_prefetch_buffer is not None
                and self.l1_prefetch_buffer.contains(addr))

    def in_flight(self, addr: int) -> bool:
        return block_base(addr) in self.mshr

    def issue_prefetch(self, addr: int, probe_cache: bool = True,
                       delay: int = 0, source: str = "") -> bool:
        """Issue a prefetch for the block containing ``addr``.

        Returns True when a request was actually sent to the memory
        hierarchy.  ``probe_cache=False`` skips the L1i lookup (the caller
        already probed, e.g. through the RLU filter path).  ``delay`` adds
        issue latency for longer prefetch paths, e.g. the Dis prefetcher's
        DisTable-lookup + pre-decode pipeline.  ``source`` names the
        issuing component for telemetry attribution (defaults to the
        attached prefetcher's name when component telemetry is on).
        """
        line = block_base(addr)
        if probe_cache and self.lookup_cache(line):
            return False
        if not probe_cache and self.l1i.contains(line):
            return False
        if line in self.mshr:
            return False
        llc_hit = self.llc.access(line, is_instruction=True)
        at = self.prefetch_clock + delay
        lat = self.latency.request(at, llc_hit=llc_hit)
        entry = self.mshr.issue(line, at, at + lat, is_prefetch=True)
        if entry is None:
            return False
        self.stats.prefetches_issued += 1
        if self.component_counters is not None:
            if not source and self.prefetcher is not None:
                source = self.prefetcher.name
            self.component_counters.on_issue(source)
            self._pf_sources[line] = source
        if self.event_log is not None:
            self.event_log.emit(at, "prefetch", line, f"lat={lat}",
                                source=source)
        return True

    def _pf_source(self, line: int) -> str:
        """Pop the issuing component of a prefetched ``line``."""
        return self._pf_sources.pop(line, "")

    # ------------------------------------------------------------------
    # fills

    def _apply_fill(self, line: int, is_prefetch: bool,
                    fill_latency: int) -> None:
        if is_prefetch and self.l1_prefetch_buffer is not None:
            victim = self.l1_prefetch_buffer.fill(line, fill_latency)
            if victim is not None:
                self.stats.prefetches_useless += 1
                if self.component_counters is not None:
                    self.component_counters.on_useless(
                        self._pf_source(victim))
            if self.prefetcher is not None:
                self.prefetch_clock = self.cycle
                self.prefetcher.on_fill(line, True, self.cycle)
            return
        victim = self.l1i.insert(line, is_prefetch=is_prefetch,
                                 is_instruction=True)
        resident = self.l1i.lookup(line, touch=False)
        if resident is not None:
            resident.fill_latency = fill_latency
        if self.event_log is not None:
            self.event_log.emit(self.cycle, "fill", line,
                                "prefetch" if is_prefetch else "demand")
        if victim is not None:
            if victim.is_prefetch:
                self.stats.prefetches_useless += 1
                if self.component_counters is not None:
                    self.component_counters.on_useless(
                        self._pf_source(victim.addr))
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "evict", victim.addr)
            if self.prefetcher is not None:
                self.prefetcher.on_evict(victim, self.cycle)
        if self.prefetcher is not None:
            # Fill-triggered prefetches (e.g. proactive Dis chains) start
            # when the block actually arrives, not at demand-access start.
            self.prefetch_clock = self.cycle
            self.prefetcher.on_fill(line, is_prefetch, self.cycle)

    def _drain_fills(self) -> None:
        for entry in self.mshr.pop_ready(self.cycle):
            self._apply_fill(entry.line, entry.is_prefetch,
                             entry.full_latency)

    # ------------------------------------------------------------------
    # stall attribution

    def _stall(self, cycles: int, bucket: str) -> None:
        if cycles <= 0:
            return
        setattr(self.stats, bucket, getattr(self.stats, bucket) + cycles)
        if self.cycle < self.runahead_blocked_until:
            overlap = min(cycles, self.runahead_blocked_until - self.cycle)
            self.stats.empty_ftq_stall_cycles += overlap
        self.cycle += cycles

    # ------------------------------------------------------------------
    # demand path

    def _demand_access(self, record) -> str:
        self.stats.demand_accesses += 1
        self.stats.cache_lookups += 1
        return self._demand_access_core(record)

    def _demand_access_core(self, record) -> str:
        """Demand access minus the two leading counter bumps.

        The vectorized span loop performs those bumps itself so its
        inlined trivial-hit leg and this delegated slow leg stay
        counter-exact with the generic path.
        """
        stats = self.stats
        line = record.line

        if self.config.perfect_l1i:
            stats.demand_hits += 1
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_hit", line,
                                    "perfect")
            return HIT

        resident = self.l1i.lookup(line)
        if resident is not None:
            stats.demand_hits += 1
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_hit", line)
            if resident.is_prefetch:
                stats.prefetches_useful += 1
                lat = resident.fill_latency
                stats.covered_latency += lat
                stats.prefetched_latency += lat
                resident.is_prefetch = False
                if self.component_counters is not None:
                    self.component_counters.on_useful(
                        self._pf_source(line), lat, lat)
                if self.prefetcher is not None:
                    self.prefetcher.on_prefetch_hit(line, self.cycle)
            return HIT

        if self.l1_prefetch_buffer is not None:
            buffered = self.l1_prefetch_buffer.take(line)
            if buffered is not None:
                stats.demand_hits += 1
                stats.prefetches_useful += 1
                stats.covered_latency += buffered
                stats.prefetched_latency += buffered
                if self.component_counters is not None:
                    self.component_counters.on_useful(
                        self._pf_source(line), buffered, buffered)
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "demand_hit", line,
                                        "l1pb")
                self.l1i.insert(line, is_prefetch=False, is_instruction=True)
                return HIT

        inflight = self.mshr.get(line)
        if inflight is not None and not inflight.is_prefetch:
            # A wrong-path fetch for this very line is already in flight:
            # the demand waits out the remainder (an accidental prefetch,
            # but not credited as one).
            remaining = inflight.remaining(self.cycle)
            stats.demand_misses += 1
            if record.seq:
                stats.seq_misses += 1
            else:
                stats.disc_misses += 1
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_miss", line,
                                    "inflight")
            self.mshr.remove(line)
            self._stall(remaining, "icache_stall_cycles")
            self._apply_fill(line, is_prefetch=False,
                             fill_latency=inflight.full_latency)
            return MISS
        if inflight is not None and inflight.is_prefetch:
            remaining = inflight.remaining(self.cycle)
            stats.demand_late_prefetch += 1
            # A late prefetch is an uncovered miss for coverage metrics
            # (the paper's Fig. 3 point), though its stall is shorter.
            if record.seq:
                stats.seq_misses += 1
            else:
                stats.disc_misses += 1
            stats.prefetches_useful += 1
            stats.covered_latency += inflight.full_latency - remaining
            stats.prefetched_latency += inflight.full_latency
            if self.component_counters is not None:
                self.component_counters.on_useful(
                    self._pf_source(line),
                    inflight.full_latency - remaining,
                    inflight.full_latency, late=True)
            if self.event_log is not None:
                self.event_log.emit(self.cycle, "demand_late", line,
                                    f"remaining={remaining}")
            self.mshr.remove(line)
            self._stall(remaining, "icache_stall_cycles")
            self._apply_fill(line, is_prefetch=False,
                             fill_latency=inflight.full_latency)
            if self.prefetcher is not None:
                self.prefetcher.on_prefetch_hit(line, self.cycle)
            return LATE

        # Full demand miss.
        stats.demand_misses += 1
        if record.seq:
            stats.seq_misses += 1
        else:
            stats.disc_misses += 1
        if self.event_log is not None:
            self.event_log.emit(self.cycle, "demand_miss", line,
                                "seq" if record.seq else "disc")
        llc_hit = self.llc.access(line, is_instruction=True)
        lat = self.latency.request(self.cycle, llc_hit=llc_hit)
        self._stall(lat, "icache_stall_cycles")
        self._apply_fill(line, is_prefetch=False, fill_latency=lat)
        return MISS

    # ------------------------------------------------------------------
    # branches

    def _handle_branch(self, record) -> None:
        stats = self.stats
        kind = record.branch_kind
        stats.branches += 1
        cfg = self.config

        if kind is BranchKind.COND:
            correct = self.predictor.update(record.branch_pc, record.taken)
            if not correct:
                stats.mispredicts += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "mispredict",
                                        record.branch_pc, "cond")
                self._stall(cfg.mispredict_penalty, "mispredict_stall_cycles")
                self._wrong_path_touch(record)
            if record.taken:
                self._btb_check(record)
            return

        if kind in (BranchKind.JUMP, BranchKind.CALL):
            if not record.taken:       # depth-guard-skipped call
                return
            self._btb_check(record)
            if kind is BranchKind.CALL:
                self.ras.push(record.branch_pc + record.branch_size)
            return

        if kind is BranchKind.INDIRECT:
            if not record.taken:
                return
            entry = None if cfg.perfect_btb else self.btb.lookup(record.branch_pc)
            if cfg.perfect_btb:
                self.ras.push(record.branch_pc + record.branch_size)
                return
            if entry is None:
                self._btb_miss(record)
            elif entry.target != record.branch_target:
                stats.mispredicts += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "mispredict",
                                        record.branch_pc, "indirect")
                self._stall(cfg.mispredict_penalty, "mispredict_stall_cycles")
                entry.target = record.branch_target
            self.ras.push(record.branch_pc + record.branch_size)
            return

        if kind is BranchKind.RETURN:
            predicted = self.ras.pop()
            if predicted != record.branch_target and record.branch_target != NO_ADDR:
                stats.mispredicts += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "mispredict",
                                        record.branch_pc, "return")
                if not cfg.perfect_btb:
                    self._stall(cfg.mispredict_penalty,
                                "mispredict_stall_cycles")

    def _btb_check(self, record) -> None:
        if self.config.perfect_btb:
            return
        entry = self.btb.lookup(record.branch_pc)
        if entry is None:
            self._btb_miss(record)
        elif entry.target != record.branch_target:
            entry.target = record.branch_target

    def _btb_miss(self, record) -> None:
        stats = self.stats
        if self.btb_prefetch_buffer is not None:
            buffered = self.btb_prefetch_buffer.lookup(record.branch_pc)
            if buffered is not None:
                target = (buffered.target if buffered.target is not None
                          else record.branch_target)
                self.btb.insert(record.branch_pc, target, buffered.kind)
                stats.btb_buffer_fills += 1
                if self.event_log is not None:
                    self.event_log.emit(self.cycle, "btb_rescue",
                                        record.branch_pc)
                return
        stats.btb_misses += 1
        if self.event_log is not None:
            self.event_log.emit(self.cycle, "btb_miss", record.branch_pc)
        self._stall(self.config.btb_miss_penalty, "btb_stall_cycles")
        self.btb.insert(record.branch_pc, record.branch_target,
                        record.branch_kind)

    def _wrong_path_touch(self, record) -> None:
        """Wrong-path fetch after a misprediction.

        The squash penalty is charged separately.  The touch accounts for
        the wrong path's L1i lookup traffic, and — when
        ``wrong_path_depth`` > 0 — actually fetches the first wrong-path
        blocks: they burn shared bandwidth and pollute the L1i, though
        occasionally they act as accidental prefetches, both of which the
        paper's wrong-path modelling captures.
        """
        if record.taken:
            alt = record.branch_pc + record.branch_size
        else:
            alt = record.branch_target
        if alt == NO_ADDR:
            return
        self.stats.cache_lookups += 1
        self.l1i.lookup(alt, touch=False)
        base = block_base(alt)
        for i in range(self.config.wrong_path_depth):
            line = base + i * CACHE_BLOCK_SIZE
            if self.l1i.contains(line) or line in self.mshr \
                    or self.mshr.full:
                continue
            llc_hit = self.llc.access(line, is_instruction=True)
            lat = self.latency.request(self.cycle, llc_hit=llc_hit)
            self.mshr.issue(line, self.cycle, self.cycle + lat,
                            is_prefetch=False)
            self.stats.wrong_path_fetches += 1

    # ------------------------------------------------------------------

    def _reset_measurement(self) -> None:
        """Zero statistics after warmup, keeping microarchitectural state.

        Mirrors the SimFlex methodology the paper uses: caches, BTB and
        predictor stay warm; only the measurement counters restart.
        """
        self.stats = FrontendStats()
        if self.event_log is not None:
            # Counts restart with the statistics so the two reconcile;
            # buffered/streamed warmup events are kept for debugging.
            self.event_log.mark_measurement_start()
        if self.component_counters is not None:
            # Prefetch provenance (``_pf_sources``) survives — in-flight
            # and resident prefetches are microarchitectural state.
            self.component_counters.reset()
        self.latency.llc_latency_sum = 0.0
        self.latency.llc_latency_count = 0
        self.latency.contention.total_requests = 0
        if self.datapath is not None:
            self.datapath.reset_measurement()
        self.btb.hits = self.btb.misses = 0
        if self.btb_prefetch_buffer is not None:
            self.btb_prefetch_buffer.hits = 0
            self.btb_prefetch_buffer.misses = 0

    def process_record(self, idx: int, record) -> None:
        """Advance the frontend by one fetch record (one FTQ entry)."""
        stats = self.stats
        width = self.config.fetch_width
        prefetcher = self.prefetcher

        self._demand_index = idx
        self._drain_fills()
        start = self.cycle
        self.prefetch_clock = start
        outcome = self._demand_access(record)
        stats.instructions += record.n_instr
        stats.delivery_cycles += -(-record.n_instr // width)
        self.cycle += -(-record.n_instr // width)
        if self.datapath is not None:
            stall = self.datapath.access_for_record(record,
                                                    self._call_depth)
            if stall:
                stats.backend_cycles += stall
                self.cycle += stall
        if record.has_branch:
            if record.taken:
                if record.branch_kind in (BranchKind.CALL,
                                          BranchKind.INDIRECT):
                    self._call_depth = min(64, self._call_depth + 1)
                elif record.branch_kind is BranchKind.RETURN:
                    self._call_depth = max(0, self._call_depth - 1)
            self._handle_branch(record)
        if prefetcher is not None:
            self.prefetch_clock = start
            prefetcher.on_demand(idx, record, outcome, start)
            if record.has_branch:
                self.prefetch_clock = self.cycle
                prefetcher.on_branch_retire(record, self.cycle)

    def finalize(self) -> FrontendStats:
        """Charge the backend cycles and return the statistics."""
        cpi = (self.config.backend_cpi_with_data
               if self.datapath is not None
               else self.config.backend_cpi_extra)
        self.stats.backend_cycles += int(self.stats.instructions * cpi)
        self.stats.extra["engine_path"] = self.engine_path
        if self.fast_path_downgraded:
            self.stats.extra["fast_path_downgraded"] = 1.0
        return self.stats

    def run(self, warmup: int = 0, fast: Optional[bool] = None
            ) -> FrontendStats:
        """Simulate the whole trace and return the filled statistics.

        The first ``warmup`` records warm caches, BTB and predictor but
        are excluded from the returned statistics.

        ``fast=None`` (the default) picks the best batched loop the
        configuration is eligible for — the inlined no-prefetcher fast
        path, or the vectorized region-stepping loop for prefetcher /
        observer configurations — both bit-identical to the generic
        per-record loop, which ``fast=False`` forces (the throughput
        microbenchmark uses that to measure the gap).
        """
        records = getattr(self.trace, "records", None)
        if records is None:
            records = list(self.trace)
        n = len(records)
        if fast is False:
            path = "generic"
        elif self._fast_path_eligible():
            path = "fast"
        elif self._vector_path_eligible():
            path = "vectorized"
        else:
            path = "generic"
            if fast:
                # An explicit fast=True that cannot be honoured must not
                # be mistaken for a batched-path measurement downstream.
                self.fast_path_downgraded = True
                if not self._downgrade_warned:
                    self._downgrade_warned = True
                    warnings.warn(
                        "fast=True requested but this configuration is "
                        "not fast-path eligible (a datapath model "
                        "defeats batching); running the generic "
                        "per-record loop",
                        RuntimeWarning, stacklevel=2)
        self.engine_path = path
        if path == "fast":
            span = self._run_span_fast
        elif path == "vectorized":
            self._vector_view = engine_view(records, self.l1i.block_size,
                                            self.l1i.n_sets,
                                            self.config.fetch_width)
            span = self._run_span_vector
        else:
            span = self._run_span
        # The simulation allocates in refcount-clean patterns (no cycles
        # survive a record), so the cyclic collector only adds pauses;
        # park it for the duration and restore the caller's setting.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if 0 < warmup < n:
                span(records, 0, warmup)
                self._reset_measurement()
                span(records, warmup, n)
            else:
                span(records, 0, n)
        finally:
            if gc_was_enabled:
                gc.enable()
        return self.finalize()

    def _fast_path_eligible(self) -> bool:
        """True when no per-record hook can fire besides the core
        demand/delivery/branch path the fast loop inlines."""
        return (self.prefetcher is None
                and self.datapath is None
                and self.event_log is None
                and self.component_counters is None
                and self.l1_prefetch_buffer is None
                and self.btb_prefetch_buffer is None
                and self.config.wrong_path_depth == 0
                and self.runahead_blocked_until == 0)

    def _vector_path_eligible(self) -> bool:
        """True when the region-stepping vectorized loop applies.

        It supports everything the generic loop does — prefetchers,
        event logs, component telemetry, prefetch buffers, wrong-path
        fetch — because all of those fire from the shared slow helpers
        it delegates to.  Only the datapath model, whose backend hook
        runs on *every* record, defeats batching.
        """
        return self.datapath is None

    def _run_span(self, records, start: int, stop: int) -> None:
        """Generic per-record stepping (pre-fast-path behaviour)."""
        process = self.process_record
        for idx in range(start, stop):
            process(idx, records[idx])

    def _run_span_fast(self, records, start: int, stop: int) -> None:
        """Batched no-prefetcher loop: retire consecutive L1i hits
        without the full per-record call chain.

        Inlines ``process_record`` + ``_demand_access`` for the case
        guarded by :meth:`_fast_path_eligible`; every counter update and
        cycle charge replicates the generic path exactly, so results are
        bit-identical.  The simulator clock is kept in a local and synced
        to ``self.cycle`` around the (rare) calls back into shared
        helpers.
        """
        stats = self.stats
        cfg = self.config
        width = cfg.fetch_width
        perfect = cfg.perfect_l1i
        l1i = self.l1i
        block = l1i.block_size
        n_sets = l1i.n_sets
        sets = l1i._sets
        mshr_entries = self.mshr._entries
        llc_access = self.llc.access
        latency_request = self.latency.request
        handle_branch = self._handle_branch
        not_branch = BranchKind.NOT_BRANCH
        call_kind = BranchKind.CALL
        indirect_kind = BranchKind.INDIRECT
        return_kind = BranchKind.RETURN
        cycle = self.cycle

        rec_start = self.prefetch_clock
        for idx in range(start, stop):
            record = records[idx]
            self._demand_index = idx
            rec_start = cycle
            if mshr_entries:
                # Manually issued prefetches (no attached prefetcher can
                # exist here) still drain through the shared path.
                self.cycle = cycle
                self._drain_fills()

            stats.demand_accesses += 1
            stats.cache_lookups += 1
            if perfect:
                stats.demand_hits += 1
            else:
                line = record.line
                key = line // block
                cset = sets[key % n_sets]
                entry = cset.get(key)
                if entry is not None:
                    cset.move_to_end(key)
                    stats.demand_hits += 1
                    if entry.is_prefetch:
                        stats.prefetches_useful += 1
                        lat = entry.fill_latency
                        stats.covered_latency += lat
                        stats.prefetched_latency += lat
                        entry.is_prefetch = False
                else:
                    inflight = mshr_entries.get(line) if mshr_entries \
                        else None
                    if inflight is not None:
                        remaining = inflight.ready_cycle - cycle
                        if remaining < 0:
                            remaining = 0
                        full_latency = inflight.ready_cycle - \
                            inflight.issue_cycle
                        if inflight.is_prefetch:
                            stats.demand_late_prefetch += 1
                            stats.prefetches_useful += 1
                            stats.covered_latency += full_latency - remaining
                            stats.prefetched_latency += full_latency
                        else:
                            stats.demand_misses += 1
                        if record.seq:
                            stats.seq_misses += 1
                        else:
                            stats.disc_misses += 1
                        del mshr_entries[line]
                        if remaining > 0:
                            stats.icache_stall_cycles += remaining
                            cycle += remaining
                        self.cycle = cycle
                        self._apply_fill(line, is_prefetch=False,
                                         fill_latency=full_latency)
                    else:
                        # Full demand miss.
                        stats.demand_misses += 1
                        if record.seq:
                            stats.seq_misses += 1
                        else:
                            stats.disc_misses += 1
                        llc_hit = llc_access(line, is_instruction=True)
                        lat = latency_request(cycle, llc_hit=llc_hit)
                        if lat > 0:
                            stats.icache_stall_cycles += lat
                            cycle += lat
                        victim = l1i.insert(line, is_prefetch=False,
                                            is_instruction=True)
                        resident = cset.get(key)
                        if resident is not None:
                            resident.fill_latency = lat
                        if victim is not None and victim.is_prefetch:
                            stats.prefetches_useless += 1

            n_instr = record.n_instr
            stats.instructions += n_instr
            delivery = -(-n_instr // width)
            stats.delivery_cycles += delivery
            cycle += delivery

            if record.branch_kind is not not_branch:
                if record.taken:
                    kind = record.branch_kind
                    if kind is call_kind or kind is indirect_kind:
                        if self._call_depth < 64:
                            self._call_depth += 1
                    elif kind is return_kind:
                        if self._call_depth > 0:
                            self._call_depth -= 1
                self.cycle = cycle
                handle_branch(record)
                cycle = self.cycle
        self.cycle = cycle
        self.prefetch_clock = rec_start

    def _run_span_vector(self, records, start: int, stop: int) -> None:
        """Region-stepping batched loop for prefetcher/observer configs.

        Consumes the struct-of-arrays
        :class:`~repro.workloads.soa.EngineView` built by :meth:`run`
        and steps the trace region-at-a-time between control-flow
        events (``branch_positions``): records inside a region take a
        compact inlined demand/delivery body with precomputed cache
        keys, set indices and delivery cycles; only the
        region-terminating branch record pays the branch-handling
        machinery.  Everything slow or observable — misses, stalls,
        fills, branch events, prefetcher hooks, telemetry — delegates
        to the same helpers the generic loop uses, with ``self.cycle``
        and ``self.prefetch_clock`` synced around each delegation, so
        counters and event streams are bit-identical to
        :meth:`_run_span`.  Eligibility: :meth:`_vector_path_eligible`.
        """
        view = self._vector_view
        lines = view.lines
        keys = view.keys
        set_idx = view.set_idx
        n_instr_v = view.n_instr
        delivery_v = view.delivery
        kinds = view.kinds
        taken_v = view.taken
        bpos = view.branch_positions

        stats = self.stats
        cfg = self.config
        perfect = cfg.perfect_l1i
        l1i = self.l1i
        sets = l1i._sets
        mshr = self.mshr
        mshr_entries = mshr._entries
        log = self.event_log
        handle_branch = self._handle_branch
        demand_core = self._demand_access_core
        prefetcher = self.prefetcher
        on_demand = prefetcher.on_demand if prefetcher is not None else None
        on_retire = (prefetcher.on_branch_retire
                     if prefetcher is not None else None)
        if prefetcher is not None and getattr(
                prefetcher, "branch_retire_noop", False):
            # The prefetcher declared its retire hook a no-op (e.g.
            # fixed-length proactive modes): skip the per-branch call.
            on_retire = None
        on_fill_hook = prefetcher.on_fill if prefetcher is not None else None
        on_evict_hook = prefetcher.on_evict if prefetcher is not None else None
        on_pf_hit = (prefetcher.on_prefetch_hit
                     if prefetcher is not None else None)
        hit_outcome = HIT
        call_k = 3       # BranchKind.CALL
        return_k = 4     # BranchKind.RETURN
        indirect_k = 5   # BranchKind.INDIRECT
        cond_k = 1       # BranchKind.COND
        # Inline-able fast legs.  Fills: the l1i insert + hooks of
        # _apply_fill can be replayed locally when nothing observes them
        # (no event log / component counters / L1 prefetch buffer) and
        # the l1i is the plain cache whose set_capacity is constant.
        fill_fast = (log is None and self.component_counters is None
                     and self.l1_prefetch_buffer is None
                     and type(l1i) is SetAssociativeCache)
        l1i_nsets = l1i.n_sets
        l1i_assoc = l1i.assoc
        l1i_bs = l1i.block_size
        # Full demand misses (line absent from L1i and MSHR) inline the
        # llc access + latency request + stall + fill sequence when the
        # LLC is the plain variant and fills are inline-able; in-flight
        # and prefetch-resident cases still delegate.
        llc = self.llc
        miss_fast = fill_fast and type(llc) is LastLevelCache
        # Frame-free CacheLine construction for the inline fill/llc legs.
        cl_new = CacheLine.__new__
        llc_sets = llc._sets
        llc_nsets = llc.n_sets
        llc_assoc = llc.assoc
        llc_bs = llc.block_size
        lat_model = self.latency
        contention = lat_model.contention
        ct_times = contention._times
        ct_popleft = ct_times.popleft
        lat_cfg = lat_model.config
        ct_window = lat_cfg.window
        ct_sat = lat_cfg.saturation_rate
        ct_gain = lat_cfg.contention_gain
        ct_expo = lat_cfg.contention_exponent
        lat_llc_rt = lat_cfg.llc_round_trip
        lat_mem_rt = lat_cfg.memory_round_trip
        lat_overhead = lat_cfg.l1_fill_overhead
        miss_outcome = MISS
        late_outcome = LATE
        # Branches: the COND leg of _handle_branch (by far the hottest
        # kind) inlines when there is no event log; other kinds and the
        # logged case delegate.
        predictor_update = self.predictor.update
        btb_check = self._btb_check
        wrong_path = self._wrong_path_touch
        stall = self._stall
        mispred_pen = cfg.mispredict_penalty
        cond_fast = log is None
        # Predictor internals for the inlined COND leg.  The hybrid's
        # 2-bit tables mutate in place and the global history stores
        # back eagerly (prefetcher hooks may call predictor.predict
        # mid-span); only the additive prediction/BTB counters batch
        # in locals.  TAGE configurations keep the method call.
        pred = self.predictor
        pred_fast = cond_fast and type(pred) is DirectionPredictor
        if pred_fast:
            bim_c = pred.bimodal._counters
            gsh_c = pred.gshare._counters
            cho_c = pred.chooser._counters
            pred_mask = pred.bimodal._mask
            hist_mask = pred._hist_mask
        btb = self.btb
        btb_fast = type(btb) is ConventionalBtb
        if btb_fast:
            btb_sets = btb._sets
            btb_nsets = btb.n_sets
        perfect_btb = cfg.perfect_btb
        btb_miss_slow = self._btb_miss
        ras = self.ras
        ras_stack = ras._stack
        ras_depth = ras.depth
        no_addr = NO_ADDR
        jump_k = 2       # BranchKind.JUMP
        p_preds = p_mis = btb_h = btb_m = 0
        INF = float("inf")
        # Hot statistics accumulate in locals and flush once at span end:
        # nothing reads them mid-span, and every delegated helper only
        # adds to them, so the final totals are identical.
        d_acc = d_lkp = d_hit = d_ins = d_del = d_br = 0

        cycle = self.cycle
        rec_start = self.prefetch_clock
        bi = bisect_left(bpos, start)
        nb = len(bpos)
        idx = start
        while idx < stop:
            if bi < nb and bpos[bi] < stop:
                region_end = bpos[bi]
                has_branch = True
            else:
                region_end = stop
                has_branch = False

            while True:
                at_branch = idx >= region_end
                if at_branch and not has_branch:
                    break
                # -- one record: drain, demand, delivery ---------------
                self._demand_index = idx
                if mshr_entries and cycle >= mshr._next_ready:
                    self.cycle = cycle
                    if fill_fast:
                        # _drain_fills + _apply_fill inlined: same pop
                        # order, insert semantics, victim accounting and
                        # hook sequence (fill_latency -> evict -> fill).
                        ready = [e for e in mshr_entries.values()
                                 if e.ready_cycle <= cycle]
                        for e in ready:
                            del mshr_entries[e.line]
                        mshr._next_ready = min(
                            (e.ready_cycle for e in mshr_entries.values()),
                            default=INF)
                        for e in ready:
                            fline = e.line
                            fkey = fline // l1i_bs
                            fcset = sets[fkey % l1i_nsets]
                            ent = fcset.get(fkey)
                            victim = None
                            if ent is not None:
                                fcset.move_to_end(fkey)
                                ent.is_prefetch = e.is_prefetch
                                ent.is_instruction = True
                            else:
                                if len(fcset) >= l1i_assoc:
                                    _k, victim = fcset.popitem(last=False)
                                ent = cl_new(CacheLine)
                                ent.addr = fline
                                ent.is_prefetch = e.is_prefetch
                                ent.local_status = 0
                                ent.is_instruction = True
                                fcset[fkey] = ent
                            ent.fill_latency = e.ready_cycle - e.issue_cycle
                            if victim is not None:
                                if victim.is_prefetch:
                                    stats.prefetches_useless += 1
                                if on_evict_hook is not None:
                                    on_evict_hook(victim, cycle)
                            if on_fill_hook is not None:
                                self.prefetch_clock = cycle
                                on_fill_hook(fline, e.is_prefetch, cycle)
                    else:
                        self._drain_fills()
                    cycle = self.cycle
                rec_start = cycle
                record = records[idx]
                d_acc += 1
                d_lkp += 1
                if perfect:
                    d_hit += 1
                    if log is not None:
                        log.emit(cycle, "demand_hit", lines[idx], "perfect")
                    outcome = hit_outcome
                else:
                    key = keys[idx]
                    cset = sets[set_idx[idx]]
                    entry = cset.get(key)
                    if entry is not None and not entry.is_prefetch:
                        # Trivial hit: LRU touch + counters, no hooks.
                        cset.move_to_end(key)
                        d_hit += 1
                        if log is not None:
                            log.emit(cycle, "demand_hit", lines[idx])
                        outcome = hit_outcome
                    elif entry is not None and fill_fast:
                        # Demand hit on a resident prefetch: credit the
                        # prefetch and clear its flag (demand_core's
                        # resident leg, inlined).
                        cset.move_to_end(key)
                        d_hit += 1
                        stats.prefetches_useful += 1
                        plat = entry.fill_latency
                        stats.covered_latency += plat
                        stats.prefetched_latency += plat
                        entry.is_prefetch = False
                        if on_pf_hit is not None:
                            # The hook may issue prefetches, which read
                            # the live clocks (e.g. tagged next-line).
                            self.cycle = cycle
                            self.prefetch_clock = cycle
                            on_pf_hit(lines[idx], cycle)
                        outcome = hit_outcome
                    elif miss_fast and entry is None:
                        line = lines[idx]
                        inflight = mshr_entries.get(line)
                        if inflight is None:
                            # Full demand miss: _demand_access_core's
                            # last leg (llc access, latency request,
                            # stall, fill) inlined in its exact order.
                            stats.demand_misses += 1
                            if record.seq:
                                stats.seq_misses += 1
                            else:
                                stats.disc_misses += 1
                            # llc.access, inlined (plain LLC only).
                            lkey = line // llc_bs
                            lset = llc_sets[lkey % llc_nsets]
                            if lkey in lset:
                                lset.move_to_end(lkey)
                                llc.instruction_hits += 1
                                base = lat_llc_rt
                            else:
                                llc.instruction_misses += 1
                                if len(lset) >= llc_assoc:
                                    lset.popitem(last=False)
                                nl = cl_new(CacheLine)
                                nl.addr = lkey * llc_bs
                                nl.is_prefetch = False
                                nl.local_status = 0
                                nl.is_instruction = True
                                nl.fill_latency = 0
                                lset[lkey] = nl
                                base = lat_mem_rt
                            # latency.request at the pre-stall cycle.
                            ct_times.append(cycle)
                            contention.total_requests += 1
                            horizon = cycle - ct_window
                            while ct_times and ct_times[0] <= horizon:
                                ct_popleft()
                            load = (len(ct_times) / ct_window) / ct_sat
                            if load > 1.0:
                                load = 1.0
                            lat = int(round(
                                base * (1.0 + ct_gain * load ** ct_expo))) \
                                + lat_overhead
                            lat_model.llc_latency_sum += lat
                            lat_model.llc_latency_count += 1
                            # _stall(lat, "icache_stall_cycles").
                            stats.icache_stall_cycles += lat
                            rbu = self.runahead_blocked_until
                            if cycle < rbu:
                                gap = rbu - cycle
                                stats.empty_ftq_stall_cycles += (
                                    lat if lat < gap else gap)
                            cycle += lat
                            fill_lat = lat
                            outcome = miss_outcome
                        elif inflight.is_prefetch:
                            # Late prefetch catches the demand: covered
                            # fraction credited, remainder stalled
                            # (demand_core's in-flight-prefetch leg).
                            remaining = inflight.ready_cycle - cycle
                            if remaining < 0:
                                remaining = 0
                            stats.demand_late_prefetch += 1
                            if record.seq:
                                stats.seq_misses += 1
                            else:
                                stats.disc_misses += 1
                            stats.prefetches_useful += 1
                            fill_lat = (inflight.ready_cycle
                                        - inflight.issue_cycle)
                            stats.covered_latency += fill_lat - remaining
                            stats.prefetched_latency += fill_lat
                            # mshr.remove: _next_ready may go stale low,
                            # which pop_ready tolerates.
                            del mshr_entries[line]
                            if remaining > 0:
                                stats.icache_stall_cycles += remaining
                                rbu = self.runahead_blocked_until
                                if cycle < rbu:
                                    gap = rbu - cycle
                                    stats.empty_ftq_stall_cycles += (
                                        remaining if remaining < gap
                                        else gap)
                                cycle += remaining
                            outcome = late_outcome
                        else:
                            # Wrong-path demand fetch in flight: rare,
                            # delegate.
                            self.cycle = cycle
                            self.prefetch_clock = rec_start
                            outcome = demand_core(record)
                            cycle = self.cycle
                            fill_lat = None
                        if fill_lat is not None:
                            # _apply_fill(line, False, fill_lat): the
                            # line is known absent, so a fresh insert.
                            victim = None
                            if len(cset) >= l1i_assoc:
                                _k, victim = cset.popitem(last=False)
                            ent = cl_new(CacheLine)
                            ent.addr = line
                            ent.is_prefetch = False
                            ent.local_status = 0
                            ent.is_instruction = True
                            cset[key] = ent
                            ent.fill_latency = fill_lat
                            if victim is not None:
                                if victim.is_prefetch:
                                    stats.prefetches_useless += 1
                                if on_evict_hook is not None:
                                    self.cycle = cycle
                                    on_evict_hook(victim, cycle)
                            if on_fill_hook is not None:
                                self.cycle = cycle
                                self.prefetch_clock = cycle
                                on_fill_hook(line, False, cycle)
                            if outcome is late_outcome \
                                    and on_pf_hit is not None:
                                self.cycle = cycle
                                on_pf_hit(line, cycle)
                    else:
                        self.cycle = cycle
                        self.prefetch_clock = rec_start
                        outcome = demand_core(record)
                        cycle = self.cycle
                d_ins += n_instr_v[idx]
                delivery = delivery_v[idx]
                d_del += delivery
                cycle += delivery

                if at_branch:
                    # -- the region-terminating control-flow event -----
                    kind = kinds[idx]
                    if taken_v[idx]:
                        if kind == call_k or kind == indirect_k:
                            if self._call_depth < 64:
                                self._call_depth += 1
                        elif kind == return_k:
                            if self._call_depth > 0:
                                self._call_depth -= 1
                    self.cycle = cycle
                    if cond_fast and kind == cond_k:
                        # _handle_branch's COND leg, inlined (no event
                        # log): update predictor, charge misprediction,
                        # BTB-check taken branches.
                        d_br += 1
                        bpc = record.branch_pc
                        taken = record.taken
                        if pred_fast:
                            # DirectionPredictor.update, inlined: same
                            # reads-before-writes on three distinct
                            # tables, same counter saturation.
                            k_bim = bpc >> 2
                            hist = pred._history
                            i_bim = k_bim & pred_mask
                            i_gs = (k_bim ^ hist) & pred_mask
                            c_bim = bim_c[i_bim]
                            c_gs = gsh_c[i_gs]
                            p_bim = c_bim >= 2
                            p_gs = c_gs >= 2
                            predicted = p_gs if cho_c[i_bim] >= 2 else p_bim
                            correct = predicted == taken
                            p_preds += 1
                            if not correct:
                                p_mis += 1
                            if p_bim != p_gs:
                                cc = cho_c[i_bim]
                                if p_gs == taken:
                                    if cc < 3:
                                        cho_c[i_bim] = cc + 1
                                elif cc > 0:
                                    cho_c[i_bim] = cc - 1
                            if taken:
                                if c_bim < 3:
                                    bim_c[i_bim] = c_bim + 1
                                if c_gs < 3:
                                    gsh_c[i_gs] = c_gs + 1
                            else:
                                if c_bim > 0:
                                    bim_c[i_bim] = c_bim - 1
                                if c_gs > 0:
                                    gsh_c[i_gs] = c_gs - 1
                            pred._history = ((hist << 1)
                                             | (1 if taken else 0)) \
                                & hist_mask
                        else:
                            correct = predictor_update(bpc, taken)
                        if not correct:
                            stats.mispredicts += 1
                            stall(mispred_pen, "mispredict_stall_cycles")
                            wrong_path(record)
                        if taken and not perfect_btb:
                            if btb_fast:
                                # _btb_check + btb.lookup, inlined.
                                bset = btb_sets[(bpc >> 2) % btb_nsets]
                                e = bset.get(bpc)
                                if e is None:
                                    btb_m += 1
                                    btb_miss_slow(record)
                                else:
                                    bset.move_to_end(bpc)
                                    btb_h += 1
                                    if e.target != record.branch_target:
                                        e.target = record.branch_target
                            else:
                                btb_check(record)
                    elif cond_fast and (kind == jump_k or kind == call_k):
                        # _handle_branch's JUMP/CALL leg, inlined:
                        # BTB-check when taken; calls push the RAS.
                        d_br += 1
                        if record.taken:
                            bpc = record.branch_pc
                            if not perfect_btb:
                                if btb_fast:
                                    bset = btb_sets[(bpc >> 2) % btb_nsets]
                                    e = bset.get(bpc)
                                    if e is None:
                                        btb_m += 1
                                        btb_miss_slow(record)
                                    else:
                                        bset.move_to_end(bpc)
                                        btb_h += 1
                                        if e.target != record.branch_target:
                                            e.target = record.branch_target
                                else:
                                    btb_check(record)
                            if kind == call_k:
                                # ras.push, inlined.
                                if len(ras_stack) >= ras_depth:
                                    ras_stack.pop(0)
                                    ras.overflows += 1
                                ras_stack.append(bpc + record.branch_size)
                    elif cond_fast and kind == return_k:
                        # _handle_branch's RETURN leg, inlined: pop the
                        # RAS and compare against the actual target.
                        d_br += 1
                        if ras_stack:
                            predicted = ras_stack.pop()
                        else:
                            ras.underflows += 1
                            predicted = None
                        tgt = record.branch_target
                        if predicted != tgt and tgt != no_addr:
                            stats.mispredicts += 1
                            if not perfect_btb:
                                stall(mispred_pen,
                                      "mispredict_stall_cycles")
                    else:
                        handle_branch(record)
                    cycle = self.cycle
                    if on_demand is not None:
                        self.prefetch_clock = rec_start
                        on_demand(idx, record, outcome, rec_start)
                        cycle = self.cycle
                        if on_retire is not None:
                            self.prefetch_clock = cycle
                            on_retire(record, cycle)
                            cycle = self.cycle
                    idx += 1
                    bi += 1
                    break
                if on_demand is not None:
                    self.cycle = cycle
                    self.prefetch_clock = rec_start
                    on_demand(idx, record, outcome, rec_start)
                    cycle = self.cycle
                idx += 1

        stats.demand_accesses += d_acc
        stats.cache_lookups += d_lkp
        stats.demand_hits += d_hit
        stats.instructions += d_ins
        stats.delivery_cycles += d_del
        stats.branches += d_br
        if p_preds:
            pred.predictions += p_preds
            pred.mispredictions += p_mis
        if btb_h:
            btb.hits += btb_h
        if btb_m:
            btb.misses += btb_m
        self.cycle = cycle
        if prefetcher is None:
            self.prefetch_clock = rec_start


def simulate(trace: Trace, config: Optional[FrontendConfig] = None,
             prefetcher=None, program: Optional[Program] = None,
             warmup: int = 0) -> FrontendStats:
    """Convenience one-shot simulation."""
    return FrontendSimulator(trace, config=config, prefetcher=prefetcher,
                             program=program).run(warmup=warmup)
