"""TAGE direction predictor (Seznec & Michaud, the paper's Table III).

A base bimodal table plus ``n_tables`` partially-tagged components
indexed with geometrically increasing global-history lengths.  The
longest-history matching component provides the prediction; allocation
on mispredictions steals a not-useful entry from a longer table; useful
bits are granted when the provider beats the alternate prediction.

This is a faithful (if compact) TAGE: tagged 3-bit prediction counters,
2-bit useful counters, periodic useful-bit aging, and the weak-entry
alternate-prediction heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class _TageEntry:
    tag: int = 0
    ctr: int = 0      # 3-bit signed counter in [-4, 3]; >= 0 means taken
    useful: int = 0   # 2-bit useful counter

    @property
    def prediction(self) -> bool:
        return self.ctr >= 0

    @property
    def is_weak(self) -> bool:
        return self.ctr in (-1, 0)


class _TaggedTable:
    def __init__(self, n_entries: int, tag_bits: int, history_length: int):
        if n_entries & (n_entries - 1):
            raise ValueError("table size must be a power of two")
        self.n_entries = n_entries
        self.tag_bits = tag_bits
        self.history_length = history_length
        self._mask = n_entries - 1
        self._tag_mask = (1 << tag_bits) - 1
        self.entries: List[Optional[_TageEntry]] = [None] * n_entries

    def _fold(self, history: int, bits: int) -> int:
        """Fold ``history_length`` history bits down to ``bits`` bits."""
        h = history & ((1 << self.history_length) - 1)
        folded = 0
        while h:
            folded ^= h & ((1 << bits) - 1)
            h >>= bits
        return folded

    def index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (pc >> 8) ^
                self._fold(history, self._mask.bit_length())) & self._mask

    def tag(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ self._fold(history, self.tag_bits) ^
                (self._fold(history, self.tag_bits - 1) << 1)) & self._tag_mask

    def lookup(self, pc: int, history: int) -> Optional[_TageEntry]:
        entry = self.entries[self.index(pc, history)]
        if entry is not None and entry.tag == self.tag(pc, history):
            return entry
        return None

    def allocate(self, pc: int, history: int, taken: bool) -> bool:
        """Try to claim the slot for this branch; fails if the incumbent
        is still useful (its useful counter is decremented instead)."""
        idx = self.index(pc, history)
        entry = self.entries[idx]
        if entry is not None and entry.useful > 0:
            entry.useful -= 1
            return False
        self.entries[idx] = _TageEntry(tag=self.tag(pc, history),
                                       ctr=0 if taken else -1)
        return True


class TagePredictor:
    """TAGE with a bimodal base and geometric tagged components."""

    def __init__(self, base_entries: int = 8 * 1024, n_tables: int = 4,
                 table_entries: int = 1024, tag_bits: int = 9,
                 min_history: int = 4, max_history: int = 64,
                 useful_reset_period: int = 256 * 1024):
        if n_tables < 1:
            raise ValueError("TAGE needs at least one tagged table")
        if base_entries & (base_entries - 1):
            raise ValueError("base table size must be a power of two")
        self._base = bytearray([2] * base_entries)  # 2-bit counters
        self._base_mask = base_entries - 1
        ratio = (max_history / min_history) ** (1.0 / max(1, n_tables - 1))
        lengths = [max(1, int(round(min_history * ratio ** i)))
                   for i in range(n_tables)]
        self.tables = [_TaggedTable(table_entries, tag_bits, length)
                       for length in lengths]
        self._history = 0
        self._history_mask = (1 << max_history) - 1
        self.useful_reset_period = useful_reset_period
        self.predictions = 0
        self.mispredictions = 0

    # -- prediction ------------------------------------------------------

    def _base_predict(self, pc: int) -> bool:
        return self._base[(pc >> 2) & self._base_mask] >= 2

    def _provider(self, pc: int) -> Tuple[Optional[int], bool, bool]:
        """(provider table idx, prediction, alternate prediction)."""
        provider = None
        alt: Optional[bool] = None
        pred: Optional[bool] = None
        for i in reversed(range(len(self.tables))):
            entry = self.tables[i].lookup(pc, self._history)
            if entry is None:
                continue
            if provider is None:
                provider = i
                pred = entry.prediction
            else:
                alt = entry.prediction
                break
        if alt is None:
            alt = self._base_predict(pc)
        if pred is None:
            pred = alt
        return provider, pred, alt

    def predict(self, pc: int) -> bool:
        provider, pred, alt = self._provider(pc)
        if provider is not None:
            entry = self.tables[provider].lookup(pc, self._history)
            if entry is not None and entry.is_weak and entry.useful == 0:
                # Newly allocated entries are unreliable: trust altpred.
                return alt
        return pred

    # -- update -----------------------------------------------------------

    def _update_base(self, pc: int, taken: bool) -> None:
        idx = (pc >> 2) & self._base_mask
        c = self._base[idx]
        if taken and c < 3:
            self._base[idx] = c + 1
        elif not taken and c > 0:
            self._base[idx] = c - 1

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and return whether the prediction was correct."""
        provider, pred, alt = self._provider(pc)
        predicted = self.predict(pc)
        correct = predicted == taken

        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if self.predictions % self.useful_reset_period == 0:
            self._age_useful()

        if provider is not None:
            entry = self.tables[provider].lookup(pc, self._history)
            if entry is not None:
                if pred != alt:
                    if pred == taken and entry.useful < 3:
                        entry.useful += 1
                    elif pred != taken and entry.useful > 0:
                        entry.useful -= 1
                if taken and entry.ctr < 3:
                    entry.ctr += 1
                elif not taken and entry.ctr > -4:
                    entry.ctr -= 1
        else:
            self._update_base(pc, taken)

        # Allocate a longer-history entry when the provider failed.
        if not correct:
            start = (provider + 1) if provider is not None else 0
            for i in range(start, len(self.tables)):
                if self.tables[i].allocate(pc, self._history, taken):
                    break

        self._history = ((self._history << 1) | int(taken)) & \
            self._history_mask
        return correct

    def _age_useful(self) -> None:
        for table in self.tables:
            for entry in table.entries:
                if entry is not None and entry.useful > 0:
                    entry.useful -= 1

    @property
    def accuracy(self) -> float:
        if not self.predictions:
            return 0.0
        return 1.0 - self.mispredictions / self.predictions

    def storage_bytes(self) -> int:
        base_bits = len(self._base) * 2
        tagged_bits = sum(t.n_entries * (t.tag_bits + 3 + 2)
                          for t in self.tables)
        return (base_bits + tagged_bits) // 8
