"""Optional data-side model: L1d misses sharing the LLC with instructions.

The default configuration folds the whole backend into a constant
cycles-per-instruction term.  Enabling ``FrontendConfig(model_data=True)``
replaces part of that constant with a *modeled* data path: a synthetic
per-record data-access stream (hot Zipf heap + stack region) runs through
an L1d; misses go to the same LLC and contention domain as instruction
fills, so data blocks compete with instruction blocks for LLC capacity —
the interaction the DV-LLC experiment (paper Section VII-J) is about.

An out-of-order backend hides most data-miss latency behind independent
work; ``data_stall_fraction`` charges only the exposed remainder.
"""

from __future__ import annotations

import numpy as np

from ..isa import CACHE_BLOCK_SIZE
from ..memory import SetAssociativeCache

#: Data addresses live far above any text segment.
DATA_BASE = 1 << 40


class DataPathModel:
    """Synthetic data-access stream + L1d, attached to a simulator."""

    def __init__(self, sim, heap_blocks: int = 64 * 1024,
                 zipf_s: float = 0.9,
                 accesses_per_instruction: float = 0.35,
                 stack_fraction: float = 0.35,
                 l1d_size: int = 32 * 1024, l1d_assoc: int = 8,
                 data_stall_fraction: float = 0.3,
                 seed: int = 11):
        if heap_blocks <= 0:
            raise ValueError("heap must be non-empty")
        if not 0.0 <= data_stall_fraction <= 1.0:
            raise ValueError("stall fraction is a fraction")
        self.sim = sim
        self.accesses_per_instruction = accesses_per_instruction
        self.stack_fraction = stack_fraction
        self.data_stall_fraction = data_stall_fraction
        self.l1d = SetAssociativeCache(l1d_size, l1d_assoc, name="l1d")
        rng = np.random.default_rng(seed)
        # Pre-sampled Zipf-popular heap blocks (cheap per-access draws).
        ranks = np.arange(1, heap_blocks + 1, dtype=float)
        weights = ranks ** -zipf_s
        weights /= weights.sum()
        self._heap = rng.choice(heap_blocks, p=weights, size=1 << 16)
        self._uniform = rng.random(size=1 << 16)
        self._cursor = 0
        self._stack_depth = 0
        self._carry = 0.0
        self.accesses = 0
        self.misses = 0
        self.stall_cycles = 0

    def _next_address(self, call_depth: int) -> int:
        i = self._cursor
        self._cursor = (i + 1) & 0xFFFF
        if self._uniform[i] < self.stack_fraction:
            # Stack accesses track the call depth: tiny hot footprint.
            block = (1 << 20) + call_depth * 4 + int(self._heap[i]) % 4
        else:
            block = int(self._heap[i])
        return DATA_BASE + block * CACHE_BLOCK_SIZE

    def access_for_record(self, record, call_depth: int = 0) -> int:
        """Issue this record's share of data accesses; returns the stall
        cycles to charge the backend."""
        self._carry += record.n_instr * self.accesses_per_instruction
        n = int(self._carry)
        self._carry -= n
        stall = 0
        sim = self.sim
        for _ in range(n):
            addr = self._next_address(call_depth)
            self.accesses += 1
            if self.l1d.lookup(addr) is not None:
                continue
            self.misses += 1
            llc_hit = sim.llc.access(addr, is_instruction=False)
            latency = sim.latency.request(sim.cycle, llc_hit=llc_hit)
            stall += int(latency * self.data_stall_fraction)
            self.l1d.insert(addr)
        self.stall_cycles += stall
        return stall

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_measurement(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.stall_cycles = 0
