"""Cycle and event accounting for the frontend simulator.

Every metric the paper reports falls out of these counters:

* speedup           — ``total_cycles`` ratios between schemes;
* miss coverage     — ``demand_misses`` vs a baseline run;
* sequential misses — ``seq_misses`` / ``demand_misses`` (Fig. 2);
* CMAL              — ``covered_latency`` / ``prefetched_latency`` (Fig. 4/13);
* FSCR              — frontend stall cycles vs a baseline run (Fig. 15);
* empty-FTQ stalls  — ``empty_ftq_stall_cycles`` (Table I);
* bandwidth         — external requests from the latency model (Fig. 5);
* lookups           — ``cache_lookups`` (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FrontendStats:
    """Mutable counters filled by one simulation run."""

    # -- cycles ---------------------------------------------------------
    delivery_cycles: int = 0
    icache_stall_cycles: int = 0
    btb_stall_cycles: int = 0
    mispredict_stall_cycles: int = 0
    backend_cycles: int = 0
    #: Stall cycles that occurred while a BTB-directed prefetcher's
    #: runahead was blocked on a BTB miss (Table I's empty-FTQ stalls).
    empty_ftq_stall_cycles: int = 0

    # -- demand stream ----------------------------------------------------
    instructions: int = 0
    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0          # full misses (no prefetch in flight)
    demand_late_prefetch: int = 0   # hit an in-flight prefetch
    seq_misses: int = 0             # misses with a sequential transition
    disc_misses: int = 0            # misses caused by a discontinuity

    # -- prefetching ------------------------------------------------------
    prefetches_issued: int = 0
    prefetches_useful: int = 0      # demanded while resident or in flight
    prefetches_useless: int = 0     # evicted without a demand hit
    covered_latency: float = 0.0    # cycles of fill latency hidden
    prefetched_latency: float = 0.0  # total fill latency of useful prefetches

    # -- structures -------------------------------------------------------
    cache_lookups: int = 0          # L1i lookups: demand + prefetch probes
    wrong_path_fetches: int = 0     # blocks fetched down squashed paths
    btb_misses: int = 0
    btb_buffer_fills: int = 0       # BTB misses rescued by the prefetch buffer
    mispredicts: int = 0
    branches: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # ---------------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return (self.delivery_cycles + self.icache_stall_cycles +
                self.btb_stall_cycles + self.mispredict_stall_cycles +
                self.backend_cycles)

    @property
    def frontend_stall_cycles(self) -> int:
        """Stalls caused by the instruction-supply path (FSCR numerator)."""
        return self.icache_stall_cycles + self.btb_stall_cycles

    @property
    def ipc(self) -> float:
        return self.instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def miss_ratio(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return (self.demand_misses + self.demand_late_prefetch) / self.demand_accesses

    @property
    def cmal(self) -> float:
        """Covered memory access latency over all useful prefetches."""
        if self.prefetched_latency == 0:
            return 0.0
        return self.covered_latency / self.prefetched_latency

    @property
    def prefetch_accuracy(self) -> float:
        done = self.prefetches_useful + self.prefetches_useless
        return self.prefetches_useful / done if done else 0.0

    def speedup_over(self, baseline: "FrontendStats") -> float:
        """IPC speedup relative to a baseline run of the same trace."""
        if self.total_cycles == 0:
            return 0.0
        return baseline.total_cycles / self.total_cycles

    def fscr_over(self, baseline: "FrontendStats") -> float:
        """Frontend Stall Cycle Reduction vs a baseline run (Fig. 15)."""
        base = baseline.frontend_stall_cycles
        if base == 0:
            return 0.0
        return 1.0 - self.frontend_stall_cycles / base

    def coverage_over(self, baseline: "FrontendStats") -> float:
        """Classic miss coverage: fraction of baseline misses eliminated."""
        base = baseline.demand_misses + baseline.demand_late_prefetch
        if base == 0:
            return 0.0
        mine = self.demand_misses + self.demand_late_prefetch
        return max(0.0, 1.0 - mine / base)

    def seq_coverage_over(self, baseline: "FrontendStats") -> float:
        """Sequential-miss coverage (Fig. 3)."""
        if baseline.seq_misses == 0:
            return 0.0
        return max(0.0, 1.0 - self.seq_misses / baseline.seq_misses)

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by reports and tests."""
        return {
            "cycles": float(self.total_cycles),
            "ipc": self.ipc,
            "miss_ratio": self.miss_ratio,
            "cmal": self.cmal,
            "accuracy": self.prefetch_accuracy,
            "lookups": float(self.cache_lookups),
            "fe_stalls": float(self.frontend_stall_cycles),
            "empty_ftq": float(self.empty_ftq_stall_cycles),
        }
