"""Frontend simulator configuration (paper Table III parameters)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memory import LatencyConfig


@dataclass
class FrontendConfig:
    """Knobs of the trace-driven frontend timing model.

    Defaults follow the paper's methodology table: 3-wide cores, 32 KB
    8-way L1i with 64 B blocks, 2 K-entry BTB, 32 MSHRs, and a >= 6-cycle
    redirect penalty for pipeline squashes (3 frontend stages + squash in
    the third backend stage).
    """

    fetch_width: int = 3
    l1i_size: int = 32 * 1024
    l1i_assoc: int = 8
    block_size: int = 64
    mshrs: int = 32

    btb_entries: int = 2048
    btb_assoc: int = 4
    ras_depth: int = 32

    #: Penalty for a taken branch whose target is unknown (BTB miss):
    #: the frontend refetches after decode resolves the target.
    btb_miss_penalty: int = 8
    #: Full squash penalty for a mispredicted direction / indirect target.
    mispredict_penalty: int = 14
    #: Wrong-path fetch depth: cache blocks fetched down the wrong path
    #: before the squash redirects the frontend.  They consume bandwidth
    #: and pollute (occasionally prefetch for) the L1i, as in the paper's
    #: wrong-path modelling.  0 disables the effect (the calibrated
    #: default charges only the squash penalty).
    wrong_path_depth: int = 0

    #: Direction predictor: "gshare" (fast bimodal/gshare hybrid) or
    #: "tage" (the paper's Table III choice; slower to simulate).
    predictor_kind: str = "gshare"
    #: Direction predictor table size (2-bit counters, gshare kind).
    predictor_entries: int = 16 * 1024

    #: Extra backend cycles per instruction (data stalls, dependencies).
    #: This keeps the frontend-bound fraction of cycles realistic for
    #: server workloads (CPI well above 2 on the paper's 3-wide cores) so
    #: speedups land in the paper's range.
    backend_cpi_extra: float = 3.2

    #: Model the data side explicitly: a synthetic L1d stream whose
    #: misses share the LLC and bandwidth with instruction fills (see
    #: ``repro.frontend.datapath``).  ``backend_cpi_extra`` should be
    #: lowered when enabling this, since data stalls are then charged
    #: from the model instead of the constant.
    model_data: bool = False
    #: Constant backend CPI used when ``model_data`` is on (dependencies
    #: and execution, with data-miss stalls now modeled).
    backend_cpi_with_data: float = 1.8

    #: LLC slice modelled behind the L1i.
    llc_size: int = 2 * 1024 * 1024
    llc_assoc: int = 16
    #: Use the dynamically-virtualized LLC (branch-footprint holder in the
    #: LRU way, Section V-D) — required for the VL-ISA BTB prefetcher.
    dv_llc: bool = False

    latency: LatencyConfig = field(default_factory=LatencyConfig)

    #: Per-demand-access cap on prefetch candidates drained from the
    #: prefetcher's queues (two L1i ports -> two lookups/cycle; the drain
    #: happens over the cycles of the access).
    prefetch_drain_per_access: int = 8

    #: Reference-point switches (Fig. 17).
    perfect_l1i: bool = False
    perfect_btb: bool = False

    def __post_init__(self) -> None:
        if self.fetch_width <= 0:
            raise ValueError("fetch width must be positive")
        if self.backend_cpi_extra < 0:
            raise ValueError("backend CPI extra cannot be negative")
        if self.predictor_kind not in ("gshare", "tage"):
            raise ValueError("predictor_kind is 'gshare' or 'tage'")
