"""Structured event log for debugging simulations.

An opt-in ring buffer of typed events the engine emits when a log is
attached (``sim.event_log = EventLog(...)``).  Tests use it to assert
event *sequences* (miss -> fill -> hit), and humans use ``dump()`` when a
prefetcher misbehaves.  Disabled (None) by default: zero overhead.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    cycle: int
    kind: str          # e.g. "demand_hit", "demand_miss", "fill", "btb_miss"
    addr: int
    detail: str = ""

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail else ""
        return f"[{self.cycle:>10d}] {self.kind:<14s} {self.addr:#012x}{detail}"


class EventLog:
    """Bounded ring buffer of :class:`Event`."""

    KINDS = ("demand_hit", "demand_miss", "demand_late", "fill",
             "evict", "prefetch", "btb_miss", "btb_rescue", "mispredict")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.counts: Counter = Counter()

    def emit(self, cycle: int, kind: str, addr: int,
             detail: str = "") -> None:
        self._events.append(Event(cycle, kind, addr, detail))
        self.counts[kind] += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self._events if e.kind == kind]

    def for_addr(self, addr: int, block_size: int = 64) -> List[Event]:
        line = addr - addr % block_size
        return [e for e in self._events
                if e.addr - e.addr % block_size == line]

    def last(self, n: int = 10) -> List[Event]:
        return list(self._events)[-n:]

    def dump(self, n: Optional[int] = None) -> str:
        events = list(self._events) if n is None else self.last(n)
        return "\n".join(str(e) for e in events)
