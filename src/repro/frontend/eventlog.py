"""Structured event log / telemetry bus for simulations.

An opt-in ring buffer of typed events the engine emits when a log is
attached (``sim.event_log = EventLog(...)``).  Tests use it to assert
event *sequences* (miss -> fill -> hit), and humans use ``dump()`` when a
prefetcher misbehaves.  Disabled (None) by default: zero overhead.

Beyond the ring buffer, the log is the repository's telemetry bus:

* **validated kinds** — every ``kind`` must come from the registry
  (:attr:`EventLog.KINDS` plus :meth:`EventLog.register_kind` /
  ``extra_kinds=``).  A typo'd kind raises in strict mode (the default
  under ``__debug__``, i.e. tests and development) and is counted under
  ``"unknown"`` otherwise, so it can never silently fork a counter;
* **scoped emitters** — :meth:`scoped` stamps every event with a
  ``source`` (e.g. a prefetcher component such as ``sn4l`` or ``dis``),
  which is what makes per-component coverage/accuracy attribution
  queryable (see :mod:`repro.obs`);
* **JSONL export/import** — :meth:`export_jsonl` /
  :meth:`import_jsonl` round-trip the buffered events;
  :class:`repro.obs.tracing.JsonlTraceLog` streams the *full* event
  stream to disk without the ring-buffer bound;
* **measurement markers** — :meth:`mark_measurement_start` zeroes the
  cumulative counts when the engine resets its statistics after warmup,
  so ``counts`` reconciles exactly with ``FrontendStats``.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    cycle: int
    kind: str          # e.g. "demand_hit", "demand_miss", "fill", "btb_miss"
    addr: int
    detail: str = ""
    source: str = ""   # emitting component ("" = the engine itself)

    def __str__(self) -> str:
        detail = f" {self.detail}" if self.detail else ""
        source = f" <{self.source}>" if self.source else ""
        return (f"[{self.cycle:>10d}] {self.kind:<14s} "
                f"{self.addr:#012x}{source}{detail}")

    def sort_key(self):
        """Stable total-order key: ``(cycle, kind, source, addr, detail)``.

        Emission order within one cycle is an implementation detail of
        the engine's inner loop; trace analytics (``repro trace diff``)
        canonicalise same-cycle events by this key before aligning two
        traces, so a harmless reordering inside a cycle never reads as a
        divergence.
        """
        return (self.cycle, self.kind, self.source, self.addr, self.detail)

    def to_dict(self) -> Dict:
        d = {"cycle": self.cycle, "kind": self.kind, "addr": self.addr}
        if self.detail:
            d["detail"] = self.detail
        if self.source:
            d["source"] = self.source
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "Event":
        return cls(cycle=int(d["cycle"]), kind=str(d["kind"]),
                   addr=int(d["addr"]), detail=str(d.get("detail", "")),
                   source=str(d.get("source", "")))


class ScopedEmitter:
    """Emit events stamped with a fixed ``source`` through a live log.

    Bound to a *holder* (any object with an ``event_log`` attribute, in
    practice the simulator) rather than a log instance, so a log attached
    after construction is picked up and a detached log costs one ``None``
    check per call.
    """

    __slots__ = ("_holder", "source")

    def __init__(self, holder, source: str):
        self._holder = holder
        self.source = source

    @property
    def enabled(self) -> bool:
        return self._holder.event_log is not None

    def emit(self, cycle: int, kind: str, addr: int, detail: str = "") -> None:
        log = self._holder.event_log
        if log is not None:
            log.emit(cycle, kind, addr, detail, source=self.source)


class _LogHolder:
    """Adapter letting :meth:`EventLog.scoped` reuse ScopedEmitter."""

    __slots__ = ("event_log",)

    def __init__(self, log):
        self.event_log = log


class EventLog:
    """Bounded ring buffer of :class:`Event` with validated kinds."""

    KINDS = ("demand_hit", "demand_miss", "demand_late", "fill",
             "evict", "prefetch", "btb_miss", "btb_rescue", "mispredict",
             "predecode")

    #: Bucket unregistered kinds fall into outside strict mode.
    UNKNOWN = "unknown"

    _REGISTRY = set(KINDS) | {UNKNOWN}

    def __init__(self, capacity: int = 4096, strict: Optional[bool] = None,
                 extra_kinds: Iterable[str] = ()):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        #: strict=None follows ``__debug__``: raise on a typo'd kind in
        #: tests/development, degrade to the "unknown" bucket under -O.
        self.strict = __debug__ if strict is None else strict
        self._kinds = self._REGISTRY | set(extra_kinds)
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.counts: Counter = Counter()

    @classmethod
    def register_kind(cls, kind: str) -> None:
        """Add ``kind`` to the global registry (new instances see it)."""
        cls._REGISTRY.add(kind)

    def known_kinds(self) -> frozenset:
        return frozenset(self._kinds)

    def emit(self, cycle: int, kind: str, addr: int,
             detail: str = "", source: str = "") -> None:
        if kind not in self._kinds:
            if self.strict:
                raise ValueError(
                    f"unregistered event kind {kind!r}; known kinds: "
                    f"{', '.join(sorted(self._kinds))} (extend with "
                    f"EventLog.register_kind or extra_kinds=)")
            detail = f"kind={kind}" + (f" {detail}" if detail else "")
            kind = self.UNKNOWN
        self._events.append(Event(cycle, kind, addr, detail, source))
        self.counts[kind] += 1

    def scoped(self, source: str) -> ScopedEmitter:
        """An emitter that stamps every event with ``source``."""
        return ScopedEmitter(_LogHolder(self), source)

    def mark_measurement_start(self) -> None:
        """Zero the cumulative counts (engine warmup reset).

        The buffered events are kept — they are a debugging aid — but
        ``counts`` restarts so it reconciles with the freshly zeroed
        :class:`~repro.frontend.stats.FrontendStats`.
        """
        self.counts.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self._events if e.kind == kind]

    def of_source(self, source: str) -> List[Event]:
        return [e for e in self._events if e.source == source]

    def for_addr(self, addr: int, block_size: int = 64) -> List[Event]:
        line = addr - addr % block_size
        return [e for e in self._events
                if e.addr - e.addr % block_size == line]

    def last(self, n: int = 10) -> List[Event]:
        return list(self._events)[-n:]

    def dump(self, n: Optional[int] = None) -> str:
        events = list(self._events) if n is None else self.last(n)
        return "\n".join(str(e) for e in events)

    # -- JSONL round-trip ----------------------------------------------

    def export_jsonl(self, path) -> int:
        """Write the buffered events as JSON Lines; returns the count.

        Note the ring-buffer bound: only the last ``capacity`` events are
        buffered.  Use :class:`repro.obs.tracing.JsonlTraceLog` to stream
        an unbounded trace during the run instead.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_dict(),
                                    separators=(",", ":")) + "\n")
        return len(self._events)

    @classmethod
    def import_jsonl(cls, path, capacity: Optional[int] = None,
                     strict: bool = False) -> "EventLog":
        """Rebuild a log from a JSONL trace file (markers are skipped)."""
        events = []
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                d = json.loads(raw)
                if "marker" in d:
                    continue
                events.append(Event.from_dict(d))
        log = cls(capacity=capacity or max(1, len(events)), strict=strict)
        for event in events:
            log.emit(event.cycle, event.kind, event.addr, event.detail,
                     event.source)
        return log
