"""L1i prefetch buffer.

Some evaluated schemes (Shotgun, and the NXL side-effect study of Fig. 5)
place prefetched blocks in a small fully-associative buffer next to the
L1i instead of the cache itself, trading pollution immunity for an extra
lookup.  The paper's own SN4L and Dis prefetchers are accurate enough to
prefetch directly into the cache and do not use one (Table II).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..isa import CACHE_BLOCK_SIZE, block_base


class L1PrefetchBuffer:
    """Fully-associative FIFO buffer of prefetched blocks.

    Stores the fill latency of each block so a later demand hit can credit
    the covered latency (CMAL accounting)."""

    def __init__(self, n_entries: int = 64,
                 block_size: int = CACHE_BLOCK_SIZE):
        if n_entries <= 0:
            raise ValueError("prefetch buffer needs at least one entry")
        self.n_entries = n_entries
        self.block_size = block_size
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def contains(self, addr: int) -> bool:
        return block_base(addr, self.block_size) in self._entries

    def fill(self, addr: int, fill_latency: int) -> Optional[int]:
        """Insert a prefetched block; returns the evicted block address
        (a useless prefetch) when the FIFO overflows."""
        line = block_base(addr, self.block_size)
        victim = None
        if line in self._entries:
            self._entries.move_to_end(line)
            self._entries[line] = fill_latency
            return None
        if len(self._entries) >= self.n_entries:
            victim, _lat = self._entries.popitem(last=False)
        self._entries[line] = fill_latency
        return victim

    def take(self, addr: int) -> Optional[int]:
        """Demand lookup: remove and return the block's fill latency on a
        hit (the block moves into the L1i), or ``None`` on a miss."""
        line = block_base(addr, self.block_size)
        lat = self._entries.pop(line, None)
        if lat is None:
            self.misses += 1
            return None
        self.hits += 1
        return lat

    def __len__(self) -> int:
        return len(self._entries)

    #: Tag (~40 bits) + data (one block) per entry.
    def storage_bytes(self) -> int:
        return self.n_entries * (40 // 8 + self.block_size)
