"""Byte-level codecs for the synthetic fixed- and variable-length ISAs.

The codecs produce and parse real byte streams so that the pre-decoder
(:mod:`repro.isa.predecoder`) genuinely extracts branches from memory
contents rather than from an oracle.

Fixed-length encoding (4 bytes per instruction)
    byte 0        opcode (one of the ``BranchKind`` values)
    bytes 1..3    signed 24-bit byte displacement (``target - pc``), only
                  meaningful for COND / JUMP / CALL; zero otherwise

Variable-length encoding (2 to 10 bytes per instruction)
    byte 0        high nibble = opcode, low nibble = total instruction length
    bytes 1..4    signed 32-bit little-endian byte displacement for
                  COND / JUMP / CALL (these kinds are always >= 6 bytes)
    rest          immediate padding bytes (0x90)

Parsing a variable-length stream requires knowing where an instruction
starts; starting mid-instruction misparses, which is exactly the VL-ISA
challenge the paper's branch footprints (Section V-D) solve.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .instructions import (
    FIXED_INSTRUCTION_SIZE,
    MAX_VARIABLE_SIZE,
    MIN_VARIABLE_SIZE,
    BranchKind,
    Instruction,
)

_PAD_BYTE = 0x90
_DISP24_MIN = -(1 << 23)
_DISP24_MAX = (1 << 23) - 1
_DISP32_MIN = -(1 << 31)
_DISP32_MAX = (1 << 31) - 1

#: Minimum size of a VL branch with an encoded target: opcode + 4 disp bytes
#: rounded up to the 6-byte slot the generator uses.
VL_BRANCH_MIN_SIZE = 6


class EncodingError(ValueError):
    """Raised when an instruction cannot be encoded or decoded."""


def encode_fixed(instr: Instruction) -> bytes:
    """Encode one instruction of the fixed-length ISA into 4 bytes."""
    if instr.size != FIXED_INSTRUCTION_SIZE:
        raise EncodingError(
            f"fixed-length ISA requires {FIXED_INSTRUCTION_SIZE}-byte "
            f"instructions, got {instr.size}"
        )
    disp = 0
    if instr.kind.target_encoded:
        disp = instr.target - instr.pc
        if not _DISP24_MIN <= disp <= _DISP24_MAX:
            raise EncodingError(f"displacement {disp} out of 24-bit range")
    return bytes((instr.kind.value & 0xFF,)) + (disp & 0xFFFFFF).to_bytes(3, "little")


def decode_fixed(data: bytes, pc: int) -> Instruction:
    """Decode one fixed-length instruction from 4 bytes starting at ``pc``."""
    if len(data) < FIXED_INSTRUCTION_SIZE:
        raise EncodingError("truncated fixed-length instruction")
    opcode = data[0]
    try:
        kind = BranchKind(opcode)
    except ValueError as exc:
        raise EncodingError(f"unknown opcode {opcode:#x} at {pc:#x}") from exc
    target = None
    if kind.target_encoded:
        raw = int.from_bytes(data[1:4], "little")
        if raw & 0x800000:
            raw -= 1 << 24
        target = pc + raw
    return Instruction(pc=pc, size=FIXED_INSTRUCTION_SIZE, kind=kind, target=target)


def encode_variable(instr: Instruction) -> bytes:
    """Encode one instruction of the variable-length ISA."""
    if not MIN_VARIABLE_SIZE <= instr.size <= MAX_VARIABLE_SIZE:
        raise EncodingError(
            f"variable-length instruction size {instr.size} outside "
            f"[{MIN_VARIABLE_SIZE}, {MAX_VARIABLE_SIZE}]"
        )
    if instr.kind.target_encoded and instr.size < VL_BRANCH_MIN_SIZE:
        raise EncodingError(
            f"{instr.kind.name} needs at least {VL_BRANCH_MIN_SIZE} bytes "
            f"to encode a displacement, got {instr.size}"
        )
    out = bytearray(instr.size)
    out[0] = ((instr.kind.value & 0xF) << 4) | (instr.size & 0xF)
    if instr.kind.target_encoded:
        disp = instr.target - instr.pc
        if not _DISP32_MIN <= disp <= _DISP32_MAX:
            raise EncodingError(f"displacement {disp} out of 32-bit range")
        out[1:5] = (disp & 0xFFFFFFFF).to_bytes(4, "little")
        for i in range(5, instr.size):
            out[i] = _PAD_BYTE
    else:
        for i in range(1, instr.size):
            out[i] = _PAD_BYTE
    return bytes(out)


def decode_variable(data: bytes, pc: int) -> Instruction:
    """Decode one variable-length instruction starting at ``pc``."""
    if not data:
        raise EncodingError("empty variable-length instruction")
    opcode = data[0] >> 4
    size = data[0] & 0xF
    if not MIN_VARIABLE_SIZE <= size <= MAX_VARIABLE_SIZE:
        raise EncodingError(f"invalid VL instruction length {size} at {pc:#x}")
    if len(data) < size:
        raise EncodingError("truncated variable-length instruction")
    try:
        kind = BranchKind(opcode)
    except ValueError as exc:
        raise EncodingError(f"unknown opcode {opcode:#x} at {pc:#x}") from exc
    target = None
    if kind.target_encoded:
        raw = int.from_bytes(data[1:5], "little")
        if raw & 0x80000000:
            raw -= 1 << 32
        target = pc + raw
    return Instruction(pc=pc, size=size, kind=kind, target=target)


class TextSegment:
    """A byte-addressed program image plus the ISA used to encode it.

    The segment owns the authoritative bytes; the pre-decoder reads them
    back.  ``variable_length`` selects between the two codecs.
    """

    def __init__(self, base: int, size: int, variable_length: bool = False):
        if base < 0 or size <= 0:
            raise ValueError("text segment needs a non-negative base and positive size")
        self.base = base
        self.size = size
        self.variable_length = variable_length
        self._bytes = bytearray(size)

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return self.base <= addr and addr + length <= self.end

    def write_instruction(self, instr: Instruction) -> None:
        """Encode ``instr`` and store its bytes at ``instr.pc``."""
        if self.variable_length:
            encoded = encode_variable(instr)
        else:
            encoded = encode_fixed(instr)
        if not self.contains(instr.pc, len(encoded)):
            raise EncodingError(
                f"instruction at {instr.pc:#x} (+{len(encoded)}) outside segment "
                f"[{self.base:#x}, {self.end:#x})"
            )
        off = instr.pc - self.base
        self._bytes[off:off + len(encoded)] = encoded

    def read(self, addr: int, length: int) -> bytes:
        """Read raw bytes; reads past the segment end are truncated."""
        if addr < self.base:
            raise EncodingError(f"read at {addr:#x} below segment base")
        off = addr - self.base
        return bytes(self._bytes[off:off + length])

    def decode_at(self, pc: int) -> Instruction:
        """Decode the instruction starting exactly at ``pc``."""
        window = self.read(pc, MAX_VARIABLE_SIZE if self.variable_length
                           else FIXED_INSTRUCTION_SIZE)
        if self.variable_length:
            return decode_variable(window, pc)
        return decode_fixed(window, pc)

    def decode_range(self, start: int, end: int) -> List[Instruction]:
        """Decode consecutive instructions in ``[start, end)``.

        ``start`` must be a true instruction boundary.  For the fixed-length
        ISA any 4-byte-aligned address is a boundary; for the VL-ISA the
        caller must know the boundary (that is the point of branch
        footprints).
        """
        out: List[Instruction] = []
        pc = start
        while pc < end and self.contains(pc):
            instr = self.decode_at(pc)
            out.append(instr)
            pc = instr.end
        return out

    def instruction_count(self, start: int, end: int) -> int:
        return len(self.decode_range(start, end))


def displacement_fits_fixed(pc: int, target: int) -> bool:
    """Whether ``target`` is PC-relative encodable in the fixed-length ISA."""
    return _DISP24_MIN <= (target - pc) <= _DISP24_MAX


def split_sizes_variable(total: int, n_instr: int, n_branches: int,
                         rng) -> Optional[Tuple[int, ...]]:
    """Pick VL instruction sizes summing to ``total``.

    The first ``n_branches`` slots are branch-capable (>= 6 bytes).  Returns
    ``None`` when no split exists.  ``rng`` is a ``numpy.random.Generator``.
    """
    if n_instr <= 0:
        return None
    lo = n_branches * VL_BRANCH_MIN_SIZE + (n_instr - n_branches) * MIN_VARIABLE_SIZE
    hi = n_instr * MAX_VARIABLE_SIZE
    if not lo <= total <= hi:
        return None
    sizes = [VL_BRANCH_MIN_SIZE] * n_branches + \
            [MIN_VARIABLE_SIZE] * (n_instr - n_branches)
    slack = total - sum(sizes)
    while slack > 0:
        i = int(rng.integers(0, n_instr))
        room = MAX_VARIABLE_SIZE - sizes[i]
        if room == 0:
            continue
        add = min(room, slack)
        sizes[i] += add
        slack -= add
    return tuple(sizes)
