"""Instruction model for the synthetic ISAs.

The paper evaluates on the UltraSPARC III (fixed-length) ISA and discusses an
extension to variable-length ISAs.  Neither ISA is available here, so this
module defines a small synthetic instruction model that carries exactly the
information the prefetchers need: where instructions start, how long they
are, which ones are branches, what kind of branch they are, and whether the
target is encoded in the instruction itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class BranchKind(enum.IntEnum):
    """Classification of instructions as seen by the pre-decoder and BTBs.

    ``COND``, ``JUMP`` and ``CALL`` encode a PC-relative target in the
    instruction, so a pre-decoder can extract the target without consulting
    the BTB.  ``RETURN`` takes its target from the return address stack and
    ``INDIRECT`` from a register, so neither has an encoded target.
    """

    NOT_BRANCH = 0
    COND = 1
    JUMP = 2
    CALL = 3
    RETURN = 4
    INDIRECT = 5

    @property
    def is_branch(self) -> bool:
        return self is not BranchKind.NOT_BRANCH

    @property
    def target_encoded(self) -> bool:
        """True when the branch target can be computed from the bytes alone."""
        return self in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL)

    @property
    def is_unconditional(self) -> bool:
        return self in (BranchKind.JUMP, BranchKind.CALL,
                        BranchKind.RETURN, BranchKind.INDIRECT)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``target`` is the absolute target address for branches whose target is
    encoded in the instruction (conditional branches, direct jumps and
    calls); ``None`` for non-branches, returns and indirect branches.
    """

    pc: int
    size: int
    kind: BranchKind = BranchKind.NOT_BRANCH
    target: Optional[int] = None

    @property
    def is_branch(self) -> bool:
        return self.kind.is_branch

    @property
    def end(self) -> int:
        """Address of the first byte after this instruction."""
        return self.pc + self.size

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"instruction size must be positive, got {self.size}")
        if self.kind.target_encoded and self.target is None:
            raise ValueError(f"{self.kind.name} branch at {self.pc:#x} needs a target")
        if not self.kind.is_branch and self.target is not None:
            raise ValueError("non-branch instructions cannot carry a target")


FIXED_INSTRUCTION_SIZE = 4
"""Instruction size of the synthetic fixed-length ISA (bytes)."""

CACHE_BLOCK_SIZE = 64
"""Cache block size used throughout the reproduction (bytes)."""

MIN_VARIABLE_SIZE = 2
MAX_VARIABLE_SIZE = 10
"""Instruction size bounds of the synthetic variable-length ISA (bytes)."""


def block_of(addr: int, block_size: int = CACHE_BLOCK_SIZE) -> int:
    """Cache-block index of a byte address."""
    return addr // block_size


def block_base(addr: int, block_size: int = CACHE_BLOCK_SIZE) -> int:
    """Byte address of the start of the cache block containing ``addr``."""
    return addr - (addr % block_size)


def block_offset(addr: int, block_size: int = CACHE_BLOCK_SIZE) -> int:
    """Byte offset of ``addr`` within its cache block."""
    return addr % block_size
