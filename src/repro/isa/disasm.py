"""Tiny disassembler for the synthetic ISAs.

Renders instructions and cache blocks as human-readable text — handy in
tests, debugging sessions (next to the engine's event log), and for
inspecting generated programs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .encoding import EncodingError, TextSegment
from .instructions import CACHE_BLOCK_SIZE, BranchKind, Instruction, block_base

_MNEMONICS = {
    BranchKind.NOT_BRANCH: "op",
    BranchKind.COND: "bcc",
    BranchKind.JUMP: "jmp",
    BranchKind.CALL: "call",
    BranchKind.RETURN: "ret",
    BranchKind.INDIRECT: "icall",
}


def format_instruction(instr: Instruction) -> str:
    """One-line rendering: address, size, mnemonic, target."""
    mnem = _MNEMONICS[instr.kind]
    target = ""
    if instr.target is not None:
        target = f" {instr.target:#x}"
    elif instr.kind in (BranchKind.RETURN, BranchKind.INDIRECT):
        target = " <dynamic>"
    return f"{instr.pc:#010x}: {mnem:<5s}{target}  ; {instr.size}B"


def disassemble_range(segment: TextSegment, start: int, end: int,
                      ) -> List[str]:
    """Disassemble ``[start, end)``; ``start`` must be a boundary."""
    lines = []
    for instr in segment.decode_range(start, end):
        lines.append(format_instruction(instr))
    return lines


def disassemble_block(segment: TextSegment, addr: int,
                      footprint_offsets: Optional[Iterable[int]] = None
                      ) -> str:
    """Disassemble one cache block.

    Fixed-length segments decode wholesale; variable-length segments
    decode only at the given footprint byte offsets (the boundaries a
    real pre-decoder would know), annotating the rest as opaque.
    """
    base = block_base(addr)
    header = f"block {base:#x}..{base + CACHE_BLOCK_SIZE - 1:#x}"
    if not segment.variable_length:
        lo = max(base, segment.base)
        hi = min(base + CACHE_BLOCK_SIZE, segment.end)
        if lo >= hi:
            return f"{header}\n  (outside text segment)"
        body = disassemble_range(segment, lo, hi)
        return "\n".join([header] + [f"  {line}" for line in body])

    offsets = sorted(set(footprint_offsets or ()))
    if not offsets:
        return f"{header}\n  (variable-length: no known boundaries)"
    lines = [header]
    for off in offsets:
        pc = base + off
        try:
            instr = segment.decode_at(pc)
        except EncodingError:
            lines.append(f"  {pc:#010x}: <undecodable>")
            continue
        lines.append(f"  {format_instruction(instr)}")
    return "\n".join(lines)
