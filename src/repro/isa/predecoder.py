"""Block pre-decoder shared by the Dis and BTB prefetchers (paper Section V-C).

A single pre-decoder serves both consumers: it walks the instructions of a
cache block, extracts the branch instructions (for BTB prefilling), and can
additionally check whether the instruction at a given offset — the offset the
DisTable recorded — is a branch, and if so compute its target.

For the fixed-length ISA every 4-byte-aligned address in a block is an
instruction boundary, so a block can be decoded in isolation.  For the
variable-length ISA boundaries are unknown; the pre-decoder then requires a
*branch footprint* (the byte offsets of up to four branches in the block,
Section V-D) and only decodes at those offsets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .encoding import EncodingError, TextSegment
from .instructions import (
    CACHE_BLOCK_SIZE,
    FIXED_INSTRUCTION_SIZE,
    BranchKind,
    Instruction,
    block_base,
)


@dataclass
class PredecodeResult:
    """Everything a pre-decode pass over one cache block discovered."""

    block_addr: int
    branches: List[Instruction] = field(default_factory=list)
    #: Branch found at the offset the caller asked about (DisTable replay),
    #: or None when the offset held a non-branch / undecodable bytes.
    offset_branch: Optional[Instruction] = None


class PredecodeCaches:
    """Shared decode memos for one immutable text segment.

    A :class:`~repro.cfg.layout.Program` owns one instance and hands it to
    every Predecoder it builds, so repeated simulations of the same program
    (e.g. a benchmark matrix) decode each block's bytes once instead of
    once per simulator.  Instruction objects are frozen dataclasses and the
    segment never changes, so sharing is safe; per-pass accounting
    (``blocks_decoded``) stays on the individual Predecoder.
    """

    __slots__ = ("fixed", "fixed_info", "vl", "prewarmed")

    def __init__(self) -> None:
        #: block base -> list of branch Instructions (fixed-length ISA)
        self.fixed: dict = {}
        #: block base -> (branches tuple, offset -> branch map)
        self.fixed_info: dict = {}
        #: pc -> Instruction | None (variable-length ISA)
        self.vl: dict = {}
        #: True once :meth:`Predecoder.prewarm_fixed` has decoded the
        #: whole segment into these memos.
        self.prewarmed = False


class Predecoder:
    """Decodes cache blocks to find branch instructions.

    ``latency`` is the modelled pipeline cost (cycles) of one pre-decode
    pass; the frontend charges it on the prefetch path, never on the demand
    path.  The paper notes that fixed-length blocks pre-decode in parallel
    while VL-ISA blocks proceed instruction by instruction, hence the
    higher default VL latency.
    """

    def __init__(self, segment: TextSegment, latency: int = 1,
                 vl_latency: int = 4,
                 caches: Optional[PredecodeCaches] = None):
        self.segment = segment
        self.latency = vl_latency if segment.variable_length else latency
        self.blocks_decoded = 0
        # Simulation-speed memo: the text segment is immutable, so a
        # block always decodes to the same result.  Hardware re-decodes
        # every pass (``blocks_decoded`` still counts the passes).
        # ``caches`` lets a Program share the memos across its predecoders.
        if caches is None:
            caches = PredecodeCaches()
        self._caches = caches
        self._fixed_cache = caches.fixed
        self._vl_cache = caches.vl
        # (branches tuple, offset -> branch map) per block, for the
        # allocation-free fixed-ISA path (fixed_block_info).
        self._fixed_info = caches.fixed_info

    def _block_bounds(self, addr: int) -> range:
        base = block_base(addr)
        lo = max(base, self.segment.base)
        hi = min(base + CACHE_BLOCK_SIZE, self.segment.end)
        return range(lo, hi)

    def decode_block(self, block_addr: int,
                     footprint_offsets: Optional[Sequence[int]] = None,
                     dis_offset: Optional[int] = None) -> PredecodeResult:
        """Pre-decode one cache block.

        ``footprint_offsets`` — byte offsets of branches within the block;
        required for VL-ISA blocks, ignored for fixed-length ones.

        ``dis_offset`` — the DisTable offset to check: an *instruction*
        offset for the fixed-length ISA (4-bit, 16 slots) or a *byte*
        offset for the VL-ISA (6-bit).
        """
        self.blocks_decoded += 1
        bounds = self._block_bounds(block_addr)
        result = PredecodeResult(block_addr=block_base(block_addr))
        if not len(bounds):
            return result

        if self.segment.variable_length:
            self._decode_variable(result, bounds, footprint_offsets, dis_offset)
        else:
            self._decode_fixed(result, bounds, dis_offset)
        return result

    def _decode_fixed(self, result: PredecodeResult, bounds: range,
                      dis_offset: Optional[int]) -> None:
        base = result.block_addr
        cached = self._fixed_cache.get(base)
        if cached is None:
            cached = []
            for pc in range(bounds.start, bounds.stop, FIXED_INSTRUCTION_SIZE):
                try:
                    instr = self.segment.decode_at(pc)
                except EncodingError:
                    continue
                if instr.is_branch:
                    cached.append(instr)
            self._fixed_cache[base] = cached
        result.branches = list(cached)
        if dis_offset is not None:
            for instr in cached:
                if (instr.pc - base) // FIXED_INSTRUCTION_SIZE == dis_offset:
                    result.offset_branch = instr
                    break

    def fixed_block_info(self, block_addr: int):
        """Pre-decode a fixed-length block without result-object churn.

        Returns ``(branches, offset_map)``: the block's branch
        instructions as a tuple and a map from 4-bit instruction offset
        to the first branch at that offset — the two pieces
        :meth:`decode_block` would package into a fresh
        :class:`PredecodeResult` (with a copied list) on every pass.
        Counts one pre-decode pass like :meth:`decode_block`; callers
        must not mutate the returned structures.
        """
        if self.segment.variable_length:
            raise EncodingError(
                "fixed_block_info is only defined for fixed-length ISAs")
        self.blocks_decoded += 1
        base = block_base(block_addr)
        info = self._fixed_info.get(base)
        if info is None:
            cached = self._fixed_cache.get(base)
            if cached is None:
                cached = []
                bounds = self._block_bounds(base)
                for pc in range(bounds.start, bounds.stop,
                                FIXED_INSTRUCTION_SIZE):
                    try:
                        instr = self.segment.decode_at(pc)
                    except EncodingError:
                        continue
                    if instr.is_branch:
                        cached.append(instr)
                self._fixed_cache[base] = cached
            offset_map: dict = {}
            for instr in cached:
                offset_map.setdefault(
                    (instr.pc - base) // FIXED_INSTRUCTION_SIZE, instr)
            info = (tuple(cached), offset_map)
            self._fixed_info[base] = info
        return info

    def prewarm_fixed(self) -> None:
        """Decode every fixed-ISA block of the segment into the memos.

        Pure cache warming done at construction/attach time: it fills
        the shared ``fixed_info``/``fixed`` maps without touching
        ``blocks_decoded`` (per-pass accounting is a property of the
        passes, not of the memo state), so simulated behaviour and
        counters are unchanged — only the cold first-decode cost moves
        off the simulated hot path.  No-op for variable-length
        segments and when the shared caches were already prewarmed.
        """
        if self.segment.variable_length or self._caches.prewarmed:
            return
        self._caches.prewarmed = True
        info = self._fixed_info
        fixed = self._fixed_cache
        seg = self.segment
        start = block_base(seg.base)
        for base in range(start, seg.end, CACHE_BLOCK_SIZE):
            if base in info:
                continue
            cached = fixed.get(base)
            if cached is None:
                cached = []
                bounds = self._block_bounds(base)
                for pc in range(bounds.start, bounds.stop,
                                FIXED_INSTRUCTION_SIZE):
                    try:
                        instr = seg.decode_at(pc)
                    except EncodingError:
                        continue
                    if instr.is_branch:
                        cached.append(instr)
                fixed[base] = cached
            offset_map: dict = {}
            for instr in cached:
                offset_map.setdefault(
                    (instr.pc - base) // FIXED_INSTRUCTION_SIZE, instr)
            info[base] = (tuple(cached), offset_map)

    def _decode_one_vl(self, pc: int) -> Optional[Instruction]:
        if pc in self._vl_cache:
            return self._vl_cache[pc]
        try:
            instr = self.segment.decode_at(pc)
        except EncodingError:
            instr = None
        self._vl_cache[pc] = instr
        return instr

    def _decode_variable(self, result: PredecodeResult, bounds: range,
                         footprint_offsets: Optional[Sequence[int]],
                         dis_offset: Optional[int]) -> None:
        base = result.block_addr
        offsets = set(footprint_offsets or ())
        if dis_offset is not None:
            offsets.add(dis_offset)
        for off in sorted(offsets):
            pc = base + off
            if not (bounds.start <= pc < bounds.stop):
                continue
            instr = self._decode_one_vl(pc)
            if instr is None or not instr.is_branch:
                continue
            if footprint_offsets is None or off in footprint_offsets:
                result.branches.append(instr)
            if dis_offset is not None and off == dis_offset:
                result.offset_branch = instr

    def branch_offsets(self, block_addr: int) -> List[int]:
        """Byte offsets of all branch instructions in a fixed-length block.

        Used to *construct* branch footprints; only defined for the
        fixed-length ISA (the retire stream provides offsets for VL-ISA).
        """
        if self.segment.variable_length:
            raise EncodingError(
                "branch offsets of a VL block cannot be discovered by "
                "scanning; build footprints from the retire stream instead"
            )
        base = block_base(block_addr)
        return [instr.pc - base
                for instr in self.decode_block(block_addr).branches]


def target_of(instr: Instruction, btb_lookup=None) -> Optional[int]:
    """Resolve a branch target the way the Dis prefetcher does (Section V-B).

    Targets encoded in the instruction are returned directly; otherwise the
    BTB is consulted via ``btb_lookup(pc) -> Optional[int]``; if that also
    fails, ``None`` (no prefetch is sent).
    """
    if not instr.is_branch:
        return None
    if instr.kind.target_encoded:
        return instr.target
    if btb_lookup is not None:
        return btb_lookup(instr.pc)
    return None
