"""Synthetic ISA substrate: instruction model, codecs, and the pre-decoder."""

from .encoding import (
    EncodingError,
    TextSegment,
    VL_BRANCH_MIN_SIZE,
    decode_fixed,
    decode_variable,
    displacement_fits_fixed,
    encode_fixed,
    encode_variable,
    split_sizes_variable,
)
from .instructions import (
    CACHE_BLOCK_SIZE,
    FIXED_INSTRUCTION_SIZE,
    MAX_VARIABLE_SIZE,
    MIN_VARIABLE_SIZE,
    BranchKind,
    Instruction,
    block_base,
    block_of,
    block_offset,
)
from .disasm import disassemble_block, disassemble_range, format_instruction
from .predecoder import PredecodeCaches, Predecoder, PredecodeResult, target_of

__all__ = [
    "BranchKind",
    "Instruction",
    "TextSegment",
    "PredecodeCaches",
    "Predecoder",
    "PredecodeResult",
    "EncodingError",
    "CACHE_BLOCK_SIZE",
    "FIXED_INSTRUCTION_SIZE",
    "MIN_VARIABLE_SIZE",
    "MAX_VARIABLE_SIZE",
    "VL_BRANCH_MIN_SIZE",
    "encode_fixed",
    "decode_fixed",
    "encode_variable",
    "decode_variable",
    "displacement_fits_fixed",
    "split_sizes_variable",
    "block_of",
    "block_base",
    "block_offset",
    "target_of",
    "format_instruction",
    "disassemble_range",
    "disassemble_block",
]
