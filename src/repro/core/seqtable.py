"""SeqTable: SN4L's per-block sequential-prefetch usefulness bits.

A direct-mapped, tagless table of single bits, one per instruction block
(paper Section V-A).  All entries initialise to 1 ("prefetch the first
time").  Because the table is indexed by block number modulo its size, the
four subsequent blocks of block ``A`` naturally live in entries
``A+1 .. A+4`` — one table read yields the 4-bit status SN4L caches in the
line's *local prefetch status*.

``n_entries=None`` gives the unlimited reference table used by Fig. 11.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa import CACHE_BLOCK_SIZE


class SeqTable:
    """Direct-mapped tagless bit table, with optional conflict telemetry."""

    def __init__(self, n_entries: Optional[int] = 16 * 1024,
                 block_size: int = CACHE_BLOCK_SIZE,
                 track_conflicts: bool = False):
        if n_entries is not None and n_entries <= 0:
            raise ValueError("SeqTable size must be positive (or None)")
        self.n_entries = n_entries
        self.block_size = block_size
        if n_entries is None:
            self._bits: Dict[int, int] = {}
        else:
            self._bits = bytearray(b"\x01" * n_entries)
        self.track_conflicts = track_conflicts
        self._owners: Dict[int, int] = {}
        self.lookups = 0
        self.conflicts = 0

    @property
    def unlimited(self) -> bool:
        return self.n_entries is None

    def _index(self, addr: int) -> int:
        block = addr // self.block_size
        if self.unlimited:
            return block
        return block % self.n_entries

    def _note_access(self, addr: int, idx: int) -> None:
        self.lookups += 1
        if self.track_conflicts and not self.unlimited:
            block = addr // self.block_size
            owner = self._owners.get(idx)
            if owner is not None and owner != block:
                self.conflicts += 1
            self._owners[idx] = block

    def get(self, addr: int) -> bool:
        """Should the block holding ``addr`` be sequentially prefetched?"""
        idx = self._index(addr)
        self._note_access(addr, idx)
        if self.unlimited:
            return bool(self._bits.get(idx, 1))
        return bool(self._bits[idx])

    def set(self, addr: int) -> None:
        idx = self._index(addr)
        if self.unlimited:
            self._bits[idx] = 1
        else:
            self._bits[idx] = 1

    def reset(self, addr: int) -> None:
        idx = self._index(addr)
        self._bits[idx] = 0

    def next4_status(self, addr: int) -> int:
        """4-bit status of the four subsequent blocks (bit 0 = next block).

        One table read in hardware; modelled as a batched 4-bit probe.
        The common limited, untracked configuration reads the bit array
        directly (still counting four lookups); reference configurations
        take the generic per-bit path so conflict telemetry stays exact.
        """
        n = self.n_entries
        if n is not None and not self.track_conflicts:
            self.lookups += 4
            bits = self._bits
            block = addr // self.block_size
            return (bits[(block + 1) % n]
                    | bits[(block + 2) % n] << 1
                    | bits[(block + 3) % n] << 2
                    | bits[(block + 4) % n] << 3)
        status = 0
        for i in range(1, 5):
            if self.get(addr + i * self.block_size):
                status |= 1 << (i - 1)
        return status

    @property
    def conflict_ratio(self) -> float:
        return self.conflicts / self.lookups if self.lookups else 0.0

    def storage_bytes(self) -> int:
        if self.unlimited:
            return 0  # reference configuration, not hardware
        return self.n_entries // 8
