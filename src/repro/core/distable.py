"""DisTable: the Dis prefetcher's discontinuity-branch offset store.

Direct-mapped and *partially tagged* (paper Section V-B): each row holds a
4-bit partial tag of the block address and the offset of the branch
instruction that last caused a discontinuity miss out of that block — a
4-bit instruction offset for the fixed-length ISA (16 four-byte
instructions per 64-byte block) or a 6-bit byte offset for variable-length
ISAs (Section V-D).

The ``tag_bits`` parameter reproduces Fig. 12's tagging-policy study:
``0`` models the conventional tagless table (heavy overprediction), ``4``
is the proposal, ``None`` a fully-tagged reference.  ``n_entries=None``
gives the unlimited reference table of Fig. 11.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..isa import CACHE_BLOCK_SIZE


class DisTable:
    """Direct-mapped, partially-tagged offset table."""

    def __init__(self, n_entries: Optional[int] = 4096,
                 tag_bits: Optional[int] = 4,
                 offset_bits: int = 4,
                 block_size: int = CACHE_BLOCK_SIZE):
        if n_entries is not None and n_entries <= 0:
            raise ValueError("DisTable size must be positive (or None)")
        if tag_bits is not None and tag_bits < 0:
            raise ValueError("tag bits cannot be negative")
        if offset_bits not in (4, 6):
            raise ValueError("offset is 4 bits (fixed ISA) or 6 bits (VL-ISA)")
        self.n_entries = n_entries
        self.tag_bits = tag_bits
        self.offset_bits = offset_bits
        self.block_size = block_size
        # row -> (stored_tag, offset); unlimited mode keys rows by block.
        self._rows: Dict[int, Tuple[int, int]] = {}
        self.lookups = 0
        self.hits = 0
        self.false_hits = 0  # partial-tag aliases (measurable, not visible to hw)
        self._true_owner: Dict[int, int] = {}

    @property
    def unlimited(self) -> bool:
        return self.n_entries is None

    @property
    def fully_tagged(self) -> bool:
        return self.tag_bits is None

    def _row_tag(self, addr: int) -> Tuple[int, int]:
        block = addr // self.block_size
        if self.unlimited:
            return block, 0
        row = block % self.n_entries
        rest = block // self.n_entries
        if self.fully_tagged:
            tag = rest
        elif self.tag_bits == 0:
            tag = 0
        else:
            tag = rest & ((1 << self.tag_bits) - 1)
        return row, tag

    def record(self, addr: int, offset: int) -> None:
        """Remember the discontinuity branch offset for a block."""
        if not 0 <= offset < (1 << self.offset_bits):
            raise ValueError(
                f"offset {offset} does not fit {self.offset_bits} bits")
        row, tag = self._row_tag(addr)
        self._rows[row] = (tag, offset)
        self._true_owner[row] = addr // self.block_size

    def lookup(self, addr: int) -> Optional[int]:
        """Offset recorded for this block, if the (partial) tag matches."""
        self.lookups += 1
        row, tag = self._row_tag(addr)
        entry = self._rows.get(row)
        if entry is None:
            return None
        stored_tag, offset = entry
        if stored_tag != tag:
            return None
        self.hits += 1
        if self._true_owner.get(row) != addr // self.block_size:
            self.false_hits += 1
        return offset

    def invalidate(self, addr: int) -> None:
        row, tag = self._row_tag(addr)
        entry = self._rows.get(row)
        if entry is not None and entry[0] == tag:
            del self._rows[row]
            self._true_owner.pop(row, None)

    @property
    def alias_ratio(self) -> float:
        """Fraction of hits that matched a different block (overprediction
        source for weakly-tagged configurations)."""
        return self.false_hits / self.hits if self.hits else 0.0

    def storage_bytes(self) -> int:
        if self.unlimited:
            return 0
        tag_bits = 0 if self.fully_tagged else (self.tag_bits or 0)
        if self.fully_tagged:
            tag_bits = 40  # generous full-tag reference
        return self.n_entries * (tag_bits + self.offset_bits) // 8
