"""The paper's contribution: SN4L, Dis, the proactive engine, BTB prefilling.

Public entry points:

* :class:`Sn4lPrefetcher` — standalone selective next-four-line prefetcher;
* :class:`ProactivePrefetcher` — the composable SN4L+Dis+BTB engine;
* :func:`sn4l_dis_btb` / :func:`sn4l_dis` / :func:`dis_only` — the named
  configurations evaluated in the paper.
"""

from .distable import DisTable
from .proactive import (
    FIXED_OFFSET_BITS,
    VARIABLE_OFFSET_BITS,
    ProactivePrefetcher,
    dis_only,
    sn4l_dis,
    sn4l_dis_btb,
)
from .rlu import PrefetchQueue, RecentlyLookedUp
from .seqtable import SeqTable
from .sn4l import Sn4lPrefetcher

__all__ = [
    "SeqTable",
    "DisTable",
    "RecentlyLookedUp",
    "PrefetchQueue",
    "Sn4lPrefetcher",
    "ProactivePrefetcher",
    "sn4l_dis_btb",
    "sn4l_dis",
    "dis_only",
    "FIXED_OFFSET_BITS",
    "VARIABLE_OFFSET_BITS",
]
