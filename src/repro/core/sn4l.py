"""SN4L: the selective next-four-line prefetcher (paper Section V-A).

Standalone scheme: on every demand access to block ``A``, consult the
4-bit local prefetch status (cached in the line at fill time from
SeqTable) and prefetch exactly those of ``A+1 .. A+4`` that are marked
useful and absent from the cache.  SN4L is accurate enough to prefetch
straight into the L1i — no prefetch buffer.

Metadata maintenance (Section V-A "Updating the metadata"):

* demand hit on a prefetched block  -> set its SeqTable bit (useful);
* eviction of a never-demanded prefetched block -> reset its bit;
* demand miss on a block            -> set its bit (should have prefetched).
"""

from __future__ import annotations

from typing import Optional

from ..frontend.engine import HIT
from ..isa import CACHE_BLOCK_SIZE
from ..prefetchers.base import Prefetcher
from .seqtable import SeqTable


class Sn4lPrefetcher(Prefetcher):
    """Selective NXL prefetcher; ``depth=4`` gives the paper's SN4L."""

    def __init__(self, depth: int = 4,
                 seqtable: Optional[SeqTable] = None,
                 seqtable_entries: Optional[int] = 16 * 1024):
        super().__init__()
        if not 1 <= depth <= 4:
            raise ValueError("local prefetch status covers depths 1..4")
        self.depth = depth
        self.seqtable = seqtable if seqtable is not None else \
            SeqTable(seqtable_entries)
        self.name = f"sn{depth}l"

    # -- SN4L logic -------------------------------------------------------

    def _local_status(self, line: int) -> int:
        """Read the resident line's local status; fall back to SeqTable."""
        resident = self.sim.l1i.lookup(line, touch=False)
        if resident is not None:
            return resident.local_status
        return self.seqtable.next4_status(line)

    def prefetch_around(self, line: int) -> None:
        status = self._local_status(line)
        for i in range(1, self.depth + 1):
            if status >> (i - 1) & 1:
                self.sim.issue_prefetch(line + i * CACHE_BLOCK_SIZE)

    # -- event hooks --------------------------------------------------------

    def on_demand(self, index, record, outcome, cycle) -> None:
        if outcome is not HIT:
            # Missed blocks must be prefetched next time.
            self.seqtable.set(record.line)
        self.prefetch_around(record.line)

    def on_fill(self, line_addr, was_prefetch, cycle) -> None:
        resident = self.sim.l1i.lookup(line_addr, touch=False)
        if resident is not None:
            resident.local_status = self.seqtable.next4_status(line_addr)

    def on_prefetch_hit(self, line_addr, cycle) -> None:
        self.seqtable.set(line_addr)

    def on_evict(self, line, cycle) -> None:
        if line.is_prefetch:
            # Prefetched but never demanded: a useless prefetch.
            self.seqtable.reset(line.addr)

    def storage_bytes(self) -> int:
        # SeqTable plus the 4-bit local status + 1-bit prefetch flag per
        # L1i line (the paper counts these in the 7.6 KB total).
        l1_lines = self.sim.l1i.size_bytes // self.sim.l1i.block_size \
            if self.sim is not None else 512
        return self.seqtable.storage_bytes() + l1_lines * 5 // 8
