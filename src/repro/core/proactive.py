"""Proactive SN4L+Dis(+BTB) prefetching (paper Sections V-B and V-C).

The proactive machinery chains sequential and discontinuity prefetches
multiple regions ahead of the fetch stream:

* every demand access that misses the **RLU** becomes a depth-0 trigger in
  **SeqQueue** and **DisQueue**;
* SN4L pops SeqQueue and emits the useful subsequent blocks (4-wide at
  depth 0, SN1L beyond — the paper trades width for accuracy deeper in the
  chain) as candidates into **RLUQueue**;
* Dis pops DisQueue, consults DisTable, pre-decodes the block (when it is
  available) to re-extract the discontinuity branch, and emits the branch
  target as a candidate;
* candidates popped from RLUQueue that miss the RLU are looked up in the
  cache, prefetched on a miss, and — depth permitting — pushed back into
  the queues as new triggers (sequential candidates trigger only Dis;
  discontinuity candidates trigger both SN4L and Dis).

Chains terminate at depth :attr:`max_depth` (four, per the paper).  The
same pre-decode pass that answers Dis also feeds the **BTB prefetch
buffer** (Section V-C): every block missing the RLU is pre-decoded and all
its branches buffered next to the BTB.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..btb import BtbPrefetchBuffer
from ..frontend.engine import HIT
from ..isa import CACHE_BLOCK_SIZE, BranchKind, block_base, block_offset
from ..memory import DynamicallyVirtualizedLlc
from ..prefetchers.base import Prefetcher
from ..workloads import NO_ADDR
from .distable import DisTable
from .rlu import PrefetchQueue, RecentlyLookedUp
from .seqtable import SeqTable

#: Candidate provenance inside RLUQueue.
_SRC_SEQ = 0
_SRC_DIS = 1

FIXED_OFFSET_BITS = 4     # instruction offset within a 16-instruction block
VARIABLE_OFFSET_BITS = 6  # byte offset within a 64-byte block


class ProactivePrefetcher(Prefetcher):
    """SN4L+Dis+BTB and its ablations.

    ``enable_seq`` / ``enable_dis`` / ``enable_btb`` select the composed
    scheme: all three give the paper's SN4L+Dis+BTB; ``enable_btb=False``
    gives SN4L+Dis; ``enable_seq=False, enable_btb=False`` gives the
    standalone Dis prefetcher of Fig. 13.

    ``variable_length=True`` switches DisTable to 6-bit byte offsets and
    sources pre-decode boundaries from branch footprints virtualized in
    the DV-LLC (Section V-D); the simulator must then be configured with
    ``dv_llc=True``.
    """

    def __init__(self, enable_seq: bool = True, enable_dis: bool = True,
                 enable_btb: bool = True,
                 seqtable: Optional[SeqTable] = None,
                 distable: Optional[DisTable] = None,
                 seqtable_entries: Optional[int] = 16 * 1024,
                 distable_entries: Optional[int] = 4096,
                 distable_tag_bits: Optional[int] = 4,
                 max_depth: int = 4,
                 chain_width: int = 1,
                 rlu_entries: int = 8,
                 queue_entries: int = 16,
                 drain_budget: int = 64,
                 predecode_delay: int = 3,
                 btb_buffer_entries: int = 32,
                 variable_length: bool = False):
        super().__init__()
        if max_depth < 1:
            raise ValueError("max chain depth must be >= 1")
        if not 1 <= chain_width <= 4:
            raise ValueError("chain width is 1 (SN1L, the paper's choice) "
                             "to 4 (SN4L everywhere)")
        self.enable_seq = enable_seq
        self.enable_dis = enable_dis
        self.enable_btb = enable_btb
        self.variable_length = variable_length
        self.max_depth = max_depth
        #: Sequential width used past the first discontinuity.  The paper
        #: uses SN1L there ("timeliness is obtained at the cost of lower
        #: prefetch accuracy", Section V-B); 4 keeps SN4L everywhere.
        self.chain_width = chain_width
        self.drain_budget = drain_budget
        self.predecode_delay = predecode_delay
        self.btb_buffer_entries = btb_buffer_entries

        offset_bits = VARIABLE_OFFSET_BITS if variable_length \
            else FIXED_OFFSET_BITS
        self.seqtable = seqtable if seqtable is not None else \
            SeqTable(seqtable_entries)
        self.distable = distable if distable is not None else \
            DisTable(distable_entries, tag_bits=distable_tag_bits,
                     offset_bits=offset_bits)
        self.rlu = RecentlyLookedUp(rlu_entries)
        self.seq_queue = PrefetchQueue(queue_entries, "SeqQueue")
        self.dis_queue = PrefetchQueue(queue_entries, "DisQueue")
        self._rlu_queue: Deque[Tuple[int, int, int]] = deque()
        self.rlu_queue_entries = queue_entries
        #: Blocks awaiting pre-decode once they arrive: line -> depth.
        self._pending_predecode: Dict[int, int] = {}
        self._prev_record = None

        parts = []
        if enable_seq:
            parts.append("sn4l")
        if enable_dis:
            parts.append("dis")
        if enable_btb:
            parts.append("btb")
        self.name = "+".join(parts) if parts else "proactive-none"

        self.predecodes = 0
        self.dis_prefetch_candidates = 0

    # ------------------------------------------------------------------

    def attach(self, sim) -> None:
        super().attach(sim)
        if self.enable_btb:
            sim.btb_prefetch_buffer = BtbPrefetchBuffer(self.btb_buffer_entries)
        if self.variable_length and not isinstance(
                sim.llc, DynamicallyVirtualizedLlc):
            raise RuntimeError(
                "variable-length mode stores branch footprints in the "
                "DV-LLC; build the simulator with FrontendConfig(dv_llc=True)"
            )

    # ------------------------------------------------------------------
    # metadata updates (SN4L usefulness + Dis recording)

    def _branch_offset(self, branch_pc: int) -> int:
        if self.variable_length:
            return block_offset(branch_pc)
        return block_offset(branch_pc) // 4

    def _record_discontinuity(self, record) -> None:
        """A miss occurred; if the previous demanded instruction was a
        taken branch, remember its in-block offset (Section V-B)."""
        prev = self._prev_record
        if prev is None or not prev.has_branch or not prev.taken:
            return
        if prev.branch_kind is BranchKind.RETURN:
            # Return targets come from the RAS, never from pre-decode or
            # the BTB; recording them would only evict useful entries.
            return
        self.distable.record(block_base(prev.branch_pc),
                             self._branch_offset(prev.branch_pc))

    def on_prefetch_hit(self, line_addr, cycle) -> None:
        self.seqtable.set(line_addr)

    def on_evict(self, line, cycle) -> None:
        if line.is_prefetch:
            self.seqtable.reset(line.addr)
        self._pending_predecode.pop(line.addr, None)

    # ------------------------------------------------------------------
    # triggers

    def on_demand(self, index, record, outcome, cycle) -> None:
        line = record.line
        if outcome is not HIT:
            self.seqtable.set(line)
            if self.enable_dis:
                self._record_discontinuity(record)
        self._prev_record = record

        # SN4L triggers on *every* access via the local prefetch status;
        # the RLU only gates pre-decode (Dis/BTB) and candidate lookups.
        fresh = not self.rlu.contains(line)
        self.rlu.touch(line)
        if self.enable_seq:
            self.seq_queue.push(line, 0)
        if fresh and (self.enable_dis or self.enable_btb):
            self.dis_queue.push(line, 0)
        self._drain()

    def on_fill(self, line_addr, was_prefetch, cycle) -> None:
        resident = self.sim.l1i.lookup(line_addr, touch=False)
        if resident is not None:
            resident.local_status = self.seqtable.next4_status(line_addr)
        depth = self._pending_predecode.pop(line_addr, None)
        if depth is not None:
            self._predecode_block(line_addr, depth)
            self._drain()

    def on_branch_retire(self, record, cycle) -> None:
        if not self.variable_length:
            return
        # Build the branch footprint of the branch's block in the DV-LLC:
        # retired branches accrete their byte offsets (Section V-D).
        line = block_base(record.branch_pc)
        llc = self.sim.llc
        existing = llc.get_footprint(line) or ()
        offset = block_offset(record.branch_pc)
        if offset not in existing:
            llc.store_footprint(line, tuple(existing) + (offset,))

    # ------------------------------------------------------------------
    # the proactive drain loop

    def _push_candidate(self, line: int, depth: int, src: int) -> None:
        if len(self._rlu_queue) >= self.rlu_queue_entries:
            self._rlu_queue.popleft()
        self._rlu_queue.append((line, depth, src))

    def _drain(self) -> None:
        budget = self.drain_budget
        sim = self.sim
        while budget > 0:
            progressed = False

            if self.enable_seq and self.seq_queue:
                line, depth = self.seq_queue.pop()
                budget -= 1
                progressed = True
                # SN4L at the demand frontier, SN1L deeper in the chain.
                width = 4 if depth == 0 else self.chain_width
                status = self._local_status(line)
                for i in range(1, width + 1):
                    if status >> (i - 1) & 1:
                        self._push_candidate(line + i * CACHE_BLOCK_SIZE,
                                             depth + 1, _SRC_SEQ)

            if (self.enable_dis or self.enable_btb) and self.dis_queue:
                line, depth = self.dis_queue.pop()
                budget -= 1
                progressed = True
                if sim.l1i.contains(line):
                    self._predecode_block(line, depth)
                else:
                    self._pending_predecode[line] = depth
                    if len(self._pending_predecode) > 64:
                        self._pending_predecode.pop(
                            next(iter(self._pending_predecode)))

            while self._rlu_queue and budget > 0:
                cand, depth, src = self._rlu_queue.popleft()
                budget -= 1
                progressed = True
                if self.rlu.contains(cand):
                    continue
                self.rlu.touch(cand)
                hit = sim.lookup_cache(cand)
                if not hit:
                    delay = self.predecode_delay if src == _SRC_DIS else 0
                    sim.issue_prefetch(cand, probe_cache=False, delay=delay,
                                       source=("dis" if src == _SRC_DIS
                                               else "sn4l"))
                if depth < self.max_depth:
                    if src == _SRC_DIS and self.enable_seq:
                        self.seq_queue.push(cand, depth)
                    if self.enable_dis or self.enable_btb:
                        self.dis_queue.push(cand, depth)

            if not progressed:
                break

    def _local_status(self, line: int) -> int:
        resident = self.sim.l1i.lookup(line, touch=False)
        if resident is not None:
            return resident.local_status
        return self.seqtable.next4_status(line)

    # ------------------------------------------------------------------
    # pre-decode: serves Dis and the BTB prefetch buffer together

    def _predecode_block(self, line: int, depth: int) -> None:
        offset = self.distable.lookup(line) if self.enable_dis else None
        if offset is None and not self.enable_btb:
            return
        footprint = None
        if self.variable_length:
            footprint = self.sim.llc.get_footprint(line)
            if footprint is None and offset is None:
                return  # nothing decodable without boundaries
        result = self.sim.predecoder().decode_block(
            line, footprint_offsets=footprint, dis_offset=offset)
        self.predecodes += 1
        if self.telemetry is not None:
            self.telemetry.emit(self.sim.cycle, "predecode", line,
                                f"depth={depth}")

        if self.enable_btb and (result.branches or result.offset_branch):
            branches = list(result.branches)
            if result.offset_branch and result.offset_branch not in branches:
                branches.append(result.offset_branch)
            self.sim.btb_prefetch_buffer.fill(line, branches)

        if offset is None or result.offset_branch is None:
            return
        instr = result.offset_branch
        target = instr.target
        if target is None:
            entry = self.sim.btb.peek(instr.pc)
            target = entry.target if entry is not None else None
        if target is None or target == NO_ADDR:
            return  # paper: no BTB entry, no prefetch
        self.dis_prefetch_candidates += 1
        self._push_candidate(block_base(target), depth + 1, _SRC_DIS)

    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Per-core storage, mirroring the paper's 7.6 KB accounting."""
        total = 0
        if self.enable_seq:
            total += self.seqtable.storage_bytes()
        if self.enable_dis:
            total += self.distable.storage_bytes()
        if self.enable_btb and self.sim is not None \
                and self.sim.btb_prefetch_buffer is not None:
            total += self.sim.btb_prefetch_buffer.storage_bytes()
        l1_lines = (self.sim.l1i.size_bytes // self.sim.l1i.block_size
                    if self.sim is not None else 512)
        total += l1_lines * 5 // 8  # local status + prefetch flag
        queue_bits = (self.seq_queue.storage_bits() +
                      self.dis_queue.storage_bits() +
                      self.rlu_queue_entries * (40 + 3 + 1) +
                      self.rlu.storage_bits())
        total += queue_bits // 8
        return total


def sn4l_dis_btb(**kwargs) -> ProactivePrefetcher:
    """The paper's full proposal."""
    return ProactivePrefetcher(enable_seq=True, enable_dis=True,
                               enable_btb=True, **kwargs)


def sn4l_dis(**kwargs) -> ProactivePrefetcher:
    """SN4L+Dis without BTB prefilling (Fig. 17 breakdown point)."""
    return ProactivePrefetcher(enable_seq=True, enable_dis=True,
                               enable_btb=False, **kwargs)


def dis_only(**kwargs) -> ProactivePrefetcher:
    """Standalone Dis prefetcher (Fig. 13)."""
    return ProactivePrefetcher(enable_seq=False, enable_dis=True,
                               enable_btb=False, **kwargs)
