"""Proactive SN4L+Dis(+BTB) prefetching (paper Sections V-B and V-C).

The proactive machinery chains sequential and discontinuity prefetches
multiple regions ahead of the fetch stream:

* every demand access that misses the **RLU** becomes a depth-0 trigger in
  **SeqQueue** and **DisQueue**;
* SN4L pops SeqQueue and emits the useful subsequent blocks (4-wide at
  depth 0, SN1L beyond — the paper trades width for accuracy deeper in the
  chain) as candidates into **RLUQueue**;
* Dis pops DisQueue, consults DisTable, pre-decodes the block (when it is
  available) to re-extract the discontinuity branch, and emits the branch
  target as a candidate;
* candidates popped from RLUQueue that miss the RLU are looked up in the
  cache, prefetched on a miss, and — depth permitting — pushed back into
  the queues as new triggers (sequential candidates trigger only Dis;
  discontinuity candidates trigger both SN4L and Dis).

Chains terminate at depth :attr:`max_depth` (four, per the paper).  The
same pre-decode pass that answers Dis also feeds the **BTB prefetch
buffer** (Section V-C): every block missing the RLU is pre-decoded and all
its branches buffered next to the BTB.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..btb import BtbPrefetchBuffer, BufferedBranch
from ..frontend.engine import HIT
from ..isa import CACHE_BLOCK_SIZE, BranchKind, block_base, block_offset
from ..memory import (
    CacheLine,
    DynamicallyVirtualizedLlc,
    InFlight,
    LastLevelCache,
)
from ..prefetchers.base import Prefetcher
from ..workloads import NO_ADDR
from .distable import DisTable
from .rlu import PrefetchQueue, RecentlyLookedUp
from .seqtable import SeqTable

#: Candidate provenance inside RLUQueue.
_SRC_SEQ = 0
_SRC_DIS = 1

#: When set, :meth:`ProactivePrefetcher.attach` shadows the per-access
#: hot path (``on_demand`` / ``on_fill`` / ``_drain``) with closures
#: compiled against the simulator.  The plain methods remain the
#: readable reference implementation; set ``REPRO_NO_COMPILE=1`` (or
#: monkeypatch this flag) to run on them — results are identical.
COMPILE_HOT_PATH = os.environ.get("REPRO_NO_COMPILE", "") == ""

FIXED_OFFSET_BITS = 4     # instruction offset within a 16-instruction block
VARIABLE_OFFSET_BITS = 6  # byte offset within a 64-byte block


class ProactivePrefetcher(Prefetcher):
    """SN4L+Dis+BTB and its ablations.

    ``enable_seq`` / ``enable_dis`` / ``enable_btb`` select the composed
    scheme: all three give the paper's SN4L+Dis+BTB; ``enable_btb=False``
    gives SN4L+Dis; ``enable_seq=False, enable_btb=False`` gives the
    standalone Dis prefetcher of Fig. 13.

    ``variable_length=True`` switches DisTable to 6-bit byte offsets and
    sources pre-decode boundaries from branch footprints virtualized in
    the DV-LLC (Section V-D); the simulator must then be configured with
    ``dv_llc=True``.
    """

    def __init__(self, enable_seq: bool = True, enable_dis: bool = True,
                 enable_btb: bool = True,
                 seqtable: Optional[SeqTable] = None,
                 distable: Optional[DisTable] = None,
                 seqtable_entries: Optional[int] = 16 * 1024,
                 distable_entries: Optional[int] = 4096,
                 distable_tag_bits: Optional[int] = 4,
                 max_depth: int = 4,
                 chain_width: int = 1,
                 rlu_entries: int = 8,
                 queue_entries: int = 16,
                 drain_budget: int = 64,
                 predecode_delay: int = 3,
                 btb_buffer_entries: int = 32,
                 variable_length: bool = False):
        super().__init__()
        if max_depth < 1:
            raise ValueError("max chain depth must be >= 1")
        if not 1 <= chain_width <= 4:
            raise ValueError("chain width is 1 (SN1L, the paper's choice) "
                             "to 4 (SN4L everywhere)")
        self.enable_seq = enable_seq
        self.enable_dis = enable_dis
        self.enable_btb = enable_btb
        self.variable_length = variable_length
        self.max_depth = max_depth
        #: Sequential width used past the first discontinuity.  The paper
        #: uses SN1L there ("timeliness is obtained at the cost of lower
        #: prefetch accuracy", Section V-B); 4 keeps SN4L everywhere.
        self.chain_width = chain_width
        self.drain_budget = drain_budget
        self.predecode_delay = predecode_delay
        self.btb_buffer_entries = btb_buffer_entries

        offset_bits = VARIABLE_OFFSET_BITS if variable_length \
            else FIXED_OFFSET_BITS
        self.seqtable = seqtable if seqtable is not None else \
            SeqTable(seqtable_entries)
        self.distable = distable if distable is not None else \
            DisTable(distable_entries, tag_bits=distable_tag_bits,
                     offset_bits=offset_bits)
        self.rlu = RecentlyLookedUp(rlu_entries)
        self.seq_queue = PrefetchQueue(queue_entries, "SeqQueue")
        self.dis_queue = PrefetchQueue(queue_entries, "DisQueue")
        self._rlu_queue: Deque[Tuple[int, int, int]] = deque()
        self.rlu_queue_entries = queue_entries
        #: Blocks awaiting pre-decode once they arrive: line -> depth.
        self._pending_predecode: Dict[int, int] = {}
        self._prev_record = None
        #: Fixed-ISA fast path: prepared (buffer line, BufferedBranch
        #: tuple) per block.  The text segment is immutable and nothing
        #: mutates a BufferedBranch, so the prepared entry never goes
        #: stale and may be shared across fills.
        self._prepared_btb: Dict[int, Tuple[int, tuple]] = {}
        self._pd = None  # cached sim.predecoder()

        parts = []
        if enable_seq:
            parts.append("sn4l")
        if enable_dis:
            parts.append("dis")
        if enable_btb:
            parts.append("btb")
        self.name = "+".join(parts) if parts else "proactive-none"

        self.predecodes = 0
        self.dis_prefetch_candidates = 0

    # ------------------------------------------------------------------

    def attach(self, sim) -> None:
        super().attach(sim)
        # on_branch_retire only builds DV-LLC branch footprints, a
        # VL-ISA mechanism; fixed-length engines may skip the call.
        self.branch_retire_noop = not self.variable_length
        if self.enable_btb:
            sim.btb_prefetch_buffer = BtbPrefetchBuffer(self.btb_buffer_entries)
        if self.variable_length and not isinstance(
                sim.llc, DynamicallyVirtualizedLlc):
            raise RuntimeError(
                "variable-length mode stores branch footprints in the "
                "DV-LLC; build the simulator with FrontendConfig(dv_llc=True)"
            )
        # Front-load the segment decode: the shared per-Program memo is
        # filled once at attach time, so no simulated access ever pays a
        # cold decode (behaviour and per-pass counters are unchanged).
        if ((self.enable_dis or self.enable_btb)
                and not self.variable_length
                and getattr(sim, "program", None) is not None):
            if self._pd is None:
                self._pd = sim.predecoder()
            self._pd.prewarm_fixed()
        # Compile the hot path against this simulator: the closures bind
        # every structure that is fixed for the simulator's lifetime and
        # shadow the plain methods on the instance.
        if COMPILE_HOT_PATH:
            drain, on_demand, on_fill, on_pf_hit, on_evict = self._compile()
            self._drain = drain
            self.on_demand = on_demand
            self.on_fill = on_fill
            self.on_prefetch_hit = on_pf_hit
            self.on_evict = on_evict

    # ------------------------------------------------------------------
    # metadata updates (SN4L usefulness + Dis recording)

    def _branch_offset(self, branch_pc: int) -> int:
        if self.variable_length:
            return block_offset(branch_pc)
        return block_offset(branch_pc) // 4

    def _record_discontinuity(self, record) -> None:
        """A miss occurred; if the previous demanded instruction was a
        taken branch, remember its in-block offset (Section V-B)."""
        prev = self._prev_record
        if prev is None or not prev.has_branch or not prev.taken:
            return
        if prev.branch_kind is BranchKind.RETURN:
            # Return targets come from the RAS, never from pre-decode or
            # the BTB; recording them would only evict useful entries.
            return
        self.distable.record(block_base(prev.branch_pc),
                             self._branch_offset(prev.branch_pc))

    def on_prefetch_hit(self, line_addr, cycle) -> None:
        self.seqtable.set(line_addr)

    def on_evict(self, line, cycle) -> None:
        if line.is_prefetch:
            self.seqtable.reset(line.addr)
        self._pending_predecode.pop(line.addr, None)

    # ------------------------------------------------------------------
    # triggers

    def on_demand(self, index, record, outcome, cycle) -> None:
        line = record.line
        if outcome is not HIT:
            self.seqtable.set(line)
            if self.enable_dis:
                self._record_discontinuity(record)
        self._prev_record = record

        # SN4L triggers on *every* access via the local prefetch status;
        # the RLU only gates pre-decode (Dis/BTB) and candidate lookups.
        # (Inlined RecentlyLookedUp contains+touch — hot per-access path.)
        rlu = self.rlu
        entries = rlu._entries
        if line in entries:
            entries.move_to_end(line)
            rlu.hits += 1
            fresh = False
        else:
            rlu.misses += 1
            if len(entries) >= rlu.n_entries:
                entries.popitem(last=False)
            entries[line] = True
            fresh = True
        if self.enable_seq:
            self.seq_queue.push(line, 0)
        if fresh and (self.enable_dis or self.enable_btb):
            self.dis_queue.push(line, 0)
        self._drain()

    def on_fill(self, line_addr, was_prefetch, cycle) -> None:
        l1i = self.sim.l1i
        key = line_addr // l1i.block_size
        resident = l1i._sets[key % l1i.n_sets].get(key)
        if resident is not None:
            resident.local_status = self.seqtable.next4_status(line_addr)
        depth = self._pending_predecode.pop(line_addr, None)
        if depth is not None:
            self._predecode_block(line_addr, depth)
            self._drain()

    def on_branch_retire(self, record, cycle) -> None:
        if not self.variable_length:
            return
        # Build the branch footprint of the branch's block in the DV-LLC:
        # retired branches accrete their byte offsets (Section V-D).
        line = block_base(record.branch_pc)
        llc = self.sim.llc
        existing = llc.get_footprint(line) or ()
        offset = block_offset(record.branch_pc)
        if offset not in existing:
            llc.store_footprint(line, tuple(existing) + (offset,))

    # ------------------------------------------------------------------
    # the proactive drain loop

    def _push_candidate(self, line: int, depth: int, src: int) -> None:
        if len(self._rlu_queue) >= self.rlu_queue_entries:
            self._rlu_queue.popleft()
        self._rlu_queue.append((line, depth, src))

    def _drain(self) -> None:
        # Replaced on the instance by the compiled closure at attach();
        # kept so the name resolves on an unattached prefetcher.
        self._compile()[0]()

    def _compile(self):
        """Compile the per-access hot path against the attached simulator.

        Returns ``(drain, on_demand, on_fill)`` closures; :meth:`attach`
        installs them over the plain methods, which remain the readable
        reference implementation (``REPRO_NO_COMPILE=1`` runs on them).
        Everything fixed for the simulator's lifetime — structure queues,
        RLU filter, cache geometry, DisTable tagging, the pre-decode
        steady state and the prefetch-issue path — is bound once and
        inlined; every counter update replicates the structure methods
        (RecentlyLookedUp / PrefetchQueue / DisTable / BtbPrefetchBuffer /
        lookup_cache / issue_prefetch) exactly.  Attribution-heavy paths
        (event log or component counters attached) fall back to the
        regular methods so telemetry streams stay identical.

        The one addition is the *hit-path short circuit*: for a demand
        hit on a line already in the RLU with no queued work, the full
        application reduces to probing the line's SN4L candidates, and
        when every candidate is filter-resident it degenerates to pure
        LRU touches — performed directly, in the drain's exact order,
        without the queue machinery.  The candidate tuple is memoised
        per line; it is a pure function of the line's resident
        ``local_status`` snapshot, which only a fill of that same line
        rewrites, so a fill invalidates just its own line's entry.
        Everything else (queues empty, the line and each candidate
        filter-resident) is re-checked live; any check failing falls
        back to the full application.  Short-circuited and
        fully-applied updates are state- and counter-identical.
        """
        pf = self
        sim = self.sim
        l1i = sim.l1i
        l1i_sets = l1i._sets
        l1i_block = l1i.block_size
        l1i_nsets = l1i.n_sets
        mshr = sim.mshr
        mshr_entries = mshr._entries
        mshr_issue_pf = mshr.issue_prefetch_unchecked
        llc_access = sim.llc.access
        latency_request = sim.latency.request
        # latency.request fused into the issue leg: bind the contention
        # tracker and config scalars once (all fixed for the model's
        # lifetime; the counters it flushes survive measurement resets
        # because those assign fresh values on the same objects).
        lat_model = sim.latency
        contention = lat_model.contention
        ct_times = contention._times
        ct_popleft = ct_times.popleft
        lat_cfg = lat_model.config
        ct_window = lat_cfg.window
        ct_sat = lat_cfg.saturation_rate
        ct_gain = lat_cfg.contention_gain
        ct_expo = lat_cfg.contention_exponent
        lat_llc_rt = lat_cfg.llc_round_trip
        lat_mem_rt = lat_cfg.memory_round_trip
        lat_overhead = lat_cfg.l1_fill_overhead
        issue_slow = sim.issue_prefetch
        btb_peek = sim.btb.peek
        seqtable_set = self.seqtable.set
        seqtable_reset = self.seqtable.reset
        next4 = self.seqtable.next4_status
        rlu = self.rlu
        rlu_entries = rlu._entries
        rlu_mv = rlu_entries.move_to_end
        rlu_cap = rlu.n_entries
        seq_queue = self.seq_queue
        seq_items = seq_queue._items
        seq_cap = seq_queue.n_entries
        dis_queue = self.dis_queue
        dis_items = dis_queue._items
        dis_cap = dis_queue.n_entries
        rlu_queue = self._rlu_queue
        rq_cap = self.rlu_queue_entries
        pending = self._pending_predecode
        pending_pop = pending.pop
        # Closure-local prepared-entry cache: line -> (buffer line key,
        # shared entry dict).  The buffer's entry for a block is always
        # built from the same immutable branch set and consumers only
        # read it, so one shared dict per block replaces the per-fill
        # rebuild; re-inserting the same object after an eviction is
        # indistinguishable from a fresh build.
        prepared_entries: Dict[int, Tuple[int, dict]] = {}
        bpb = sim.btb_prefetch_buffer
        if bpb is not None:
            bpb_sets = bpb._sets
            bpb_nsets = bpb.n_sets
            bpb_assoc = bpb.assoc
            bpb_bs = bpb.block_size
            bpb_cap = bpb.BRANCHES_PER_ENTRY
        enable_seq = self.enable_seq
        enable_dis = self.enable_dis
        enable_btb = self.enable_btb
        do_dis = enable_dis or enable_btb
        variable_length = self.variable_length
        chain_width = self.chain_width
        max_depth = self.max_depth
        predecode_delay = self.predecode_delay
        drain_budget = self.drain_budget
        block_size = CACHE_BLOCK_SIZE
        dt = self.distable
        dt_record = dt.record
        dt_rows = dt._rows
        dt_owner = dt._true_owner
        dt_n = dt.n_entries
        dt_bs = dt.block_size
        dt_full = dt.fully_tagged
        dt_mask = (1 << dt.tag_bits) - 1 if dt.tag_bits else 0
        _RETURN = BranchKind.RETURN
        perfect_l1i = sim.config.perfect_l1i
        # SeqTable / LLC / MSHR internals for the inlined structure
        # probes (each gated on the plain common-case configuration;
        # reference/telemetry variants keep the method calls).
        st = self.seqtable
        st_fast = st.n_entries is not None and not st.track_conflicts
        st_bits = st._bits
        st_n = st.n_entries
        st_bs = st.block_size
        llc = sim.llc
        llc_fast = type(llc) is LastLevelCache
        llc_sets = llc._sets
        llc_nsets = llc.n_sets
        llc_assoc = llc.assoc
        llc_bs = llc.block_size
        mshr_cap = mshr.capacity
        # Frame-free construction: __new__ plus explicit slot/attribute
        # stores skips the pure-Python __init__ call on the hot paths.
        cl_new = CacheLine.__new__
        if_new = InFlight.__new__
        memo: Dict[int, tuple] = {}
        self._idem_memo = memo
        memo_get = memo.get
        memo_pop = memo.pop
        # local_status (4 bits) -> candidate byte-offset tuple; the memo
        # stores these shared tuples so the hit path never allocates.
        cand_offs = tuple(
            tuple(i * block_size for i in (1, 2, 3, 4) if s >> (i - 1) & 1)
            for s in range(16))

        def predecode(line: int, depth: int) -> None:
            # _predecode_block, compiled.  DisTable lookup first:
            if enable_dis:
                dt.lookups += 1
                block = line // dt_bs
                if dt_n is None:
                    row = block
                    tag = 0
                else:
                    row = block % dt_n
                    rest = block // dt_n
                    tag = rest if dt_full else rest & dt_mask
                offset = None
                dt_entry = dt_rows.get(row)
                if dt_entry is not None and dt_entry[0] == tag:
                    dt.hits += 1
                    if dt_owner.get(row) != block:
                        dt.false_hits += 1
                    offset = dt_entry[1]
            else:
                offset = None
            if offset is None and not enable_btb:
                return
            if variable_length:
                pf._predecode_block_vl(line, depth, offset)
                return
            # Fixed-ISA steady state: memoised block info + prepared
            # BTB-buffer entry.
            pd = pf._pd
            if pd is None:
                pd = pf._pd = sim.predecoder()
            info = pd._fixed_info.get(line)
            if info is None:
                info = pd.fixed_block_info(line)
            else:
                pd.blocks_decoded += 1
            branches, offset_map = info
            pf.predecodes += 1
            if sim.event_log is not None:
                pf.telemetry.emit(sim.cycle, "predecode", line,
                                  f"depth={depth}")
            if enable_btb and branches:
                prep = prepared_entries.get(line)
                if prep is None:
                    prep = (line // bpb_bs,
                            {i.pc: BufferedBranch(i.pc, i.target, i.kind)
                             for i in branches[:bpb_cap]})
                    prepared_entries[line] = prep
                # fill_prepared, inlined with the shared entry dict.
                line_key, entry = prep
                cset = bpb_sets[line_key % bpb_nsets]
                if line_key in cset:
                    cset.move_to_end(line_key)
                else:
                    if len(cset) >= bpb_assoc:
                        cset.popitem(last=False)
                    cset[line_key] = entry
                bpb.inserts += 1
            if offset is None:
                return
            instr = offset_map.get(offset)
            if instr is None:
                return
            target = instr.target
            if target is None:
                e = btb_peek(instr.pc)
                target = e.target if e is not None else None
            if target is None or target == NO_ADDR:
                return  # paper: no BTB entry, no prefetch
            pf.dis_prefetch_candidates += 1
            if len(rlu_queue) >= rq_cap:
                rlu_queue.popleft()
            rlu_queue.append((target - target % block_size, depth + 1,
                              _SRC_DIS))

        def drain() -> None:
            budget = drain_budget
            stats = sim.stats
            l1pb = sim.l1_prefetch_buffer
            ev_log = sim.event_log
            issue_fast = ev_log is None and sim.component_counters is None
            # Counter deltas batched in locals, flushed once on exit.
            rlu_hits = rlu_misses = cache_lookups = issued = 0
            requests = lat_sum = lat_count = 0
            st_lookups = dt_lookups_l = dt_hits_l = dt_false_l = 0
            predecodes_l = bpb_inserts_l = dis_cands_l = 0
            llc_ihit_l = llc_imiss_l = mshr_drop_l = 0
            while budget > 0:
                progressed = False

                if enable_seq and seq_items:
                    line, depth = seq_items.popleft()
                    budget -= 1
                    progressed = True
                    # SN4L at the demand frontier, SN1L deeper in chain.
                    width = 4 if depth == 0 else chain_width
                    key = line // l1i_block
                    resident = l1i_sets[key % l1i_nsets].get(key)
                    if resident is not None:
                        status = resident.local_status
                    elif st_fast:
                        # seqtable.next4_status, inlined (limited,
                        # untracked table).
                        st_lookups += 4
                        blk = line // st_bs
                        status = (st_bits[(blk + 1) % st_n]
                                  | st_bits[(blk + 2) % st_n] << 1
                                  | st_bits[(blk + 3) % st_n] << 2
                                  | st_bits[(blk + 4) % st_n] << 3)
                    else:
                        status = next4(line)
                    depth += 1
                    for i in range(1, width + 1):
                        if status >> (i - 1) & 1:
                            if len(rlu_queue) >= rq_cap:
                                rlu_queue.popleft()
                            rlu_queue.append((line + i * block_size, depth,
                                              _SRC_SEQ))

                if do_dis and dis_items:
                    line, depth = dis_items.popleft()
                    budget -= 1
                    progressed = True
                    key = line // l1i_block
                    if key not in l1i_sets[key % l1i_nsets]:
                        pending[line] = depth
                        if len(pending) > 64:
                            del pending[next(iter(pending))]
                    elif variable_length:
                        predecode(line, depth)
                    else:
                        # predecode(), inlined for the fixed-length ISA
                        # (counter deltas batched into drain locals).
                        offset = None
                        if enable_dis:
                            dt_lookups_l += 1
                            block = line // dt_bs
                            if dt_n is None:
                                row = block
                                tag = 0
                            else:
                                row = block % dt_n
                                rest = block // dt_n
                                tag = rest if dt_full else rest & dt_mask
                            dt_entry = dt_rows.get(row)
                            if dt_entry is not None and dt_entry[0] == tag:
                                dt_hits_l += 1
                                if dt_owner.get(row) != block:
                                    dt_false_l += 1
                                offset = dt_entry[1]
                        if offset is not None or enable_btb:
                            pd = pf._pd
                            if pd is None:
                                pd = pf._pd = sim.predecoder()
                            info = pd._fixed_info.get(line)
                            if info is None:
                                info = pd.fixed_block_info(line)
                            else:
                                pd.blocks_decoded += 1
                            branches, offset_map = info
                            predecodes_l += 1
                            if ev_log is not None:
                                pf.telemetry.emit(sim.cycle, "predecode",
                                                  line, f"depth={depth}")
                            if enable_btb and branches:
                                prep = prepared_entries.get(line)
                                if prep is None:
                                    prep = (line // bpb_bs,
                                            {i.pc: BufferedBranch(
                                                i.pc, i.target, i.kind)
                                             for i in branches[:bpb_cap]})
                                    prepared_entries[line] = prep
                                line_key, entry = prep
                                cset = bpb_sets[line_key % bpb_nsets]
                                if line_key in cset:
                                    cset.move_to_end(line_key)
                                else:
                                    if len(cset) >= bpb_assoc:
                                        cset.popitem(last=False)
                                    cset[line_key] = entry
                                bpb_inserts_l += 1
                            if offset is not None:
                                instr = offset_map.get(offset)
                                if instr is not None:
                                    target = instr.target
                                    if target is None:
                                        e = btb_peek(instr.pc)
                                        target = (e.target if e is not None
                                                  else None)
                                    if target is not None and target != NO_ADDR:
                                        dis_cands_l += 1
                                        if len(rlu_queue) >= rq_cap:
                                            rlu_queue.popleft()
                                        rlu_queue.append(
                                            (target - target % block_size,
                                             depth + 1, _SRC_DIS))

                while rlu_queue and budget > 0:
                    cand, depth, src = rlu_queue.popleft()
                    budget -= 1
                    progressed = True
                    if cand in rlu_entries:
                        rlu_mv(cand)
                        rlu_hits += 1
                        continue
                    rlu_misses += 1
                    if len(rlu_entries) >= rlu_cap:
                        rlu_entries.popitem(last=False)
                    rlu_entries[cand] = True
                    cache_lookups += 1
                    key = cand // l1i_block
                    if key in l1i_sets[key % l1i_nsets] or (
                            l1pb is not None and l1pb.contains(cand)):
                        pass
                    elif cand not in mshr_entries:
                        # issue_prefetch(probe_cache=False), inlined; the
                        # L1i probe and MSHR check just happened above.
                        if not issue_fast:
                            issue_slow(cand, probe_cache=False,
                                       delay=(predecode_delay
                                              if src == _SRC_DIS else 0),
                                       source=("dis" if src == _SRC_DIS
                                               else "sn4l"))
                        else:
                            at = sim.prefetch_clock
                            if src == _SRC_DIS:
                                at += predecode_delay
                            if llc_fast:
                                # llc.access, inlined (plain LLC only —
                                # the DV-LLC keeps the method call).
                                lkey = cand // llc_bs
                                lset = llc_sets[lkey % llc_nsets]
                                if lkey in lset:
                                    lset.move_to_end(lkey)
                                    llc_ihit_l += 1
                                    llc_hit = True
                                else:
                                    llc_imiss_l += 1
                                    if len(lset) >= llc_assoc:
                                        lset.popitem(last=False)
                                    nl = cl_new(CacheLine)
                                    nl.addr = lkey * llc_bs
                                    nl.is_prefetch = False
                                    nl.local_status = 0
                                    nl.is_instruction = True
                                    nl.fill_latency = 0
                                    lset[lkey] = nl
                                    llc_hit = False
                            else:
                                llc_hit = llc_access(cand,
                                                     is_instruction=True)
                            # latency.request, fused (its second expire
                            # pass in load() is a no-op at equal cycle).
                            ct_times.append(at)
                            requests += 1
                            horizon = at - ct_window
                            while ct_times and ct_times[0] <= horizon:
                                ct_popleft()
                            load = (len(ct_times) / ct_window) / ct_sat
                            if load > 1.0:
                                load = 1.0
                            lat = int(round(
                                (lat_llc_rt if llc_hit else lat_mem_rt)
                                * (1.0 + ct_gain * load ** ct_expo))) \
                                + lat_overhead
                            lat_sum += lat
                            lat_count += 1
                            # mshr.issue_prefetch_unchecked, inlined.
                            if len(mshr_entries) >= mshr_cap:
                                mshr_drop_l += 1
                            else:
                                rdy = at + lat
                                inf = if_new(InFlight)
                                inf.line = cand
                                inf.issue_cycle = at
                                inf.ready_cycle = rdy
                                inf.is_prefetch = True
                                mshr_entries[cand] = inf
                                if rdy < mshr._next_ready:
                                    mshr._next_ready = rdy
                                issued += 1
                    if depth < max_depth:
                        if src == _SRC_DIS and enable_seq:
                            if len(seq_items) >= seq_cap:
                                seq_items.popleft()
                                seq_queue.dropped += 1
                            seq_items.append((cand, depth))
                        if do_dis:
                            if len(dis_items) >= dis_cap:
                                dis_items.popleft()
                                dis_queue.dropped += 1
                            dis_items.append((cand, depth))

                if not progressed:
                    break
            if rlu_hits:
                rlu.hits += rlu_hits
            if rlu_misses:
                rlu.misses += rlu_misses
            if cache_lookups:
                stats.cache_lookups += cache_lookups
            if issued:
                stats.prefetches_issued += issued
            if requests:
                contention.total_requests += requests
                lat_model.llc_latency_sum += lat_sum
                lat_model.llc_latency_count += lat_count
            if st_lookups:
                st.lookups += st_lookups
            if dt_lookups_l:
                dt.lookups += dt_lookups_l
                dt.hits += dt_hits_l
                dt.false_hits += dt_false_l
            if predecodes_l:
                pf.predecodes += predecodes_l
            if bpb_inserts_l:
                bpb.inserts += bpb_inserts_l
            if dis_cands_l:
                pf.dis_prefetch_candidates += dis_cands_l
            if llc_ihit_l or llc_imiss_l:
                llc.instruction_hits += llc_ihit_l
                llc.instruction_misses += llc_imiss_l
            if mshr_drop_l:
                mshr.prefetches_dropped_full += mshr_drop_l

        def on_demand(index, record, outcome, cycle) -> None:
            line = record.line
            if outcome is HIT:
                # Hit-path short circuit: with the line already in the
                # RLU and no queued work, the full application reduces
                # to probing the line's SN4L candidates — if every one
                # is filter-resident, it is pure LRU touches, performed
                # here in the drain's exact order without the queue
                # machinery.  The memo caches the candidate tuple (a
                # function of the line's frozen local_status snapshot,
                # invalidated by that line's next fill); queue emptiness
                # and residency are verified live.  Perfect-L1i and
                # prefetch-buffer hits don't prove L1i residency, so
                # those configurations take the full path.
                if (line in rlu_entries and not rlu_queue
                        and not seq_items and not dis_items
                        and not perfect_l1i
                        and sim.l1_prefetch_buffer is None):
                    cands = memo_get(line)
                    if cands is None:
                        key = line // l1i_block
                        resident = l1i_sets[key % l1i_nsets].get(key)
                        if resident is not None:
                            if enable_seq:
                                cands = cand_offs[
                                    resident.local_status & 15]
                            else:
                                cands = ()
                            memo[line] = cands
                    if cands is not None:
                        for c in cands:
                            if line + c not in rlu_entries:
                                break
                        else:
                            rlu_mv(line)
                            for c in cands:
                                rlu_mv(line + c)
                            rlu.hits += 1 + len(cands)
                            pf._prev_record = record
                            return
            else:
                memo_pop(line, None)
                if st_fast:
                    # seqtable.set, inlined (no counters on the write).
                    st_bits[(line // st_bs) % st_n] = 1
                else:
                    seqtable_set(line)
                if enable_dis:
                    # _record_discontinuity, inlined.
                    prev = pf._prev_record
                    if (prev is not None and prev.has_branch and prev.taken
                            and prev.branch_kind is not _RETURN):
                        bp = prev.branch_pc
                        off = bp % block_size
                        dt_record(bp - off,
                                  off if variable_length else off // 4)
            pf._prev_record = record
            # SN4L triggers on *every* access via the local prefetch
            # status; the RLU only gates pre-decode and candidate lookups.
            if line in rlu_entries:
                rlu_mv(line)
                rlu.hits += 1
                fresh = False
            else:
                rlu.misses += 1
                if len(rlu_entries) >= rlu_cap:
                    rlu_entries.popitem(last=False)
                rlu_entries[line] = True
                fresh = True
            if enable_seq:
                if len(seq_items) >= seq_cap:
                    seq_items.popleft()
                    seq_queue.dropped += 1
                seq_items.append((line, 0))
            if fresh and do_dis:
                if len(dis_items) >= dis_cap:
                    dis_items.popleft()
                    dis_queue.dropped += 1
                dis_items.append((line, 0))
            drain()

        def on_fill(line_addr, was_prefetch, cycle) -> None:
            memo_pop(line_addr, None)
            key = line_addr // l1i_block
            resident = l1i_sets[key % l1i_nsets].get(key)
            if resident is not None:
                if st_fast:
                    # seqtable.next4_status, inlined.
                    st.lookups += 4
                    blk = line_addr // st_bs
                    resident.local_status = (
                        st_bits[(blk + 1) % st_n]
                        | st_bits[(blk + 2) % st_n] << 1
                        | st_bits[(blk + 3) % st_n] << 2
                        | st_bits[(blk + 4) % st_n] << 3)
                else:
                    resident.local_status = next4(line_addr)
            depth = pending_pop(line_addr, None)
            if depth is not None:
                predecode(line_addr, depth)
                drain()

        def on_prefetch_hit(line_addr, cycle) -> None:
            if st_fast:
                st_bits[(line_addr // st_bs) % st_n] = 1
            else:
                seqtable_set(line_addr)

        def on_evict(line, cycle) -> None:
            if line.is_prefetch:
                if st_fast:
                    st_bits[(line.addr // st_bs) % st_n] = 0
                else:
                    seqtable_reset(line.addr)
            pending_pop(line.addr, None)

        return drain, on_demand, on_fill, on_prefetch_hit, on_evict

    def _local_status(self, line: int) -> int:
        resident = self.sim.l1i.lookup(line, touch=False)
        if resident is not None:
            return resident.local_status
        return self.seqtable.next4_status(line)

    # ------------------------------------------------------------------
    # pre-decode: serves Dis and the BTB prefetch buffer together

    def _predecode_block(self, line: int, depth: int) -> None:
        offset = self.distable.lookup(line) if self.enable_dis else None
        if offset is None and not self.enable_btb:
            return
        if self.variable_length:
            self._predecode_block_vl(line, depth, offset)
            return

        # Fixed-ISA fast leg: the pre-decoder's cached (branches,
        # offset map) pair replaces the PredecodeResult/list churn of
        # decode_block, and the BTB prefetch buffer receives a prepared
        # per-block entry instead of rebuilding BufferedBranch objects
        # every pass.  Pass accounting (blocks_decoded, predecodes,
        # DisTable lookup, buffer inserts, telemetry) is unchanged.
        sim = self.sim
        pd = self._pd
        if pd is None:
            pd = self._pd = sim.predecoder()
        branches, offset_map = pd.fixed_block_info(line)
        self.predecodes += 1
        if sim.event_log is not None:
            self.telemetry.emit(sim.cycle, "predecode", line,
                                f"depth={depth}")

        if self.enable_btb and branches:
            prepared = self._prepared_btb.get(line)
            if prepared is None:
                buffer = sim.btb_prefetch_buffer
                prepared = (
                    line // buffer.block_size,
                    tuple(BufferedBranch(i.pc, i.target, i.kind) for i in
                          branches[:buffer.BRANCHES_PER_ENTRY]))
                self._prepared_btb[line] = prepared
            sim.btb_prefetch_buffer.fill_prepared(prepared[0], prepared[1])

        if offset is None:
            return
        instr = offset_map.get(offset)
        if instr is None:
            return
        target = instr.target
        if target is None:
            entry = sim.btb.peek(instr.pc)
            target = entry.target if entry is not None else None
        if target is None or target == NO_ADDR:
            return  # paper: no BTB entry, no prefetch
        self.dis_prefetch_candidates += 1
        self._push_candidate(block_base(target), depth + 1, _SRC_DIS)

    def _predecode_block_vl(self, line: int, depth: int,
                            offset: Optional[int]) -> None:
        """Variable-length leg: footprint-driven, per-pass decode."""
        footprint = self.sim.llc.get_footprint(line)
        if footprint is None and offset is None:
            return  # nothing decodable without boundaries
        result = self.sim.predecoder().decode_block(
            line, footprint_offsets=footprint, dis_offset=offset)
        self.predecodes += 1
        if self.telemetry is not None:
            self.telemetry.emit(self.sim.cycle, "predecode", line,
                                f"depth={depth}")

        if self.enable_btb and (result.branches or result.offset_branch):
            branches = list(result.branches)
            if result.offset_branch and result.offset_branch not in branches:
                branches.append(result.offset_branch)
            self.sim.btb_prefetch_buffer.fill(line, branches)

        if offset is None or result.offset_branch is None:
            return
        instr = result.offset_branch
        target = instr.target
        if target is None:
            entry = self.sim.btb.peek(instr.pc)
            target = entry.target if entry is not None else None
        if target is None or target == NO_ADDR:
            return  # paper: no BTB entry, no prefetch
        self.dis_prefetch_candidates += 1
        self._push_candidate(block_base(target), depth + 1, _SRC_DIS)

    # ------------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Per-core storage, mirroring the paper's 7.6 KB accounting."""
        total = 0
        if self.enable_seq:
            total += self.seqtable.storage_bytes()
        if self.enable_dis:
            total += self.distable.storage_bytes()
        if self.enable_btb and self.sim is not None \
                and self.sim.btb_prefetch_buffer is not None:
            total += self.sim.btb_prefetch_buffer.storage_bytes()
        l1_lines = (self.sim.l1i.size_bytes // self.sim.l1i.block_size
                    if self.sim is not None else 512)
        total += l1_lines * 5 // 8  # local status + prefetch flag
        queue_bits = (self.seq_queue.storage_bits() +
                      self.dis_queue.storage_bits() +
                      self.rlu_queue_entries * (40 + 3 + 1) +
                      self.rlu.storage_bits())
        total += queue_bits // 8
        return total


def sn4l_dis_btb(**kwargs) -> ProactivePrefetcher:
    """The paper's full proposal."""
    return ProactivePrefetcher(enable_seq=True, enable_dis=True,
                               enable_btb=True, **kwargs)


def sn4l_dis(**kwargs) -> ProactivePrefetcher:
    """SN4L+Dis without BTB prefilling (Fig. 17 breakdown point)."""
    return ProactivePrefetcher(enable_seq=True, enable_dis=True,
                               enable_btb=False, **kwargs)


def dis_only(**kwargs) -> ProactivePrefetcher:
    """Standalone Dis prefetcher (Fig. 13)."""
    return ProactivePrefetcher(enable_seq=False, enable_dis=True,
                               enable_btb=False, **kwargs)
