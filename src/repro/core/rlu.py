"""Recently-Looked-Up filter and the proactive prefetch queues.

The RLU (paper Section V-B) is a tiny structure holding the last eight
block addresses that were looked up in the L1i — by the prefetcher or by
demand fetch.  Every prefetch candidate passes through it; an RLU hit
means the block was just checked, so the candidate is dropped without
another cache lookup.  An RLU *miss* is also the event that advances the
proactive machinery: the candidate becomes a new triggering block in
SeqQueue and DisQueue, carrying its chain depth.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional, Tuple


class RecentlyLookedUp:
    """Small LRU set of recently looked-up block addresses."""

    def __init__(self, n_entries: int = 8):
        if n_entries <= 0:
            raise ValueError("RLU needs at least one entry")
        self.n_entries = n_entries
        self._entries: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def contains(self, line: int) -> bool:
        """Probe without inserting; counts hit/miss statistics."""
        if line in self._entries:
            self._entries.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def touch(self, line: int) -> None:
        """Record a lookup of ``line`` (demand or prefetcher)."""
        if line in self._entries:
            self._entries.move_to_end(line)
            return
        if len(self._entries) >= self.n_entries:
            self._entries.popitem(last=False)
        self._entries[line] = True

    def __len__(self) -> int:
        return len(self._entries)

    def storage_bits(self) -> int:
        return self.n_entries * 40  # block-address tags


class PrefetchQueue:
    """Bounded FIFO of ``(line, depth)`` work items.

    Overflow drops the oldest entry — stale work is the least valuable
    since the fetch stream has moved on.
    """

    def __init__(self, n_entries: int = 16, name: str = "queue"):
        if n_entries <= 0:
            raise ValueError("queue needs at least one entry")
        self.n_entries = n_entries
        self.name = name
        self._items: Deque[Tuple[int, int]] = deque()
        self.dropped = 0

    def push(self, line: int, depth: int) -> None:
        if len(self._items) >= self.n_entries:
            self._items.popleft()
            self.dropped += 1
        self._items.append((line, depth))

    def pop(self) -> Optional[Tuple[int, int]]:
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def storage_bits(self) -> int:
        return self.n_entries * (40 + 3)  # address + depth
