"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``            list the synthetic server workloads
``schemes``              list the registered prefetching schemes
``run``                  simulate one (workload, scheme) pair
``compare``              compare several schemes on one workload
``figure``               regenerate one of the paper's figures/tables
``sample``               SimFlex-style sampled run with confidence intervals
``multicore``            co-simulate a workload mix over a shared LLC
``stats``                observability: store inventory, run manifests,
                         per-component telemetry, profiling
``bench``                benchmark matrix with JSONL history; ``--check``
                         gates against the stored baseline
``trace``                analytics over JSONL event traces:
                         ``summarize`` / ``diff`` / ``query``
``lint``                 static analysis of simulator invariants:
                         determinism, telemetry registry, scheme
                         registry, storage budgets (text/JSON/SARIF)
``serve``                long-running HTTP/JSON API: run/compare/bench
                         as queued jobs over the shared sharded store
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import arithmetic_mean
from .experiments import (
    figures,
    parse_count,
    run_many,
    set_default_jobs,
    render_matrix,
    render_per_scheme,
    render_per_workload,
    render_sampled,
    render_storage,
    render_sweep,
    run_sampled,
    run_scheme,
    scheme_names,
)
from .workloads import DISPLAY_NAMES, get_generator, get_trace, workload_names

#: figure id -> (driver, renderer)
_FIGURES = {
    "fig1": lambda n: render_per_workload(
        "Fig 1: Shotgun U-BTB footprint miss ratio",
        figures.fig01_footprint_miss_ratio(n_records=n)),
    "tab1": lambda n: render_per_workload(
        "Table I: empty-FTQ stall fraction",
        figures.tab1_empty_ftq(n_records=n)),
    "fig2": lambda n: render_per_workload(
        "Fig 2: sequential fraction of L1i misses",
        figures.fig02_sequential_fraction(n_records=n)),
    "fig3": lambda n: render_per_workload(
        "Fig 3: NL sequential-miss coverage",
        figures.fig03_nl_seq_coverage(n_records=n)),
    "fig4": lambda n: render_per_scheme(
        "Fig 4: CMAL of NXL prefetchers",
        figures.fig04_cmal_nxl(n_records=n), fmt="{:.1%}"),
    "fig5": lambda n: render_matrix(
        "Fig 5: NXL side effects", figures.fig05_side_effects(n_records=n)),
    "fig6": lambda n: render_per_workload(
        "Fig 6: next-4-block predictability",
        figures.fig06_seq_predictability(n_records=n)),
    "fig7": lambda n: render_per_workload(
        "Fig 7: discontinuity-branch predictability",
        figures.fig07_dis_predictability(n_records=n)),
    "fig8": lambda n: render_sweep(
        "Fig 8: uncovered branches per BF size",
        figures.fig08_bf_branches(), x_name="branches", fmt="{:.2%}"),
    "fig9": lambda n: render_sweep(
        "Fig 9: uncovered BFs per LLC-set slots",
        figures.fig09_bf_per_set(n_records=n), x_name="slots", fmt="{:.2%}"),
    "fig12": lambda n: render_per_scheme(
        "Fig 12: Dis overprediction by tagging",
        figures.fig12_tagging(n_records=n), fmt="{:.1%}"),
    "fig13": lambda n: render_per_scheme(
        "Fig 13: CMAL", figures.fig13_timeliness(n_records=n), fmt="{:.1%}"),
    "fig14": lambda n: render_per_scheme(
        "Fig 14: normalised L1i lookups", figures.fig14_lookups(n_records=n)),
    "fig15": lambda n: render_matrix(
        "Fig 15: FSCR", figures.fig15_fscr(n_records=n)),
    "fig16": lambda n: render_matrix(
        "Fig 16: speedup", figures.fig16_speedup(n_records=n)),
    "fig17": lambda n: render_per_scheme(
        "Fig 17: breakdown", figures.fig17_breakdown(n_records=n)),
    "fig18": lambda n: render_sweep(
        "Fig 18: ours/Shotgun vs BTB size",
        figures.fig18_btb_sweep(n_records=n), x_name="btb"),
    "tab2": lambda n: render_storage(figures.tab2_storage()),
}


def _cmd_workloads(args) -> int:
    print(f"{'name':18s} {'display':18s} {'functions':>9s} {'handlers':>8s}")
    from .workloads import get_profile
    for name in workload_names():
        prof = get_profile(name)
        print(f"{name:18s} {DISPLAY_NAMES[name]:18s} "
              f"{prof.cfg.n_functions:>9d} {prof.walk.n_handlers:>8d}")
    return 0


def _cmd_schemes(args) -> int:
    for name in scheme_names():
        print(name)
    return 0


def _cmd_run(args) -> int:
    if args.jobs and args.jobs > 1:
        run_many([(args.workload, "baseline"), (args.workload, args.scheme)],
                 jobs=args.jobs, n_records=args.records, scale=args.scale,
                 variable_length=args.vl)
    base = run_scheme(args.workload, "baseline", n_records=args.records,
                      scale=args.scale, variable_length=args.vl)
    counts = None
    if args.trace:
        # Stream engine events to JSONL while simulating.  Deterministic
        # engine + identical construction => the statistics match a
        # cached run_scheme() of the same parameters bit for bit.
        from .obs import trace_run
        st, counts = trace_run(args.workload, args.scheme, args.trace,
                               n_records=args.records, scale=args.scale,
                               variable_length=args.vl)
    else:
        st = run_scheme(args.workload, args.scheme, n_records=args.records,
                        scale=args.scale, variable_length=args.vl).stats
    misses = st.demand_misses + st.demand_late_prefetch
    print(f"{args.workload} / {args.scheme} "
          f"({args.records} records, scale {args.scale})")
    print(f"  speedup    {st.speedup_over(base.stats):8.3f}x")
    print(f"  ipc        {st.ipc:8.3f}")
    print(f"  L1i MPKI   {misses / st.instructions * 1000:8.1f}")
    print(f"  coverage   {st.coverage_over(base.stats):8.1%}")
    print(f"  cmal       {st.cmal:8.1%}")
    print(f"  fscr       {st.fscr_over(base.stats):8.1%}")
    print(f"  accuracy   {st.prefetch_accuracy:8.1%}")
    print(f"  btb misses {st.btb_misses:8d}")
    print(f"  engine     {st.extra.get('engine_path', 'generic'):>8s}")
    if counts is not None:
        from .obs import reconcile
        mismatches = reconcile(st, counts)
        total = sum(counts.values())
        if mismatches:
            print(f"  trace      {total} events -> {args.trace} "
                  f"RECONCILIATION MISMATCH {mismatches}", file=sys.stderr)
            return 1
        print(f"  trace      {total} events -> {args.trace} (reconciled)")
    return 0


def _cmd_compare(args) -> int:
    schemes = args.schemes.split(",")
    unknown = [s for s in schemes if s not in scheme_names()]
    if unknown:
        print(f"unknown schemes: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.jobs and args.jobs > 1:
        run_many([(args.workload, s) for s in ["baseline"] + schemes],
                 jobs=args.jobs, n_records=args.records, scale=args.scale)
    base = run_scheme(args.workload, "baseline", n_records=args.records,
                      scale=args.scale)
    rows = {}
    for scheme in schemes:
        st = run_scheme(args.workload, scheme, n_records=args.records,
                        scale=args.scale).stats
        rows[scheme] = {
            "speedup": st.speedup_over(base.stats),
            "coverage": st.coverage_over(base.stats),
            "cmal": st.cmal,
            "fscr": st.fscr_over(base.stats),
            "accuracy": st.prefetch_accuracy,
            "ipc": st.ipc,
        }
    if args.json:
        print(json.dumps({
            "workload": args.workload,
            "n_records": args.records,
            "scale": args.scale,
            "baseline": base.stats.summary(),
            "schemes": rows,
        }, indent=2, sort_keys=True))
        return 0
    print(f"{'scheme':16s} {'speedup':>8s} {'coverage':>9s} "
          f"{'cmal':>7s} {'fscr':>7s} {'accuracy':>9s}")
    for scheme, row in rows.items():
        print(f"{scheme:16s} {row['speedup']:8.3f} "
              f"{row['coverage']:9.1%} {row['cmal']:7.1%} "
              f"{row['fscr']:7.1%} {row['accuracy']:9.1%}")
    return 0


#: figure id -> raw-data driver (for exports).
_FIGURE_DATA = {
    "fig1": lambda n: figures.fig01_footprint_miss_ratio(n_records=n),
    "tab1": lambda n: figures.tab1_empty_ftq(n_records=n),
    "fig2": lambda n: figures.fig02_sequential_fraction(n_records=n),
    "fig3": lambda n: figures.fig03_nl_seq_coverage(n_records=n),
    "fig4": lambda n: figures.fig04_cmal_nxl(n_records=n),
    "fig5": lambda n: figures.fig05_side_effects(n_records=n),
    "fig6": lambda n: figures.fig06_seq_predictability(n_records=n),
    "fig7": lambda n: figures.fig07_dis_predictability(n_records=n),
    "fig8": lambda n: figures.fig08_bf_branches(),
    "fig9": lambda n: figures.fig09_bf_per_set(n_records=n),
    "fig12": lambda n: figures.fig12_tagging(n_records=n),
    "fig13": lambda n: figures.fig13_timeliness(n_records=n),
    "fig14": lambda n: figures.fig14_lookups(n_records=n),
    "fig15": lambda n: figures.fig15_fscr(n_records=n),
    "fig16": lambda n: figures.fig16_speedup(n_records=n),
    "fig17": lambda n: figures.fig17_breakdown(n_records=n),
    "fig18": lambda n: figures.fig18_btb_sweep(n_records=n),
}


def _cmd_figure(args) -> int:
    driver = _FIGURES.get(args.id)
    if driver is None:
        print(f"unknown figure {args.id!r}; known: "
              f"{', '.join(sorted(_FIGURES))}", file=sys.stderr)
        return 2
    print(driver(args.records))
    if args.csv or args.json:
        data_driver = _FIGURE_DATA.get(args.id)
        if data_driver is None:
            print(f"{args.id} has no tabular data to export",
                  file=sys.stderr)
            return 2
        data = data_driver(args.records)  # cached: re-renders instantly
        from .experiments.export import write_csv, write_json
        if args.csv:
            print(f"wrote {write_csv(data, args.csv)}")
        if args.json:
            print(f"wrote {write_json(data, args.json, title=args.id)}")
    return 0


def _cmd_sample(args) -> int:
    run = run_sampled(args.workload, args.scheme, n_samples=args.samples,
                      n_records=args.records, scale=args.scale,
                      jobs=args.jobs)
    print(render_sampled(run))
    return 0


def _cmd_multicore(args) -> int:
    from .analysis import render_stack_comparison
    from .experiments import build_scheme
    from .multicore import STANDARD_MIXES, MulticoreSimulator, build_mix

    mix = STANDARD_MIXES.get(args.mix)
    if mix is None:
        print(f"unknown mix {args.mix!r}; known: "
              f"{', '.join(sorted(STANDARD_MIXES))}", file=sys.stderr)
        return 2
    traces, programs = build_mix(mix, n_records=args.records,
                                 scale=args.scale, jobs=args.jobs)

    def factory():
        prefetcher, _overrides = build_scheme(args.scheme)
        return prefetcher

    sim = MulticoreSimulator(
        traces, prefetcher_factory=factory if args.scheme != "baseline"
        else None, programs=programs)
    result = sim.run(warmup=args.records // 3)
    print(f"mix {mix.name} / scheme {args.scheme} "
          f"({mix.n_cores} cores, {args.records} records each)")
    print(f"aggregate IPC      {result.aggregate_ipc:.3f}")
    print(f"shared LLC latency {sim.latency.average_latency:.1f} cycles")
    print()
    print(render_stack_comparison(
        {f"core{c.core}:{c.workload}": c.stats for c in result.cores}))
    return 0


def _cmd_stats(args) -> int:
    from .experiments import store as result_store
    from .obs import PROFILER, component_report
    from .obs.telemetry import store_event_counts

    if args.metrics:
        # The same Prometheus text a served process exposes at
        # /metricsz, rendered from this process's registry (the store
        # gauges are refreshed by their collector at render time).
        from .obs.metrics import render_metrics
        sys.stdout.write(render_metrics())
        return 0

    if args.json:
        payload = {"store": {"root": str(result_store.cache_root()),
                             "enabled": result_store.caching_enabled()}}
        st = result_store.get_store()
        if st is not None:
            payload["store"].update(st.overview())
            payload["store"]["session_counters"] = st.counters()
            payload["store"]["events"] = store_event_counts()
            manifests = sorted(st.iter_manifests(),
                               key=lambda m: m.get("written_at", 0.0))
            payload["recent_runs"] = manifests[-args.last:] \
                if args.last > 0 else []
        if args.workload and args.scheme:
            stats, counters = component_report(
                args.workload, args.scheme, n_records=args.records,
                scale=args.scale)
            payload["components"] = {
                "workload": args.workload, "scheme": args.scheme,
                "n_records": args.records, "scale": args.scale,
                "per_component": counters.as_dict(),
                "aggregate": stats.summary(),
                "engine_path": stats.extra.get("engine_path", "generic"),
            }
        elif args.workload or args.scheme:
            print("need both --workload and --scheme for a component "
                  "breakdown", file=sys.stderr)
            return 2
        payload["profile"] = PROFILER.snapshot()
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print("persistent store")
    print(f"  root        {result_store.cache_root()}")
    print(f"  enabled     {result_store.caching_enabled()}")
    st = result_store.get_store()
    if st is not None:
        info = st.overview()
        for kind in ("results", "manifests", "traces"):
            entry = info[kind]
            shards = entry.get("shards") or {}
            spread = ""
            if shards:
                counts = [c["count"] for c in shards.values()]
                spread = (f" in {len(shards)} shards "
                          f"(max {max(counts)}/min {min(counts)})")
            print(f"  {kind:11s} {entry['count']:6d} entries "
                  f"({entry['bytes'] / 1024:.1f} KiB){spread}")
        counters = st.counters()
        print("  session     " + "  ".join(
            f"{k}={v}" for k, v in counters.items()))
        budget = info.get("budget_bytes")
        if budget is not None:
            print(f"  budget      {budget} bytes (LRU eviction)")
        events = store_event_counts()
        if events:
            print("  events      " + "  ".join(
                f"{k}={v}" for k, v in events.items()))

        manifests = sorted(st.iter_manifests(),
                           key=lambda m: m.get("written_at", 0.0))
        if manifests and args.last > 0:
            print()
            print(f"recent runs (last {min(args.last, len(manifests))} "
                  f"of {len(manifests)})")
            print(f"  {'workload':16s} {'scheme':16s} {'records':>8s} "
                  f"{'duration':>9s} {'cycles':>12s} {'ipc':>6s}")
            for m in manifests[-args.last:]:
                summary = m.get("summary", {})
                print(f"  {m.get('workload', '?'):16s} "
                      f"{m.get('scheme', '?'):16s} "
                      f"{m.get('n_records', 0):>8d} "
                      f"{m.get('duration_s', 0.0):>8.2f}s "
                      f"{summary.get('cycles', 0.0):>12.0f} "
                      f"{summary.get('ipc', 0.0):>6.3f}")

    if args.workload and args.scheme:
        print()
        print(f"per-component telemetry: {args.workload} / {args.scheme} "
              f"({args.records} records, scale {args.scale})")
        stats, counters = component_report(
            args.workload, args.scheme, n_records=args.records,
            scale=args.scale)
        if counters.sources():
            print(counters.render())
        else:
            print("  (no prefetches issued)")
        print(f"  aggregate: issued={stats.prefetches_issued} "
              f"useful={stats.prefetches_useful} "
              f"useless={stats.prefetches_useless} "
              f"accuracy={stats.prefetch_accuracy:.1%} "
              f"cmal={stats.cmal:.1%} "
              f"engine={stats.extra.get('engine_path', 'generic')}")
    elif args.workload or args.scheme:
        print("\nneed both --workload and --scheme for a component "
              "breakdown", file=sys.stderr)
        return 2

    profile = PROFILER.render()
    if profile != "(no profile data)":
        print()
        print("profile (this process)")
        print(profile)
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .experiments import store as result_store
    from .service import ReproService

    budget = None
    if args.budget:
        budget = result_store.parse_byte_budget(args.budget)
        if budget is None:
            print(f"invalid --budget {args.budget!r} "
                  f"(want e.g. 512m, 2g, or plain bytes)", file=sys.stderr)
            return 2

    async def run() -> int:
        service = ReproService(host=args.host, port=args.port,
                               workers=args.workers,
                               queue_size=args.queue_size,
                               budget_bytes=budget)
        await service.start()
        host, port = service.address
        print(f"repro serve listening on http://{host}:{port} "
              f"(workers={args.workers}, queue={args.queue_size}, "
              f"cache={result_store.cache_root()})", flush=True)
        if args.ready_file:
            ready = Path(args.ready_file)
            ready.parent.mkdir(parents=True, exist_ok=True)
            tmp = ready.with_suffix(ready.suffix + ".tmp")
            tmp.write_text(json.dumps({"host": host, "port": port}) + "\n")
            tmp.replace(ready)          # atomic: readers never see a torn file
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await service.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
        return 0


def _cmd_top(args) -> int:
    from .service.top import run_top

    return run_top(args.host, args.port, interval=args.interval,
                   iterations=1 if args.once else None)


def _cmd_bench(args) -> int:
    from .obs import bench, regress

    try:
        cells = bench.resolve_matrix(args.matrix, n_records=args.records,
                                     scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    try:
        tolerance = regress.parse_tolerance(args.tolerance)
    except ValueError:
        print(f"invalid --tolerance {args.tolerance!r} "
              f"(use e.g. '10%' or '0.1')", file=sys.stderr)
        return 2

    if not args.json:
        print(f"benchmark matrix '{args.matrix}': {len(cells)} cells, "
              f"{args.repeats} repeats each "
              f"(history: {bench.history_path()})")

    def progress(record):
        if not args.json:
            print(f"  {record['cell']:<44s} "
                  f"{record['mean_records_per_sec']:>10,.0f} rec/s")

    records = bench.run_matrix(cells, repeats=args.repeats,
                               progress=progress)
    # Gate against the history as it stood *before* this run, then
    # append — so back-to-back runs compare against each other.
    history = bench.load_history()
    verdicts = None
    if args.check:
        verdicts = regress.check_records(records, history,
                                         tolerance=tolerance)
    for record in records:
        bench.append_history(record)
    if args.view:
        path = bench.write_view(bench.load_history(), args.view)
        if not args.json:
            print(f"wrote derived view {path}")

    if args.json:
        payload = {"records": records}
        if verdicts is not None:
            payload["verdicts"] = [v.as_dict() for v in verdicts]
            payload["failed"] = regress.any_failed(verdicts)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print()
        print(bench.render_records(records))
        if verdicts is not None:
            print()
            print(f"regression gate (tolerance {tolerance:.0%}, "
                  f"baseline: latest stored entry per cell)")
            print(regress.render_verdicts(verdicts))
    if verdicts is not None:
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(regress.markdown_report(verdicts,
                                                 tolerance=tolerance))
            if not args.json:
                print(f"wrote markdown report {args.report}")
        if regress.any_failed(verdicts):
            return 1
    return 0


def _cmd_trace_summarize(args) -> int:
    from .obs import traceql

    summary = traceql.summarize_trace(args.file)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(traceql.render_summary(summary))
    return 0


def _cmd_trace_diff(args) -> int:
    from .obs import traceql

    diff = traceql.diff_traces(args.a, args.b)
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.identical else 1


def _cmd_trace_query(args) -> int:
    from .obs import traceql

    events = traceql.query_trace(
        args.file,
        kinds=args.kind.split(",") if args.kind else None,
        sources=args.source.split(",") if args.source else None,
        cycle_min=args.cycle_min, cycle_max=args.cycle_max,
        limit=args.limit)
    if args.json:
        print(json.dumps([e.to_dict() for e in events], indent=2))
    else:
        for event in events:
            print(event)
        print(f"({len(events)} events)", file=sys.stderr)
    return 0


def _cmd_lint(args) -> int:
    from .lint import RULES, LintUsageError, lint_paths
    from .lint.reporters import RENDERERS, render_sarif

    if args.list_rules:
        print(f"{'id':8s} {'scope':8s} {'name':28s} summary")
        for rule in RULES.values():
            print(f"{rule.id:8s} {rule.scope:8s} {rule.name:28s} "
                  f"{rule.summary}")
        return 0
    if args.env_table:
        from .envcontract import render_markdown
        table = render_markdown()
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(table)
            print(f"wrote env-contract table {args.output}")
        else:
            print(table, end="")
        return 0
    if args.diff and not args.fix:
        print("--diff requires --fix", file=sys.stderr)
        return 2

    def run_lint():
        return lint_paths(
            args.paths or None,
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None,
            jobs=args.jobs,
            changed_only=args.changed_only,
            use_store=False if args.no_store else None)

    try:
        result = run_lint()
    except LintUsageError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.fix:
        from .lint.autofix import apply_fixes
        report = apply_fixes(result, dry_run=args.diff)
        if args.diff:
            if report.pending:
                print(report.diff, end="")
                print(f"{report.applied} safe fix(es) pending in "
                      f"{len(report.files)} file(s); run "
                      f"'repro lint --fix' to apply them")
                return 1
            print("no safe fixes pending")
            return 0
        if report.pending:
            rules = ", ".join(f"{rule} x{n}" for rule, n in
                              sorted(report.fixed_rules.items()))
            print(f"fixed {report.applied} span(s) in "
                  f"{len(report.files)} file(s) ({rules})")
            result = run_lint()   # report what --fix could not repair
    rendered = RENDERERS[args.format](result)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"wrote {args.format} report {args.output}")
    else:
        print(rendered)
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            fh.write(render_sarif(result) + "\n")
        if args.format != "sarif" or args.output:
            print(f"wrote sarif report {args.sarif}")
    return 0 if result.ok else 1


def _jobs_flag(value):
    """argparse type for every ``--jobs`` flag: shares the env-var
    normalization, so ``--jobs three`` warns exactly like
    ``REPRO_JOBS=three`` and falls back to serial instead of aborting
    the parse."""
    return parse_count(value, source="--jobs")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Divide and Conquer Frontend "
                    "Bottleneck' (ISCA 2020)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list workloads"
                   ).set_defaults(func=_cmd_workloads)
    sub.add_parser("schemes", help="list schemes"
                   ).set_defaults(func=_cmd_schemes)

    def common(p):
        p.add_argument("--records", type=int, default=90_000)
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--jobs", type=_jobs_flag, default=None, metavar="N",
                       help="worker processes for independent simulations "
                            "(default: serial, or $REPRO_JOBS)")

    p_run = sub.add_parser("run", help="simulate one workload/scheme pair")
    p_run.add_argument("--workload", default="web_apache",
                       choices=workload_names())
    p_run.add_argument("--scheme", default="sn4l_dis_btb",
                       choices=sorted(scheme_names()))
    p_run.add_argument("--vl", action="store_true",
                       help="variable-length ISA build")
    p_run.add_argument("--trace", metavar="OUT.JSONL",
                       help="stream engine events to a JSONL trace file "
                            "(opt-in; the default path stays event-free)")
    common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="compare schemes on a workload")
    p_cmp.add_argument("--workload", default="web_apache",
                       choices=workload_names())
    p_cmp.add_argument("--schemes",
                       default="n4l,sn4l,sn4l_dis,sn4l_dis_btb,shotgun")
    p_cmp.add_argument("--json", action="store_true",
                       help="machine-readable output (per-scheme metrics)")
    common(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("id", help="e.g. fig16, tab1")
    p_fig.add_argument("--csv", help="also export the data as CSV")
    p_fig.add_argument("--json", help="also export the data as JSON")
    common(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_sample = sub.add_parser("sample",
                              help="sampled run with confidence intervals")
    p_sample.add_argument("--workload", default="web_apache",
                          choices=workload_names())
    p_sample.add_argument("--scheme", default="sn4l_dis_btb",
                          choices=sorted(scheme_names()))
    p_sample.add_argument("--samples", type=int, default=5)
    p_sample.add_argument("--records", type=int, default=60_000)
    p_sample.add_argument("--scale", type=float, default=1.0)
    p_sample.add_argument("--jobs", type=_jobs_flag, default=None,
                          metavar="N",
                          help="worker processes, one sample each")
    p_sample.set_defaults(func=_cmd_sample)

    p_mc = sub.add_parser("multicore",
                          help="co-simulate a workload mix over a shared LLC")
    p_mc.add_argument("--mix", default="web4",
                      help="a named mix (see repro.multicore.STANDARD_MIXES)")
    p_mc.add_argument("--scheme", default="sn4l_dis_btb",
                      choices=sorted(scheme_names()))
    p_mc.add_argument("--records", type=int, default=40_000)
    p_mc.add_argument("--scale", type=float, default=0.5)
    p_mc.add_argument("--jobs", type=_jobs_flag, default=None, metavar="N",
                      help="worker processes for per-core trace generation")
    p_mc.set_defaults(func=_cmd_multicore)

    p_stats = sub.add_parser(
        "stats", help="observability: store inventory, run manifests, "
                      "per-component telemetry, profiling")
    p_stats.add_argument("--last", type=int, default=8, metavar="N",
                         help="how many recent run manifests to list")
    p_stats.add_argument("--workload", default=None,
                         choices=workload_names(),
                         help="with --scheme: per-component breakdown")
    p_stats.add_argument("--scheme", default=None,
                         choices=sorted(scheme_names()))
    p_stats.add_argument("--records", type=int, default=20_000)
    p_stats.add_argument("--scale", type=float, default=1.0)
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable output (store, manifests, "
                              "components, profile)")
    p_stats.add_argument("--metrics", action="store_true",
                         help="print this process's metrics registry as "
                              "Prometheus text (same format as the "
                              "service's /metricsz) and exit")
    p_stats.set_defaults(func=_cmd_stats)

    from .obs.bench import matrix_names
    p_bench = sub.add_parser(
        "bench", help="run the benchmark matrix, append to the JSONL "
                      "history; --check gates against the stored baseline")
    p_bench.add_argument("--matrix", default="default",
                         choices=matrix_names())
    p_bench.add_argument("--repeats", type=int, default=3, metavar="N",
                         help="timed repetitions per cell (default 3)")
    p_bench.add_argument("--records", type=int, default=None,
                         help="override every cell's trace length")
    p_bench.add_argument("--scale", type=float, default=None,
                         help="override every cell's workload scale")
    p_bench.add_argument("--check", action="store_true",
                         help="compare against the stored baseline; exit 1 "
                              "on a statistically significant regression")
    p_bench.add_argument("--tolerance", default="10%",
                         help="mean slowdown tolerated before failing "
                              "(default 10%%)")
    p_bench.add_argument("--report", metavar="OUT.MD",
                         help="with --check: write a markdown report")
    p_bench.add_argument("--view", metavar="OUT.JSON",
                         help="regenerate the derived throughput view "
                              "(e.g. BENCH_throughput.json)")
    p_bench.add_argument("--json", action="store_true",
                         help="machine-readable records and verdicts")
    p_bench.set_defaults(func=_cmd_bench)

    p_lint = sub.add_parser(
        "lint", help="static analysis of simulator invariants: "
                     "determinism, telemetry/scheme registries, storage "
                     "budgets")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: the installed "
                             "repro package)")
    p_lint.add_argument("--format", default="text",
                        choices=("text", "json", "sarif"))
    p_lint.add_argument("--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    p_lint.add_argument("--sarif", metavar="FILE",
                        help="additionally write a SARIF 2.1.0 report "
                             "(for code-scanning upload)")
    p_lint.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids/prefixes to run "
                             "(e.g. DET,BUD001)")
    p_lint.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids/prefixes to skip")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--jobs", type=_jobs_flag, default=None, metavar="N",
                        help="worker processes for the per-file pass")
    p_lint.add_argument("--changed-only", action="store_true",
                        help="lint only files changed since the merge-base "
                             "with main (plus untracked files); outside a "
                             "git checkout everything is linted")
    p_lint.add_argument("--fix", action="store_true",
                        help="apply the safe autofixes attached to the "
                             "findings (span rewrites only, never a noqa), "
                             "then re-lint and report what remains")
    p_lint.add_argument("--diff", action="store_true",
                        help="with --fix: print pending fixes as a unified "
                             "diff without writing anything; exits 1 when "
                             "fixes are pending (the CI dry-run gate)")
    p_lint.add_argument("--no-store", action="store_true",
                        help="skip the incremental lint cache (cold run)")
    p_lint.add_argument("--env-table", action="store_true",
                        help="print the declared environment-variable "
                             "contract as a markdown table and exit "
                             "(honours --output)")
    p_lint.set_defaults(func=_cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="serve run/compare/bench as jobs over HTTP/JSON")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="0 binds an ephemeral port (printed on boot)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="concurrent simulation workers")
    p_serve.add_argument("--queue-size", type=int, default=64,
                         help="pending-job bound before 429 backpressure")
    p_serve.add_argument("--budget", default=None, metavar="BYTES",
                         help="store byte budget with k/m/g suffix "
                              "(LRU eviction), e.g. 512m")
    p_serve.add_argument("--ready-file", default=None, metavar="PATH",
                         help="write {host, port} JSON here once "
                              "listening (for drivers/CI)")
    p_serve.set_defaults(func=_cmd_serve)

    p_top = sub.add_parser(
        "top", help="live view of a running service: queue depth, "
                    "cache hit rates, shard skew, latency percentiles "
                    "(scrapes /metricsz + /storez)")
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, required=True,
                       help="the served port (printed by `repro serve`)")
    p_top.add_argument("--interval", type=float, default=2.0,
                       help="seconds between frames (default 2)")
    p_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit (scripts, CI)")
    p_top.set_defaults(func=_cmd_top)

    p_trace = sub.add_parser(
        "trace", help="analytics over JSONL event traces "
                      "(from `repro run --trace`)")
    tsub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_sum = tsub.add_parser("summarize",
                            help="per-kind/source/component event totals")
    p_sum.add_argument("file")
    p_sum.add_argument("--json", action="store_true")
    p_sum.set_defaults(func=_cmd_trace_summarize)

    p_diff = tsub.add_parser(
        "diff", help="align two traces: counter drift per kind and "
                     "component, first diverging event; exit 1 on drift")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.add_argument("--json", action="store_true")
    p_diff.set_defaults(func=_cmd_trace_diff)

    p_query = tsub.add_parser("query",
                              help="filter events by kind/source/cycle")
    p_query.add_argument("file")
    p_query.add_argument("--kind", help="comma-separated event kinds")
    p_query.add_argument("--source",
                         help="comma-separated sources ('engine' = untagged)")
    p_query.add_argument("--cycle-min", type=int, default=None)
    p_query.add_argument("--cycle-max", type=int, default=None)
    p_query.add_argument("--limit", type=int, default=None)
    p_query.add_argument("--json", action="store_true")
    p_query.set_defaults(func=_cmd_trace_query)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    # Make --jobs reach figure drivers (and anything else that consults
    # the parallel runner) without threading it through every lambda.
    set_default_jobs(getattr(args, "jobs", None))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
