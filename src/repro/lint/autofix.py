"""The span-based autofixer behind ``repro lint --fix``.

Rules that can compute a *safe* repair attach span edits to their
findings (:class:`~repro.lint.framework.Finding.fix`); this module
applies them.  The safety policy is strict:

* a fix must make the finding disappear by **repairing the code**, not
  by exempting it — the fixer never inserts ``# repro: noqa``;
* a fix only rewrites spans whose current source text the rule could
  see statically (a literal default, a single-assignment handle, a
  registry tuple), so applying it twice is a byte-for-byte no-op: the
  second lint run finds nothing to fix;
* overlapping edits are refused rather than merged — the first edit
  (in finding order) wins and the conflicting fix is reported as
  skipped, because two rules rewriting the same span cannot both be
  right.

``apply_fixes`` works on a :class:`LintResult`: it groups the edits of
unsuppressed findings by file, validates them against the current
source, and either writes the patched files or (``dry_run``) returns
the unified diff — the ``--fix --diff`` CI gate fails when that diff
is non-empty, which is exactly "safe fixes are pending".
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .framework import Edit, Finding, LintResult

#: One edit positioned inside a file: ((line, col), (end_line, end_col),
#: replacement) with 1-based lines and 0-based columns.
_Span = Tuple[Tuple[int, int], Tuple[int, int], str]


@dataclass
class FixReport:
    """Outcome of one ``--fix`` (or ``--fix --diff``) pass."""

    applied: int = 0                 # edits written (or pending in dry run)
    fixed_rules: Dict[str, int] = field(default_factory=dict)
    files: List[str] = field(default_factory=list)   # files touched
    skipped: int = 0                 # fixes dropped (overlap / bad span)
    diff: str = ""                   # unified diff (dry runs only)

    @property
    def pending(self) -> bool:
        return self.applied > 0


def _pos(line: int, col: int, line_starts: Sequence[int],
         length: int) -> int:
    """Flat offset of (1-based line, 0-based col), clamped to the file."""
    if line < 1:
        return 0
    if line > len(line_starts):
        return length
    return min(line_starts[line - 1] + max(col, 0), length)


def _apply_spans(source: str, spans: List[_Span]) -> Tuple[str, int, int]:
    """Apply non-overlapping spans to ``source``.

    Returns ``(new source, applied, skipped)``.  Spans are applied
    back-to-front so earlier offsets stay valid; a span overlapping an
    already-accepted one is skipped.  Pure insertions (zero-width
    spans) at the same point all apply, in finding order.
    """
    line_starts = []
    offset = 0
    for line in source.splitlines(keepends=True):
        line_starts.append(offset)
        offset += len(line)
    if not line_starts:
        line_starts = [0]

    resolved: List[Tuple[int, int, int, str]] = []  # (start, end, seq, text)
    for seq, ((line, col), (end_line, end_col), text) in enumerate(spans):
        start = _pos(line, col, line_starts, len(source))
        end = _pos(end_line, end_col, line_starts, len(source))
        if end < start:
            start, end = end, start
        resolved.append((start, end, seq, text))

    accepted: List[Tuple[int, int, int, str]] = []
    skipped = 0
    for start, end, seq, text in sorted(resolved):
        if accepted and start < accepted[-1][1]:
            skipped += 1
            continue
        accepted.append((start, end, seq, text))

    out = source
    # Same-point insertions must keep finding order after the reversal,
    # so ties break on the *descending* sequence number.
    for start, end, _, text in sorted(
            accepted, key=lambda e: (e[0], e[1], e[2]), reverse=True):
        out = out[:start] + text + out[end:]
    return out, len(accepted), skipped


def collect_edits(findings: Sequence[Finding]
                  ) -> Tuple[Dict[str, List[_Span]], Dict[str, int]]:
    """Group the fix edits of ``findings`` by target file.

    Returns ``(spans by rel path, fixed-finding count by rule)``.
    Finding order (already sorted by location) fixes the application
    order, which keeps ``--fix`` deterministic.
    """
    by_path: Dict[str, List[_Span]] = {}
    by_rule: Dict[str, int] = {}
    for finding in findings:
        if not finding.fix:
            continue
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        for edit in finding.fix:
            path, line, col, end_line, end_col, text = edit
            by_path.setdefault(path, []).append(
                ((line, col), (end_line, end_col), text))
    return by_path, by_rule


def apply_fixes(result: LintResult, dry_run: bool = False) -> FixReport:
    """Apply (or preview) every safe fix attached to ``result``.

    Suppressed findings are never fixed: a ``noqa`` records a human
    decision to keep the code as written.
    """
    report = FixReport()
    by_path, report.fixed_rules = collect_edits(result.findings)
    root = Path(result.root)
    diffs: List[str] = []
    for rel in sorted(by_path):
        target = root / rel
        try:
            source = target.read_text(encoding="utf-8")
        except OSError:
            report.skipped += len(by_path[rel])
            continue
        patched, applied, skipped = _apply_spans(source, by_path[rel])
        report.skipped += skipped
        if patched == source or not applied:
            continue
        report.applied += applied
        report.files.append(rel)
        if dry_run:
            diffs.append("".join(difflib.unified_diff(
                source.splitlines(keepends=True),
                patched.splitlines(keepends=True),
                fromfile=f"a/{rel}", tofile=f"b/{rel}")))
        else:
            target.write_text(patched, encoding="utf-8")
    report.diff = "".join(diffs)
    return report


def fix_edit(path: str, start: Tuple[int, int], end: Tuple[int, int],
             text: str) -> Edit:
    """Convenience constructor keeping rule code terse and typed."""
    return (path, start[0], start[1], end[0], end[1], text)
