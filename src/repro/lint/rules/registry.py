"""Scheme-registry consistency rules (REG001-REG003).

``repro.experiments.runner.SCHEMES`` is the single map from a scheme
name (every ``--scheme`` choice, every bench cell, every figure driver)
to a factory building ``(prefetcher, config overrides)``.  A broken
entry — a renamed class, a constructor argument that no longer exists,
an override key ``FrontendConfig`` dropped — only surfaces today when
that scheme is first simulated.  These rules verify the whole registry
statically:

* **REG001** the factory's callee must resolve (by importing the
  defining module, or statically for non-importable fixtures) and the
  call must bind against its constructor signature;
* **REG002** every override key must be a ``FrontendConfig`` field;
* **REG003** every entry must have the canonical shape — a lambda
  returning a 2-tuple of ``None``-or-call and a dict literal — so the
  other two rules (and human readers) can analyse it.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from pathlib import PurePath
from typing import Iterable, List, Optional, Set, Tuple, Union

from ..astutil import dotted_name, find_class, static_bind
from ..framework import (
    Facts,
    FileContext,
    Finding,
    Project,
    Rule,
    fact_extractor,
    register,
)


@fact_extractor("scheme_registry")
def registry_facts(ctx: FileContext) -> Optional[Facts]:
    """Flag files holding a ``SCHEMES`` dict or a ``FrontendConfig``."""
    if ctx.tree is None:
        return None
    facts: Facts = {}
    for node in ctx.tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SCHEMES" and \
                        isinstance(node.value, ast.Dict):
                    facts["has_schemes"] = True
        elif isinstance(node, ast.ClassDef) and \
                node.name == "FrontendConfig":
            facts["has_config"] = True
    return facts or None


def module_name_for(rel: str) -> Optional[str]:
    """Importable dotted module name for a repo-relative path, if the
    path lies inside the ``repro`` package."""
    parts = list(PurePath(rel).parts)
    if "repro" not in parts:
        return None
    parts = parts[parts.index("repro"):]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _config_fields(project: Project) -> Set[str]:
    """FrontendConfig field names, from the linted set when it declares
    the class, else from the installed dataclass."""
    fields: Set[str] = set()
    for rel, facts in project.facts_for("scheme_registry").items():
        if not facts.get("has_config"):
            continue
        tree = project.context(rel).tree
        cls = find_class(tree, "FrontendConfig") if tree is not None else None
        if cls is None:
            continue
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                fields.add(node.target.id)
    if fields:
        return fields
    try:
        import dataclasses

        from ...frontend.config import FrontendConfig
        return {f.name for f in dataclasses.fields(FrontendConfig)}
    except Exception:  # pragma: no cover - installed tree always imports
        return set()


def _runtime_resolve(module, local_dotted: str):
    """Resolve ``a.b.c`` against an imported module's namespace."""
    obj = module
    for part in local_dotted.split("."):
        obj = getattr(obj, part)
    return obj


def _check_call(call: ast.Call, ctx: FileContext, module,
                ) -> Optional[str]:
    """Error description for a factory call, or None when it binds."""
    callee = dotted_name(call.func)
    if callee is None:
        return "factory callee is not a plain name"
    if module is not None:
        try:
            obj = _runtime_resolve(module, callee)
        except AttributeError:
            return (f"factory callee {callee!r} is not importable from "
                    f"{module.__name__}")
        if not callable(obj):
            return f"factory callee {callee!r} is not callable"
        if any(isinstance(a, ast.Starred) for a in call.args) or \
                any(k.arg is None for k in call.keywords):
            return None
        try:
            inspect.signature(obj).bind(
                *[None] * len(call.args),
                **{k.arg: None for k in call.keywords if k.arg})
        except TypeError as exc:
            return f"constructor signature mismatch for {callee}: {exc}"
        except ValueError:  # pragma: no cover - C callables without sigs
            return None
        return None
    # Static fallback (fixtures, trees that do not import).
    head = callee.split(".")[0]
    tree = ctx.tree
    defn: Optional[Union[ast.ClassDef, ast.FunctionDef]] = None
    for node in tree.body:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef)) and \
                node.name == head:
            defn = node
            break
    if defn is None:
        if head in ctx.imports:
            return None  # imported from elsewhere: not statically checkable
        return f"factory callee {callee!r} is not defined or imported"
    if "." in callee:
        return None  # attribute access on a local class: give up statically
    return static_bind(defn, call)


@register
class SchemeFactoryRule(Rule):
    id = "REG001"
    name = "scheme-factory"
    summary = ("a SCHEMES entry whose factory callee does not resolve to "
               "an importable callable or whose constructor call does "
               "not bind")
    scope = "project"
    facts = ("scheme_registry",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        yield from _check_registry(project, want=self.id)


@register
class SchemeOverrideRule(Rule):
    id = "REG002"
    name = "scheme-override-key"
    summary = ("a SCHEMES override key that is not a FrontendConfig "
               "field; FrontendConfig(**overrides) would raise at run "
               "time")
    scope = "project"
    facts = ("scheme_registry",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        yield from _check_registry(project, want=self.id)


@register
class SchemeShapeRule(Rule):
    id = "REG003"
    name = "scheme-entry-shape"
    summary = ("a SCHEMES entry that is not a lambda returning "
               "(prefetcher-or-None, overrides-dict); opaque entries "
               "cannot be statically verified")
    scope = "project"
    facts = ("scheme_registry",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        yield from _check_registry(project, want=self.id)


def _check_registry(project: Project, want: str) -> Iterable[Finding]:
    """Shared walk over every SCHEMES dict; yields only ``want``-rule
    findings so the three rules stay independently selectable."""
    facts = project.facts_for("scheme_registry")
    schemes_files = sorted(r for r, f in facts.items()
                           if f.get("has_schemes"))
    if not schemes_files:
        return
    config_fields = _config_fields(project)
    for rel in schemes_files:
        ctx = project.context(rel)
        tree = ctx.tree
        if tree is None:
            continue
        module = None
        mod_name = module_name_for(rel)
        if mod_name is not None:
            try:
                module = importlib.import_module(mod_name)
            except ImportError:
                module = None
        for key, value in _schemes_entries(tree):
            name = key.value if isinstance(key, ast.Constant) else "?"
            for finding in _check_entry(name, value, ctx, module,
                                        config_fields, rel):
                if finding.rule == want:
                    yield finding


def _schemes_entries(tree: ast.Module
                     ) -> List[Tuple[ast.AST, ast.AST]]:
    for node in tree.body:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SCHEMES" and \
                        isinstance(node.value, ast.Dict):
                    return list(zip(node.value.keys, node.value.values))
    return []


def _check_entry(name: str, value: ast.AST, ctx: FileContext, module,
                 config_fields: Set[str], rel: str) -> Iterable[Finding]:
    line, col = value.lineno, value.col_offset + 1
    if not isinstance(value, ast.Lambda) or \
            not isinstance(value.body, ast.Tuple) or \
            len(value.body.elts) != 2:
        yield Finding(
            "REG003", rel, line, col,
            f"scheme {name!r}: entry must be a lambda returning "
            f"(prefetcher-or-None, overrides-dict)")
        return
    factory, overrides = value.body.elts

    if isinstance(factory, ast.Call):
        error = _check_call(factory, ctx, module)
        if error is not None:
            yield Finding("REG001", rel, factory.lineno,
                          factory.col_offset + 1,
                          f"scheme {name!r}: {error}")
    elif not (isinstance(factory, ast.Constant) and factory.value is None):
        yield Finding(
            "REG003", rel, factory.lineno, factory.col_offset + 1,
            f"scheme {name!r}: first element must be None or a "
            f"constructor call")

    if not isinstance(overrides, ast.Dict):
        yield Finding(
            "REG003", rel, overrides.lineno, overrides.col_offset + 1,
            f"scheme {name!r}: second element must be a dict literal of "
            f"FrontendConfig overrides")
        return
    for key in overrides.keys:
        if key is None:
            continue  # **expansion: not statically checkable
        if not (isinstance(key, ast.Constant) and
                isinstance(key.value, str)):
            yield Finding(
                "REG003", rel, key.lineno, key.col_offset + 1,
                f"scheme {name!r}: override keys must be string literals")
            continue
        if config_fields and key.value not in config_fields:
            yield Finding(
                "REG002", rel, key.lineno, key.col_offset + 1,
                f"scheme {name!r}: override key {key.value!r} is not a "
                f"FrontendConfig field")
