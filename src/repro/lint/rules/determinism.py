"""Determinism rules (DET001-DET003).

The repository's whole verification story — behaviour digests asserted
identical across bench repetitions, traces reconciling bit-for-bit with
counters, results memoised by content fingerprint — rests on simulations
being pure functions of their inputs.  These rules reject the three ways
nondeterminism has historically crept into simulators:

* **DET001** wall-clock reads (``time.time``, ``datetime.now``, ...) in
  simulation code.  Timing *measurement* lives in ``repro.obs`` and
  ``repro.experiments`` (profiler spans, bench harness, manifests),
  which are exempt;
* **DET002** unseeded or global-state RNG anywhere: the global
  ``random`` module, ``numpy.random.<fn>`` module-level functions, and
  seedable constructors (``default_rng()``, ``Random()``) called
  without a seed;
* **DET003** iteration over sets, whose order varies with the hash
  seed and so must never reach counters, queues or event emission.
  Wrapping the set in ``sorted(...)`` canonicalises the order and is
  the sanctioned fix.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Dict, Iterable, Iterator, Set

from ..astutil import resolve_dotted
from ..framework import FileContext, Finding, Rule, register

#: Wall-clock / monotonic-clock reads banned from simulation code.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Seedable constructors: fine with a seed argument, flagged without.
SEEDABLE_CALLS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "random.Random",
})

#: Ambient-entropy reads that can never be seeded.
ENTROPY_CALLS = frozenset({
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
    "random.SystemRandom",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice",
})

#: Path segments whose files legitimately read clocks (measurement,
#: manifests, benchmark harness, the job service's timestamps and
#: polling deadlines) — exempt from DET001 only.
CLOCK_EXEMPT_SEGMENTS = frozenset({"obs", "experiments", "benchmarks",
                                   "service"})


def _calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


@register
class WallClockRule(Rule):
    id = "DET001"
    name = "wall-clock-read"
    summary = ("wall/monotonic clock read in simulation code; cycle time "
               "comes from the engine, measurement belongs in repro.obs")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        parts = set(PurePath(ctx.rel).parts)
        if parts & CLOCK_EXEMPT_SEGMENTS:
            return
        imports = ctx.imports
        for call in _calls(ctx.tree):
            resolved = resolve_dotted(call.func, imports)
            if resolved in WALL_CLOCK_CALLS:
                yield Finding(
                    self.id, ctx.rel, call.lineno, call.col_offset + 1,
                    f"call to {resolved}() is nondeterministic across "
                    f"runs; derive time from simulator cycles or move "
                    f"measurement into repro.obs")


@register
class UnseededRngRule(Rule):
    id = "DET002"
    name = "unseeded-rng"
    summary = ("global or unseeded random number generation; every RNG "
               "must be a seeded generator derived from the workload seed")

    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ctx.imports
        for call in _calls(ctx.tree):
            resolved = resolve_dotted(call.func, imports)
            if resolved is None:
                continue
            if resolved in SEEDABLE_CALLS:
                if not call.args and not call.keywords:
                    yield Finding(
                        self.id, ctx.rel, call.lineno, call.col_offset + 1,
                        f"{resolved}() without a seed draws OS entropy; "
                        f"pass a seed derived from the workload profile")
            elif resolved in ENTROPY_CALLS:
                yield Finding(
                    self.id, ctx.rel, call.lineno, call.col_offset + 1,
                    f"{resolved}() reads ambient entropy and cannot be "
                    f"seeded; use a seeded numpy Generator")
            elif resolved.startswith("numpy.random.") or \
                    resolved.startswith("random."):
                yield Finding(
                    self.id, ctx.rel, call.lineno, call.col_offset + 1,
                    f"{resolved}() uses hidden global RNG state; use a "
                    f"seeded numpy Generator passed in explicitly")


def _is_setish(node: ast.AST, setish_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in setish_names:
        return True
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                 ast.BitXor, ast.Sub)):
        return _is_setish(node.left, setish_names) or \
            _is_setish(node.right, setish_names)
    return False


class _SetIterVisitor(ast.NodeVisitor):
    """Track names bound to set expressions per function scope and
    collect iteration sites whose iterable is set-valued."""

    def __init__(self) -> None:
        self.sites = []               # (node, description)
        self._setish: Set[str] = set()

    def _enter_scope(self, node) -> None:
        saved = self._setish
        self._setish = set()
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._setish = saved

    def visit_FunctionDef(self, node) -> None:
        self._enter_scope(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Assign(self, node: ast.Assign) -> None:
        setish = _is_setish(node.value, self._setish)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if setish:
                    self._setish.add(target.id)
                else:
                    self._setish.discard(target.id)
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_setish(iter_node, self._setish):
            self.sites.append(iter_node)

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Iterating a set to build another set is order-insensitive:
        # the result is again unordered, so no order can leak.
        self.generic_visit(node)


@register
class SetIterationRule(Rule):
    id = "DET003"
    name = "set-iteration"
    summary = ("iteration over a set: order follows the hash seed and "
               "must never reach counters or event emission; wrap the "
               "set in sorted(...)")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        visitor = _SetIterVisitor()
        visitor.visit(ctx.tree)
        for site in visitor.sites:
            yield Finding(
                self.id, ctx.rel, site.lineno, site.col_offset + 1,
                "iteration over a set is hash-seed ordered; wrap it in "
                "sorted(...) so the order is deterministic")
