"""Exception-edge rules (EXC001-EXC002).

The concurrency pack's RES rules reason about the *normal* exit of a
function; these two rules cover the exceptional edges the dataflow
engine materialises:

* **EXC001** a handle acquired in the function is still open when an
  explicit ``raise`` escapes it — the exception edge leaks the
  resource because no enclosing ``try``/``finally`` (or handler)
  releases it.  The fix is mechanical: move the acquisition into a
  ``with`` block or wrap the raising region in ``try``/``finally``.
* **EXC002** a broad handler (bare ``except``, ``except Exception`` /
  ``BaseException``) whose body neither re-raises, nor returns a
  value, nor calls anything — the failure is swallowed with no
  telemetry, no logging and no fallback work, which is exactly how
  event streams disappear without a trace.  Narrow handlers
  (``except OSError: pass``) stay legal: ignoring a *specific*
  expected failure is a decision, ignoring everything is a bug
  magnet.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from ..dataflow import file_dataflow, iter_functions
from ..framework import FileContext, Finding, Rule, register

_BROAD_TYPES = frozenset({"Exception", "BaseException"})


@register
class RaiseLeakRule(Rule):
    id = "EXC001"
    name = "leak-on-exception-edge"
    summary = ("an open handle is live when a raise escapes the "
               "function; the exception edge has no cleanup")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        flow = file_dataflow(ctx)
        for func in iter_functions(ctx.tree):
            summary = flow.summary(func)
            cfg = summary.cfg
            for node in cfg.nodes:
                if not isinstance(node.stmt, ast.Raise):
                    continue
                if cfg.raise_exit not in node.succs:
                    continue  # caught or cleaned up by an enclosing try
                state = summary.in_state("resources", node.index) or {}
                for var in sorted(state):
                    _status, open_line, _open_col, call = state[var]
                    yield Finding(
                        self.id, ctx.rel, node.stmt.lineno,
                        node.stmt.col_offset + 1,
                        f"raise escapes {func.name}() while {var!r} "
                        f"(from {call}() at line {open_line}) is still "
                        f"open; close it in a finally or use a with "
                        f"block",
                        related=((ctx.rel, open_line, 1,
                                  f"{var!r} acquired here"),))


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types: List[ast.expr] = []
    if isinstance(handler.type, ast.Tuple):
        types = list(handler.type.elts)
    else:
        types = [handler.type]
    for node in types:
        name = node.id if isinstance(node, ast.Name) else \
            (node.attr if isinstance(node, ast.Attribute) else None)
        if name in _BROAD_TYPES:
            return True
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing observable at all.

    Calls, re-raises, returns and yields are observable; so is a
    mutation of state visible outside the handler (an attribute or
    subscript store — the "count the drop" idiom).  A plain local
    assignment is not: the binding dies with the frame.
    """
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Raise, ast.Call, ast.Return,
                                 ast.Yield, ast.YieldFrom, ast.Await)):
                return False
            if isinstance(node, (ast.Attribute, ast.Subscript)) and \
                    isinstance(node.ctx, (ast.Store, ast.Del)):
                return False
    return True


@register
class SwallowedExceptionRule(Rule):
    id = "EXC002"
    name = "swallowed-broad-exception"
    summary = ("a bare/Exception handler that neither re-raises, "
               "calls, nor returns; failures vanish with no telemetry")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and \
                    _is_broad(node) and _swallows(node):
                yield Finding(
                    self.id, ctx.rel, node.lineno, node.col_offset + 1,
                    "broad except swallows the failure with no "
                    "re-raise, call or telemetry; narrow the type or "
                    "record the drop")
