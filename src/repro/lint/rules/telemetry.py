"""Telemetry rules (TEL001-TEL004).

The telemetry bus (:class:`repro.frontend.eventlog.EventLog`) validates
event kinds at *runtime*: an unregistered kind raises under
``__debug__`` and falls into the ``"unknown"`` bucket otherwise — but
only once a simulation actually reaches the emit site.  These rules
move both directions of that contract to lint time:

* **TEL001** every string literal passed as the ``kind`` of an
  ``emit(...)`` call must be declared in the registry (``KINDS``, the
  ``UNKNOWN`` bucket, ``register_kind(...)`` literals or
  ``extra_kinds=(...)`` literals);
* **TEL002** every registered kind must have at least one static emit
  site — a kind nothing can emit is dead weight in the registry and,
  worse, suggests an event stream silently lost in a refactor.

The registry and the emit sites are both collected from the linted file
set (one extractor pass shared by the two rules), so the rules work on
fixtures as well as on the real tree; when the linted set declares no
registry at all, the installed ``repro`` registry is used for TEL001
and TEL002 is skipped.

The *metrics* registry (:mod:`repro.obs.metrics`) has the same
declare/observe contract — observing an undeclared metric raises under
``__debug__`` and declares implicitly under ``-O`` — and so gets the
same two lint-time directions:

* **TEL003** every metric name literal passed to ``inc(...)``,
  ``set_gauge(...)`` or ``observe(...)`` must be declared somewhere
  (``declare_counter``/``declare_gauge``/``declare_histogram`` literals
  in the linted set, or the installed catalogue);
* **TEL004** every metric declared in the linted set must have at least
  one static observation site — a metric nothing updates renders as an
  eternally-zero series that looks like a real measurement.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..astutil import class_constant, dotted_name, string_tuple
from ..framework import (
    Facts,
    FileContext,
    Finding,
    Project,
    Rule,
    fact_extractor,
    register,
)

#: Kinds in EventLog.emit's positional signature: (cycle, kind, addr).
_KIND_ARG_INDEX = 1


def _emit_kind_literal(call: ast.Call) -> Optional[Tuple[str, int, int]]:
    """The (kind, line, col) of an emit call with a literal kind."""
    node: Optional[ast.AST] = None
    if len(call.args) > _KIND_ARG_INDEX:
        node = call.args[_KIND_ARG_INDEX]
    else:
        for kw in call.keywords:
            if kw.arg == "kind":
                node = kw.value
                break
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node.lineno, node.col_offset + 1
    return None


@fact_extractor("telemetry")
def telemetry_facts(ctx: FileContext) -> Optional[Facts]:
    """Emit-site literals and registry declarations of one file."""
    if ctx.tree is None:
        return None
    emits: List[Tuple[str, int, int]] = []
    kinds_decl: List[Tuple[str, int, int]] = []
    registered: List[Tuple[str, int, int]] = []
    unknown: List[str] = []
    #: (line, col) just after the last KINDS element — where the
    #: autofixer registers a missing kind.
    kinds_insert: Optional[Tuple[int, int]] = None

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            tail = name.rsplit(".", 1)[-1]
            if tail == "emit":
                literal = _emit_kind_literal(node)
                if literal is not None:
                    emits.append(literal)
            elif tail == "register_kind" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, str):
                    registered.append((arg.value, arg.lineno,
                                       arg.col_offset + 1))
            for kw in node.keywords:
                if kw.arg == "extra_kinds":
                    extra = string_tuple(kw.value)
                    for kind in extra or ():
                        registered.append((kind, kw.value.lineno,
                                           kw.value.col_offset + 1))
        elif isinstance(node, ast.ClassDef):
            decl = class_constant(node, "KINDS")
            if decl is not None:
                kinds = string_tuple(decl)
                if kinds is not None:
                    kinds_decl.extend(
                        (k, decl.lineno, decl.col_offset + 1)
                        for k in kinds)
                    if isinstance(decl, (ast.Tuple, ast.List)) and \
                            decl.elts and \
                            decl.elts[-1].end_lineno is not None:
                        last = decl.elts[-1]
                        kinds_insert = (last.end_lineno,
                                        last.end_col_offset or 0)
            bucket = class_constant(node, "UNKNOWN")
            if isinstance(bucket, ast.Constant) and \
                    isinstance(bucket.value, str):
                unknown.append(bucket.value)

    if not (emits or kinds_decl or registered or unknown):
        return None
    return {"emits": emits, "kinds": kinds_decl,
            "registered": registered, "unknown": unknown,
            "kinds_insert": kinds_insert}


def _installed_registry() -> Set[str]:
    """Registry parsed from the installed eventlog module's source."""
    path = Path(__file__).resolve().parents[2] / "frontend" / "eventlog.py"
    try:
        ctx = FileContext(path, path.name)
        facts = telemetry_facts(ctx) or {}
    except (OSError, SyntaxError):
        return set()
    return ({k for k, _, _ in facts.get("kinds", ())}
            | {k for k, _, _ in facts.get("registered", ())}
            | set(facts.get("unknown", ())))


def _registry_of(project: Project) -> Tuple[Set[str], bool]:
    """(registered kinds, declared-in-linted-set?) for the project."""
    kinds: Set[str] = set()
    declared = False
    for facts in project.facts_for("telemetry").values():
        if facts.get("kinds"):
            declared = True
        kinds.update(k for k, _, _ in facts.get("kinds", ()))
        kinds.update(k for k, _, _ in facts.get("registered", ()))
        kinds.update(facts.get("unknown", ()))
    if declared:
        return kinds, True
    # No ``KINDS`` declaration in the linted set (e.g. linting tests or
    # a single module): whatever register_kind/extra_kinds literals it
    # contains extend the installed registry instead of replacing it.
    return kinds | _installed_registry(), False


@register
class UnregisteredKindRule(Rule):
    id = "TEL001"
    name = "unregistered-event-kind"
    summary = ("emit(...) with a kind literal not declared in the "
               "telemetry registry; it would raise under __debug__ and "
               "fork into the 'unknown' bucket otherwise")
    scope = "project"
    facts = ("telemetry",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry, declared_in_set = _registry_of(project)
        if not registry:
            return
        # The safe autofix registers the kind by appending it to the
        # KINDS tuple — only when the linted set contains exactly one
        # declaration, so there is no ambiguity about where it belongs.
        inserts = [
            (rel, facts["kinds_insert"])
            for rel, facts in sorted(
                project.facts_for("telemetry").items())
            if facts.get("kinds_insert") is not None]
        insert_at = inserts[0] if declared_in_set and \
            len(inserts) == 1 else None
        fixed_kinds: Set[str] = set()
        for rel in sorted(project.facts_for("telemetry")):
            facts = project.facts_for("telemetry")[rel]
            for kind, line, col in facts.get("emits", ()):
                if kind not in registry:
                    fix = ()
                    if insert_at is not None and kind not in fixed_kinds:
                        fixed_kinds.add(kind)
                        dest, (ins_line, ins_col) = insert_at
                        fix = ((dest, ins_line, ins_col,
                                ins_line, ins_col, f", {kind!r}"),)
                    yield Finding(
                        self.id, rel, line, col,
                        f"event kind {kind!r} is not in the telemetry "
                        f"registry; declare it in EventLog.KINDS, "
                        f"register_kind(...) or extra_kinds=",
                        fix=fix)


@register
class DeadKindRule(Rule):
    id = "TEL002"
    name = "dead-event-kind"
    summary = ("a registered telemetry kind with no static emit site; "
               "dead registry entries hide lost event streams")
    scope = "project"
    facts = ("telemetry",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        registry_facts = project.facts_for("telemetry")
        emitted: Set[str] = set()
        unknown: Set[str] = set()
        declarations: Dict[str, Tuple[str, int, int]] = {}
        declared = False
        for rel in sorted(registry_facts):
            facts = registry_facts[rel]
            emitted.update(k for k, _, _ in facts.get("emits", ()))
            unknown.update(facts.get("unknown", ()))
            if facts.get("kinds"):
                declared = True
            for kind, line, col in list(facts.get("kinds", ())) + \
                    list(facts.get("registered", ())):
                declarations.setdefault(kind, (rel, line, col))
        if not declared:
            return  # no registry in the linted set: nothing to check
        for kind in sorted(declarations):
            if kind in unknown:
                continue  # the fallback bucket is emitted only at runtime
            if kind not in emitted:
                rel, line, col = declarations[kind]
                yield Finding(
                    self.id, rel, line, col,
                    f"registered event kind {kind!r} has no static emit "
                    f"site; remove it from the registry or restore the "
                    f"emitter")


# -- metrics registry (TEL003-TEL004) ---------------------------------------

#: Call tails that declare a metric / observe one, respectively.
_METRIC_DECLARE_TAILS = frozenset(
    {"declare_counter", "declare_gauge", "declare_histogram"})
_METRIC_OBSERVE_TAILS = frozenset({"inc", "set_gauge", "observe"})


def _metric_name_literal(call: ast.Call) -> Optional[Tuple[str, int, int]]:
    """The (name, line, col) of a metric call with a literal name.

    Both the declare and the observe APIs take the metric name first
    (or as ``name=``); calls passing a variable are skipped — the
    runtime check still covers them, lint only pins the literal sites.
    """
    node: Optional[ast.AST] = None
    if call.args:
        node = call.args[0]
    else:
        for kw in call.keywords:
            if kw.arg == "name":
                node = kw.value
                break
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, node.lineno, node.col_offset + 1
    return None


@fact_extractor("metrics")
def metrics_facts(ctx: FileContext) -> Optional[Facts]:
    """Metric declaration and observation literals of one file."""
    if ctx.tree is None:
        return None
    declared: List[Tuple[str, int, int]] = []
    observed: List[Tuple[str, int, int]] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        tail = name.rsplit(".", 1)[-1]
        if tail in _METRIC_DECLARE_TAILS:
            literal = _metric_name_literal(node)
            if literal is not None:
                declared.append(literal)
        elif tail in _METRIC_OBSERVE_TAILS:
            literal = _metric_name_literal(node)
            if literal is not None:
                observed.append(literal)
    if not (declared or observed):
        return None
    return {"declared": declared, "observed": observed}


def _installed_metric_names() -> Set[str]:
    """Catalogue parsed from the installed metrics module's source."""
    path = Path(__file__).resolve().parents[2] / "obs" / "metrics.py"
    try:
        ctx = FileContext(path, path.name)
        facts = metrics_facts(ctx) or {}
    except (OSError, SyntaxError):
        return set()
    return {name for name, _, _ in facts.get("declared", ())}


@register
class UndeclaredMetricRule(Rule):
    id = "TEL003"
    name = "undeclared-metric"
    summary = ("inc/set_gauge/observe with a metric name never declared; "
               "it would raise under __debug__ and declare an un-helped "
               "metric implicitly under -O")

    scope = "project"
    facts = ("metrics",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        # Unlike the event-kind registry (a closed class declaration),
        # the metric catalogue is open — any module may declare — so
        # linted-set declarations *extend* the installed catalogue
        # rather than replacing it.
        declared: Set[str] = _installed_metric_names()
        metric_facts = project.facts_for("metrics")
        for facts in metric_facts.values():
            declared.update(n for n, _, _ in facts.get("declared", ()))
        for rel in sorted(metric_facts):
            for name, line, col in metric_facts[rel].get("observed", ()):
                if name not in declared:
                    yield Finding(
                        self.id, rel, line, col,
                        f"metric {name!r} is observed but never declared; "
                        f"declare_counter/declare_gauge/declare_histogram "
                        f"it next to the catalogue")


@register
class DeadMetricRule(Rule):
    id = "TEL004"
    name = "dead-metric"
    summary = ("a declared metric with no static observation site; it "
               "renders as an eternally-zero series that looks like a "
               "real measurement")

    scope = "project"
    facts = ("metrics",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        metric_facts = project.facts_for("metrics")
        observed: Set[str] = set()
        declarations: Dict[str, Tuple[str, int, int]] = {}
        for rel in sorted(metric_facts):
            facts = metric_facts[rel]
            observed.update(n for n, _, _ in facts.get("observed", ()))
            for name, line, col in facts.get("declared", ()):
                declarations.setdefault(name, (rel, line, col))
        # Mirrors TEL002's gating: only declarations in the linted set
        # are checked, so linting a leaf module that merely *observes*
        # the installed catalogue stays quiet.
        for name in sorted(declarations):
            if name not in observed:
                rel, line, col = declarations[name]
                yield Finding(
                    self.id, rel, line, col,
                    f"metric {name!r} is declared but never observed; "
                    f"remove the declaration or restore the "
                    f"inc/set_gauge/observe site")
