"""Concurrency and resource-safety rules (ASY/LCK/RES packs).

PR 6 turned the reproduction into a long-running concurrent system —
an asyncio event loop (``repro serve``) cooperating with ``to_thread``
worker threads over a lock-protected sharded store — and every bug it
fixed by hand belongs to a statically detectable class.  These packs
fence those classes at lint time:

* **ASY001** blocking call inside an ``async def``, either directly or
  transitively reachable through the call graph, without an
  ``asyncio.to_thread`` offload.  Interprocedural: the per-file pass
  extracts call edges as picklable facts, the project pass merges them
  into a call graph and searches for a sync path from every call site
  in a coroutine down to a known blocking leaf (``open``,
  ``time.sleep``, ``subprocess.run``, ...).  The finding carries the
  evidence chain as related locations.
* **ASY002** coroutine called but never awaited or scheduled — the
  body silently never runs.
* **ASY003** ``create_task``/``ensure_future`` result dropped: the
  event loop keeps only a weak reference, so the task can be
  garbage-collected mid-flight.
* **ASY004** ``await`` while a *synchronously* acquired lock is held
  (``with self._lock: ... await ...``): the thread lock is pinned
  across the suspension and blocks every other coroutine that needs
  it.  ``async with`` locks are exempt — that is what they are for.

* **LCK001** inferred lock discipline: attributes a class accesses
  while a ``self.*`` lock is held form its guarded set; any access to
  a guarded attribute outside a lock region is exactly the unlocked
  store-counter race PR 6 fixed by hand.  Held-lock state comes from
  the dataflow engine's :class:`~repro.lint.dataflow.HeldLocks`
  lattice, so explicit ``acquire()``/``release()`` pairs count and a
  lock acquired on only one branch does not.
* **LCK002** inconsistent nested lock acquisition order across the
  project (``A then B`` in one place, ``B then A`` in another) — the
  textbook deadlock shape.

* **RES001** acquired file/socket handle that reaches the end of the
  function still open on some path without escaping it (returned,
  stored, passed on) — flow-sensitive via the dataflow engine's
  :class:`~repro.lint.dataflow.ResourceFlow` lattice, so a handle
  closed on one branch but leaked on the other is caught.
* **RES002** raw fd from ``os.open``/``tempfile.mkstemp`` not handed
  to ``os.close``/``os.fdopen`` immediately or under ``try``: any
  exception in between leaks the descriptor.

The facts model deliberately resolves calls conservatively: a call
edge is followed only when its target resolves unambiguously (same
scope chain, import origin, ``self.`` method, or an annotated
attribute/constructor type).  Unresolved calls are dropped rather than
guessed, so the packs stay quiet instead of crying wolf.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    cast,
)

from ..astutil import dotted_name, resolve_dotted
from ..dataflow import STMT, file_dataflow, iter_functions
from ..framework import (
    Facts,
    FileContext,
    Finding,
    Project,
    Rule,
    fact_extractor,
    register,
)

#: Calls that block the calling thread (and with it the event loop).
#: ``os.open``/``os.write`` are deliberately absent: the JSONL event
#: tap appends one small record to an O_APPEND fd, which the service
#: accepts on the loop by design — flagging it would bury the real
#: multi-megabyte reads these rules exist to catch.
BLOCKING_CALLS = frozenset({
    "open", "io.open",
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname",
    "urllib.request.urlopen",
    "select.select",
    "os.system", "os.popen", "os.waitpid",
    "shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.copytree",
    "shutil.move", "shutil.rmtree",
    "requests.get", "requests.post", "requests.put", "requests.delete",
    "requests.head", "requests.request",
})

#: Wrappers that hand a coroutine to the loop: calling one *is*
#: scheduling, and the wrapper call itself never blocks.
SCHEDULING_CALLS = frozenset({
    "asyncio.create_task", "asyncio.ensure_future", "asyncio.gather",
    "asyncio.wait", "asyncio.wait_for", "asyncio.shield", "asyncio.run",
    "asyncio.run_coroutine_threadsafe", "asyncio.as_completed",
    "asyncio.Task", "asyncio.timeout",
})
SCHEDULING_ATTRS = frozenset({
    "create_task", "ensure_future", "run_until_complete",
    "run_coroutine_threadsafe", "add_done_callback", "gather",
})

#: Wrappers that move work *off* the loop thread.
OFFLOAD_CALLS = frozenset({"asyncio.to_thread"})
OFFLOAD_ATTRS = frozenset({"to_thread", "run_in_executor"})

#: The two task spawners whose dropped result is a GC hazard (ASY003).
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Acquisitions RES001 tracks: each returns a handle that must be
#: closed (``os.open``/``mkstemp`` return raw fds and belong to RES002).
RESOURCE_CALLS = frozenset({
    "open", "io.open", "gzip.open", "bz2.open", "lzma.open",
    "socket.socket", "socket.create_connection",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile",
})

#: Methods allowed to touch guarded attributes without the lock: the
#: object is not shared yet (or no longer shared) while they run.
_LCK_EXEMPT_METHODS = frozenset({
    "__init__", "__post_init__", "__new__", "__del__"})


def module_of(rel: str) -> str:
    """Dotted module name of a repo-relative path (``src/`` stripped)."""
    parts = list(PurePath(rel).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if parts and parts[0] == "src":
        parts.pop(0)
    return ".".join(parts) or "module"


def _type_of_annotation(ann: Optional[ast.AST]) -> Optional[str]:
    """The nominal class of an annotation: ``Optional[JobQueue]`` ->
    ``JobQueue``, ``"asyncio.Queue[str]"`` -> ``asyncio.Queue``."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(ann, ast.Subscript):
        base = dotted_name(ann.value)
        if base in ("Optional", "typing.Optional", "Final",
                    "typing.Final"):
            return _type_of_annotation(ann.slice)
        return base
    return dotted_name(ann)


def _is_lockish(name: str) -> bool:
    low = name.lower()
    return "lock" in low or "mutex" in low


class _Model:
    """Everything the concurrency rules need from one file."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: qname -> {"line", "col", "async", "calls": [call record]}
        self.functions: Dict[str, Dict[str, Any]] = {}
        #: (outer lock, inner lock, line, col) nested-acquisition pairs.
        self.lock_pairs: List[Tuple[str, str, int, int]] = []
        #: {"name", "accesses": [(attr, line, col, lock-or-"", method)]}
        #: (lock state refined by _retrofit_lock_state after the visit)
        self.classes: List[Dict[str, Any]] = []
        self.asy3: List[Tuple[int, int, str]] = []
        self.asy4: List[Tuple[int, int, str]] = []
        #: (line, col, message, fix edits) — the fix is () when no
        #: safe span rewrite exists for the leak.
        self.res1: List[Tuple[int, int, str, Tuple[Any, ...]]] = []
        self.res2: List[Tuple[int, int, str]] = []


class _FileVisitor(ast.NodeVisitor):
    """One pass over a module collecting the :class:`_Model`."""

    def __init__(self, model: _Model, imports: Dict[str, str],
                 parents: Dict[ast.AST, ast.AST]) -> None:
        self.model = model
        self.imports = imports
        self.parents = parents
        self.scope_names: List[str] = []
        self.scope_kinds: List[str] = []       # "class" | "func"
        self.class_stack: List[Dict[str, Any]] = []
        self.method_stack: List[str] = []
        self.func_stack: List[Dict[str, Any]] = []
        #: (display name, acquired-via-self?, sync ``with``?) held locks.
        self.lock_stack: List[Tuple[str, bool, bool]] = []
        self.var_types: List[Dict[str, str]] = []

    # -- scopes --------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info: Dict[str, Any] = {
            "name": node.name, "accesses": [], "attr_types": {}}
        for sub in ast.walk(node):
            if isinstance(sub, ast.AnnAssign):
                target = sub.target
                tname = _type_of_annotation(sub.annotation)
                if tname is None:
                    continue
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self":
                    info["attr_types"].setdefault(target.attr, tname)
                elif isinstance(target, ast.Name):
                    info["attr_types"].setdefault(target.id, tname)
        self.class_stack.append(info)
        self.scope_names.append(node.name)
        self.scope_kinds.append("class")
        saved_locks, self.lock_stack = self.lock_stack, []
        self.generic_visit(node)
        self.lock_stack = saved_locks
        self.scope_kinds.pop()
        self.scope_names.pop()
        self.class_stack.pop()
        self.model.classes.append(info)

    def _visit_func(self, node, is_async: bool) -> None:
        qname = ".".join(self.scope_names + [node.name])
        record: Dict[str, Any] = {
            "line": node.lineno, "col": node.col_offset + 1,
            "async": is_async, "calls": []}
        self.model.functions[qname] = record
        is_method = bool(self.scope_kinds) and self.scope_kinds[-1] == "class"
        if is_method:
            self.method_stack.append(node.name)
            ctor_types = self.class_stack[-1]["attr_types"]
            if node.name == "__init__":
                # ``self.x = SomeClass(...)`` pins x's type as well.
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Assign) and \
                            len(sub.targets) == 1 and \
                            isinstance(sub.targets[0], ast.Attribute) and \
                            isinstance(sub.targets[0].value, ast.Name) and \
                            sub.targets[0].value.id == "self" and \
                            isinstance(sub.value, ast.Call):
                        tname = dotted_name(sub.value.func)
                        if tname and \
                                tname.rpartition(".")[2][:1].isupper():
                            ctor_types.setdefault(
                                sub.targets[0].attr, tname)
        self.func_stack.append(record)
        self.scope_names.append(node.name)
        self.scope_kinds.append("func")
        self.var_types.append({})
        saved_locks, self.lock_stack = self.lock_stack, []
        self.generic_visit(node)
        self.lock_stack = saved_locks
        self.var_types.pop()
        self.scope_kinds.pop()
        self.scope_names.pop()
        self.func_stack.pop()
        if is_method:
            self.method_stack.pop()
        _check_fd_lifetimes(node, self.imports, self.model)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node, is_async=True)

    # -- locks ---------------------------------------------------------

    def _lock_of(self, expr: ast.AST) -> Optional[Tuple[str, bool]]:
        node = expr.func if isinstance(expr, ast.Call) else expr
        name = dotted_name(node)
        if name is None:
            return None
        tail = name.rsplit(".", 1)[-1]
        if not _is_lockish(tail) and \
                resolve_dotted(node, self.imports) not in (
                    "threading.Lock", "threading.RLock"):
            return None
        selfish = name.startswith("self.")
        if selfish and self.class_stack:
            cls = self.class_stack[-1]["name"]
            return f"{cls}{name[4:]}", True
        return name, selfish

    def _visit_with(self, node, is_async: bool) -> None:
        acquired: List[Tuple[str, bool, bool]] = []
        for item in node.items:
            lock = self._lock_of(item.context_expr)
            if lock is None:
                continue
            name, selfish = lock
            for held, _, held_sync in self.lock_stack:
                if held != name:
                    self.model.lock_pairs.append(
                        (held, name, item.context_expr.lineno,
                         item.context_expr.col_offset + 1))
            acquired.append((name, selfish, not is_async))
        self.lock_stack.extend(acquired)
        self.generic_visit(node)
        if acquired:
            del self.lock_stack[-len(acquired):]

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node, is_async=True)

    def visit_Await(self, node: ast.Await) -> None:
        held = [name for name, _, sync in self.lock_stack if sync]
        if held and self.func_stack and self.func_stack[-1]["async"]:
            self.model.asy4.append(
                (node.lineno, node.col_offset + 1, held[-1]))
        self.generic_visit(node)

    # -- attribute discipline (LCK001) ---------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self" \
                and self.class_stack and not _is_lockish(node.attr):
            parent = self.parents.get(node)
            is_invocation = isinstance(parent, ast.Call) and \
                parent.func is node
            if not is_invocation:
                lock = ""
                for name, selfish, _ in self.lock_stack:
                    if selfish:
                        lock = name
                        break
                method = self.method_stack[-1] if self.method_stack else ""
                # The AST node rides along so _retrofit_lock_state can
                # map the access onto its CFG point; it is stripped back
                # to the picklable 5-tuple before the model is cached.
                self.class_stack[-1]["accesses"].append(
                    (node.attr, node.lineno, node.col_offset + 1,
                     lock, method, node))
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def _class_path(self) -> List[str]:
        for i in range(len(self.scope_kinds) - 1, -1, -1):
            if self.scope_kinds[i] == "class":
                return self.scope_names[:i + 1]
        return []

    def _type_candidates(self, tname: Optional[str],
                         meth: str) -> List[Tuple[str, bool]]:
        if not tname:
            return []
        head, _, rest = tname.partition(".")
        origin = self.imports.get(head)
        if origin is not None:
            base = f"{origin}.{rest}" if rest else origin
            return [(f"{base}.{meth}", True)]
        return [(f"{self.model.module}.{tname}.{meth}", False),
                (f"{tname}.{meth}", True)]

    def _var_type(self, name: str) -> Optional[str]:
        for scope in reversed(self.var_types):
            if name in scope:
                return scope[name]
        return None

    def _candidates(self, func: ast.AST) -> List[Tuple[str, bool]]:
        """(qname candidate, suffix-match allowed?) in resolution order."""
        module = self.model.module
        if isinstance(func, ast.Name):
            if func.id in self.imports:
                return [(self.imports[func.id], True)]
            return [
                (".".join([module] + self.scope_names[:i] + [func.id]),
                 False)
                for i in range(len(self.scope_names), -1, -1)]
        if isinstance(func, ast.Attribute):
            base, meth = func.value, func.attr
            if isinstance(base, ast.Name) and base.id == "self" and \
                    self.class_stack:
                path = self._class_path()
                return [(".".join([module] + path + [meth]), False)]
            if isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name) and \
                    base.value.id == "self" and self.class_stack:
                attr_types = self.class_stack[-1]["attr_types"]
                return self._type_candidates(attr_types.get(base.attr),
                                             meth)
            if isinstance(base, ast.Name):
                tname = self._var_type(base.id)
                if tname:
                    return self._type_candidates(tname, meth)
            resolved = resolve_dotted(func, self.imports)
            return [(resolved, True)] if resolved else []
        return []

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.var_types and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name) and \
                isinstance(node.value, ast.Call):
            tname = dotted_name(node.value.func)
            if tname is not None:
                self.var_types[-1][node.targets[0].id] = tname
        self.generic_visit(node)

    def _wrapper_kind(self, call: ast.Call) -> Tuple[bool, bool]:
        """(is scheduling wrapper, is offload wrapper) for ``call``."""
        func = call.func
        tail = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None)
        resolved = resolve_dotted(func, self.imports)
        sched = resolved in SCHEDULING_CALLS or tail in SCHEDULING_ATTRS
        offload = resolved in OFFLOAD_CALLS or tail in OFFLOAD_ATTRS
        return sched, offload

    def visit_Call(self, node: ast.Call) -> None:
        if self.func_stack:
            self._record_call(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        resolved = resolve_dotted(node.func, self.imports)
        display = dotted_name(node.func) or (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else "<call>")
        sched_wrap, offload = self._wrapper_kind(node)

        parent = self.parents.get(node)
        awaited = isinstance(parent, ast.Await)
        stmt = self.parents.get(parent) if awaited else parent
        discarded = isinstance(stmt, ast.Expr)
        scheduled = False
        if isinstance(parent, ast.Call) and parent.func is not node:
            in_args = node in parent.args or \
                any(kw.value is node for kw in parent.keywords)
            if in_args:
                p_sched, p_offload = self._wrapper_kind(parent)
                scheduled = p_sched or p_offload

        tail = node.func.attr if isinstance(node.func, ast.Attribute) \
            else (node.func.id if isinstance(node.func, ast.Name) else "")
        if sched_wrap and tail in _TASK_SPAWNERS and discarded:
            self.model.asy3.append(
                (node.lineno, node.col_offset + 1, display))

        self.func_stack[-1]["calls"].append({
            "cands": self._candidates(node.func),
            "dotted": resolved,
            "name": display,
            "line": node.lineno,
            "col": node.col_offset + 1,
            "awaited": awaited,
            "discarded": discarded,
            "scheduled": scheduled,
            "wrap": sched_wrap,
            "offload": offload,
        })


# -- resource safety (RES001/RES002), per function ----------------------

def _local_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    """Nodes of ``fn`` excluding nested function/class/lambda bodies."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _consumes_fd(stmt: ast.AST, name: str,
                 imports: Dict[str, str]) -> bool:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and \
                resolve_dotted(node.func, imports) in ("os.close",
                                                       "os.fdopen"):
            if any(isinstance(a, ast.Name) and a.id == name
                   for a in node.args):
                return True
    return False


def _mentions(stmt: ast.AST, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name
               for n in ast.walk(stmt))


def _fd_acquisition(stmt: ast.AST,
                    imports: Dict[str, str]) -> Optional[str]:
    if not (isinstance(stmt, ast.Assign) and
            isinstance(stmt.value, ast.Call)):
        return None
    resolved = resolve_dotted(stmt.value.func, imports)
    if resolved == "os.open" and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    if resolved == "tempfile.mkstemp" and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Tuple) and \
            stmt.targets[0].elts and \
            isinstance(stmt.targets[0].elts[0], ast.Name):
        return stmt.targets[0].elts[0].id
    return None


def _check_fd_lifetimes(fn: ast.AST, imports: Dict[str, str],
                        model: _Model) -> None:
    #: (statement list, cleanup statements that also guard it) — an
    #: acquisition inside a try body whose finally/except closes the fd
    #: is exception-safe by construction.
    units: List[Tuple[List[ast.stmt], List[ast.stmt]]] = []
    for node in [fn] + list(_local_nodes(fn)):
        if isinstance(node, ast.Try):
            guards = list(node.finalbody) + \
                [s for h in node.handlers for s in h.body]
            units.append((node.body, guards))
            units.append((node.orelse, guards))
            units.append((node.finalbody, []))
        elif isinstance(node, ast.ExceptHandler):
            units.append((node.body, []))
        else:
            for field in ("body", "orelse"):
                stmts = getattr(node, field, None)
                if isinstance(stmts, list) and stmts and \
                        isinstance(stmts[0], ast.stmt):
                    units.append((stmts, []))
    for stmts, guards in units:
        for i, stmt in enumerate(stmts):
            name = _fd_acquisition(stmt, imports)
            if name is None:
                continue
            rest = stmts[i + 1:]
            if any(_consumes_fd(s, name, imports) for s in guards):
                continue        # closed in finally/except: safe
            if rest and _consumes_fd(rest[0], name, imports):
                # Closed (or wrapped by os.fdopen) in the very next
                # statement — if that statement is a try block, the
                # close is exception-safe by construction.
                continue
            line, col = stmt.lineno, stmt.col_offset + 1
            if any(_consumes_fd(s, name, imports) for s in rest):
                model.res2.append((line, col, (
                    f"fd {name!r} is closed only after intervening "
                    f"statements; an exception in between leaks it — "
                    f"close it in the next statement or a try/finally")))
            elif not any(_mentions(s, name)
                         for s in rest + guards):
                model.res2.append((line, col, (
                    f"fd {name!r} from os.open/mkstemp is never passed "
                    f"to os.close or os.fdopen; the descriptor leaks")))


def _blocks(fn: ast.AST) -> Iterable[List[ast.stmt]]:
    """Every statement list of ``fn``, nested defs excluded."""
    for node in [fn] + list(_local_nodes(fn)):
        for fname in ("body", "orelse", "finalbody"):
            stmts = getattr(node, fname, None)
            if isinstance(stmts, list) and stmts and \
                    isinstance(stmts[0], ast.stmt):
                yield stmts


def _spans_lines(nodes: Iterable[ast.stmt]) -> bool:
    """True when a multi-line string lives in ``nodes`` — indenting
    its continuation lines would rewrite the string's content."""
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Constant, ast.JoinedStr)) and \
                    getattr(sub, "end_lineno", None) is not None and \
                    sub.end_lineno > sub.lineno and \
                    (isinstance(sub, ast.JoinedStr) or
                     isinstance(sub.value, (str, bytes))):
                return True
    return False


def _with_wrap_fix(ctx: FileContext, func: ast.AST, var: str,
                   line: int) -> Tuple[Any, ...]:
    """Span edits turning ``var = open(...)`` into a ``with`` block.

    The rest of the enclosing statement list becomes the ``with`` body
    (indented one level), which is safe exactly when every use of the
    handle already lives there: the handle's lifetime only shrinks to
    the region that uses it.  Anything less provable — uses outside
    the block, closure capture, multi-line acquisitions or strings —
    yields no fix and the finding stands on its own.
    """
    for block in _blocks(func):
        for i, stmt in enumerate(block):
            if not (isinstance(stmt, ast.Assign) and stmt.lineno == line
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == var
                    and isinstance(stmt.value, ast.Call)):
                continue
            rest = block[i + 1:]
            if not rest or stmt.end_lineno != stmt.lineno:
                return ()
            if _spans_lines(rest):
                return ()
            allowed = {id(n) for s in rest for n in ast.walk(s)}
            allowed |= {id(n) for n in ast.walk(stmt.value)}
            for sub in ast.walk(func):  # type: ignore[arg-type]
                if isinstance(sub, ast.Name) and sub.id == var and \
                        sub is not stmt.targets[0] and \
                        id(sub) not in allowed:
                    return ()
            for s in rest:
                for sub in ast.walk(s):
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef, ast.Lambda,
                                        ast.ClassDef)) and \
                            any(isinstance(n, ast.Name) and n.id == var
                                for n in ast.walk(sub)):
                        return ()  # closure may outlive the with block
            call_src = ast.get_source_segment(ctx.source, stmt.value)
            if call_src is None:
                return ()
            edits: List[Any] = [
                (ctx.rel, stmt.lineno, stmt.col_offset,
                 stmt.end_lineno, stmt.end_col_offset or 0,
                 f"with {call_src} as {var}:")]
            lines = ctx.source.splitlines()
            last = max(s.end_lineno or s.lineno for s in rest)
            for lineno in range(rest[0].lineno, last + 1):
                if lineno <= len(lines) and lines[lineno - 1].strip():
                    edits.append((ctx.rel, lineno, 0, lineno, 0, "    "))
            return tuple(edits)
    return ()


def _dataflow_resources(ctx: FileContext, model: _Model) -> None:
    """RES001 on the flow-sensitive engine.

    A handle still in the may-be-open :class:`~..dataflow.ResourceFlow`
    state at the normal exit leaked on at least one path — the union
    join keeps a handle closed on only one branch alive, which the old
    syntactic any-close scan could not see.  Closing, ``with``
    management and ownership escapes (return/store/pass-on) all clear
    the obligation inside the transfer function; raise-path leaks are
    EXC001's job, so only the normal exit is read here.  A discarded
    acquisition (``open(...)`` as a bare expression) can never be
    closed at all and is flagged directly.
    """
    if ctx.tree is None:
        return
    flow = file_dataflow(ctx)
    for func in iter_functions(ctx.tree):
        for node in _local_nodes(func):
            if isinstance(node, ast.Expr) and \
                    isinstance(node.value, ast.Call):
                resolved = resolve_dotted(node.value.func, ctx.imports)
                if resolved in RESOURCE_CALLS:
                    call = node.value
                    fix: Tuple[Any, ...] = ()
                    if call.end_lineno is not None:
                        # Safe: same acquisition, closed immediately.
                        fix = ((ctx.rel, call.end_lineno,
                                call.end_col_offset or 0,
                                call.end_lineno, call.end_col_offset or 0,
                                ".close()"),)
                    model.res1.append((
                        call.lineno, call.col_offset + 1,
                        f"{resolved}(...) result is discarded; the "
                        f"handle is never closed", fix))
        summary = flow.summary(func)
        state = summary.in_state("resources", summary.cfg.exit) or {}
        for var in sorted(state):
            _status, line, col, call_name = state[var]
            if call_name not in RESOURCE_CALLS:
                continue
            fix = _with_wrap_fix(ctx, func, var, line)
            model.res1.append((line, col, (
                f"{call_name}(...) bound to {var!r} is not closed on "
                f"every path through {func.name}() and never escapes "
                f"it; open it in a 'with' or close it on all paths"),
                fix))


def _retrofit_lock_state(ctx: FileContext, model: _Model,
                         parents: Dict[ast.AST, ast.AST]) -> None:
    """Refine LCK001 access records with path-sensitive lock state.

    The visitor's lock stack sees ``with`` regions only and is blind
    to explicit ``acquire()``/``release()`` pairs and to branches; the
    :class:`~..dataflow.HeldLocks` lattice covers both (intersection
    join: a lock acquired on one branch only is not a guard after the
    merge).  Every access the visitor recorded as unlocked is upgraded
    when the dataflow IN state of its enclosing statement holds a
    ``self.*`` lock on all paths; the temporary AST node in each
    record is stripped so the cached model stays picklable.
    """
    stmt_nodes: Dict[int, Tuple[Any, int]] = {}
    if ctx.tree is not None:
        flow = file_dataflow(ctx)
        for func in iter_functions(ctx.tree):
            summary = flow.summary(func)
            for node in summary.cfg.nodes:
                if node.kind == STMT and node.stmt is not None:
                    stmt_nodes.setdefault(id(node.stmt),
                                          (summary, node.index))
    for cls in model.classes:
        refined = []
        for attr, line, col, lock, method, access in cls["accesses"]:
            if not lock:
                entry = None
                cur: Optional[ast.AST] = access
                while cur is not None and entry is None:
                    entry = stmt_nodes.get(id(cur))
                    cur = parents.get(cur)
                if entry is not None:
                    summary, index = entry
                    held = summary.in_state("locks", index) or frozenset()
                    for key in sorted(held):
                        if key.startswith("self.") and \
                                _is_lockish(key.rsplit(".", 1)[-1]):
                            lock = f"{cls['name']}{key[4:]}"
                            break
            refined.append((attr, line, col, lock, method))
        cls["accesses"] = refined


# -- model cache and fact extraction ------------------------------------

def _model_of(ctx: FileContext) -> _Model:
    model = getattr(ctx, "_concurrency_model", None)
    if model is None:
        model = _Model(module_of(ctx.rel))
        parents: Dict[ast.AST, ast.AST] = {}
        if ctx.tree is not None:
            for node in ast.walk(ctx.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            _FileVisitor(model, ctx.imports, parents).visit(ctx.tree)
            _dataflow_resources(ctx, model)
        _retrofit_lock_state(ctx, model, parents)
        ctx._concurrency_model = model  # type: ignore[attr-defined]
    return model


@fact_extractor("concurrency")
def concurrency_facts(ctx: FileContext) -> Optional[Facts]:
    """Call edges and lock-order pairs of one file, picklable."""
    model = _model_of(ctx)
    if not model.functions and not model.lock_pairs:
        return None
    return {"module": model.module,
            "functions": model.functions,
            "lock_pairs": model.lock_pairs}


# -- the merged call graph ----------------------------------------------

#: One interprocedural hop: (rel path, line, col, note).
_Hop = Tuple[str, int, int, str]


class _CallGraph:
    def __init__(self, facts: Dict[str, Facts]) -> None:
        self.funcs: Dict[str, Dict[str, Any]] = {}
        self.by_tail: Dict[str, List[str]] = {}
        for rel in sorted(facts):
            module = str(facts[rel]["module"])
            functions = cast(Dict[str, Dict[str, Any]],
                             facts[rel]["functions"])
            for qname in sorted(functions):
                record = dict(functions[qname])
                record["rel"] = rel
                full = f"{module}.{qname}"
                self.funcs[full] = record
                tail = full.rsplit(".", 1)[-1]
                self.by_tail.setdefault(tail, []).append(full)
        self._chains: Dict[str, Optional[Tuple[List[_Hop], str]]] = {}

    def resolve(self, cands: Sequence[Tuple[str, bool]]) -> Optional[str]:
        for cand, allow_suffix in cands:
            if cand in self.funcs:
                return cand
            if allow_suffix:
                tail = cand.rsplit(".", 1)[-1]
                matches = [full for full in self.by_tail.get(tail, ())
                           if full.endswith("." + cand)]
                if len(matches) == 1:
                    return matches[0]
        return None

    def blocking_chain(self, full: str, visiting: Set[str]
                       ) -> Optional[Tuple[List[_Hop], str]]:
        """Call path from ``full`` down to a blocking leaf, or None.

        Each hop is ``(rel, line, col, note)``; the second element of
        the result names the blocking sink.  Async callees are skipped:
        a coroutine's own blocking calls are its own ASY001 finding.
        """
        if full in self._chains:
            return self._chains[full]
        if full in visiting:
            return None
        visiting.add(full)
        record = self.funcs[full]
        tail = full.rsplit(".", 1)[-1]
        chain: Optional[Tuple[List[_Hop], str]] = None
        for call in record["calls"]:
            if call["wrap"] or call["offload"]:
                continue
            if call["dotted"] in BLOCKING_CALLS:
                chain = ([(str(record["rel"]), call["line"], call["col"],
                           f"{tail} calls blocking {call['dotted']}()")],
                         str(call["dotted"]))
                break
        if chain is None:
            for call in record["calls"]:
                if call["wrap"] or call["offload"]:
                    continue
                target = self.resolve(call["cands"])
                if target is None or target == full:
                    continue
                target_rec = self.funcs[target]
                if target_rec["async"]:
                    continue
                sub = self.blocking_chain(target, visiting)
                if sub is not None:
                    hops, sink = sub
                    target_tail = target.rsplit(".", 1)[-1]
                    chain = ([(str(record["rel"]), call["line"],
                               call["col"],
                               f"{tail} calls {target_tail}")] + hops,
                             sink)
                    break
        visiting.discard(full)
        self._chains[full] = chain
        return chain


# -- ASY: asyncio hygiene ----------------------------------------------

@register
class BlockingInCoroutineRule(Rule):
    id = "ASY001"
    name = "blocking-call-in-coroutine"
    summary = ("a call inside 'async def' blocks the event loop, "
               "directly or through the call graph; wrap the blocking "
               "leaf in asyncio.to_thread(...)")
    scope = "project"
    facts = ("concurrency",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = _CallGraph(project.facts_for("concurrency"))
        for full in sorted(graph.funcs):
            record = graph.funcs[full]
            if not record["async"]:
                continue
            tail = full.rsplit(".", 1)[-1]
            for call in record["calls"]:
                if call["wrap"] or call["offload"]:
                    continue
                if call["dotted"] in BLOCKING_CALLS:
                    yield Finding(
                        self.id, str(record["rel"]),
                        call["line"], call["col"],
                        f"blocking call {call['dotted']}() inside async "
                        f"function {tail}; it stalls the event loop — "
                        f"wrap it in asyncio.to_thread(...)")
                    continue
                target = graph.resolve(call["cands"])
                if target is None:
                    continue
                if graph.funcs[target]["async"]:
                    continue
                chain = graph.blocking_chain(target, set())
                if chain is None:
                    continue
                hops, sink = chain
                yield Finding(
                    self.id, str(record["rel"]),
                    call["line"], call["col"],
                    f"call to {call['name']}() inside async function "
                    f"{tail} reaches blocking {sink}() through the call "
                    f"graph; route the blocking leaf through "
                    f"asyncio.to_thread(...)",
                    related=tuple(hops))


@register
class UnawaitedCoroutineRule(Rule):
    id = "ASY002"
    name = "unawaited-coroutine"
    summary = ("a coroutine function is called but the coroutine is "
               "neither awaited nor scheduled; its body never runs")
    scope = "project"
    facts = ("concurrency",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = _CallGraph(project.facts_for("concurrency"))
        for full in sorted(graph.funcs):
            record = graph.funcs[full]
            for call in record["calls"]:
                if call["awaited"] or call["scheduled"] or call["wrap"] \
                        or call["offload"] or not call["discarded"]:
                    continue
                target = graph.resolve(call["cands"])
                if target is not None and graph.funcs[target]["async"]:
                    yield Finding(
                        self.id, str(record["rel"]),
                        call["line"], call["col"],
                        f"{call['name']}() is a coroutine function but "
                        f"the result is discarded without await or "
                        f"create_task; the body will never execute",
                        related=((str(graph.funcs[target]["rel"]),
                                  graph.funcs[target]["line"],
                                  graph.funcs[target]["col"],
                                  f"{target} is declared async here"),))


@register
class DroppedTaskRule(Rule):
    id = "ASY003"
    name = "dropped-task-reference"
    summary = ("create_task/ensure_future result discarded: the loop "
               "holds only a weak reference, so the task can be "
               "garbage-collected before it finishes")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for line, col, name in _model_of(ctx).asy3:
            yield Finding(
                self.id, ctx.rel, line, col,
                f"result of {name}(...) is dropped; keep a reference "
                f"(e.g. a task set) so the task cannot be "
                f"garbage-collected mid-flight")


@register
class AwaitUnderLockRule(Rule):
    id = "ASY004"
    name = "await-under-thread-lock"
    summary = ("'await' while holding a synchronously acquired lock "
               "pins the lock across the suspension and can deadlock "
               "the loop against the worker threads")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for line, col, lock in _model_of(ctx).asy4:
            yield Finding(
                self.id, ctx.rel, line, col,
                f"await while holding {lock!r}: the thread lock stays "
                f"held across the suspension; release it before "
                f"awaiting (or use asyncio.Lock with 'async with')")


# -- LCK: lock discipline ----------------------------------------------

@register
class UnguardedAttributeRule(Rule):
    id = "LCK001"
    name = "unguarded-shared-attribute"
    summary = ("attribute accessed under 'with self._lock' elsewhere in "
               "the class but touched here without the lock — the "
               "unlocked shared-counter race")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for cls in _model_of(ctx).classes:
            guarded: Dict[str, str] = {}
            for attr, _, _, lock, _ in cls["accesses"]:
                if lock:
                    guarded.setdefault(attr, lock)
            if not guarded:
                continue
            for attr, line, col, lock, method in cls["accesses"]:
                if lock or attr not in guarded:
                    continue
                if not method or method in _LCK_EXEMPT_METHODS:
                    continue
                yield Finding(
                    self.id, ctx.rel, line, col,
                    f"self.{attr} is accessed under 'with "
                    f"self.{guarded[attr].split('.', 1)[-1]}' elsewhere "
                    f"in {cls['name']} but {method}() touches it without "
                    f"the lock; concurrent updates race")


@register
class LockOrderRule(Rule):
    id = "LCK002"
    name = "inconsistent-lock-order"
    summary = ("two locks are nested in opposite orders in different "
               "places; the classic ABBA deadlock")
    scope = "project"
    facts = ("concurrency",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        edges: Dict[Tuple[str, str], Tuple[str, int, int]] = {}
        for rel in sorted(project.facts_for("concurrency")):
            facts = project.facts_for("concurrency")[rel]
            pairs = cast(List[Tuple[str, str, int, int]],
                         facts.get("lock_pairs", []))
            for outer, inner, line, col in pairs:
                edges.setdefault((outer, inner), (rel, line, col))
        reported: Set[FrozenSet[str]] = set()
        for outer, inner in sorted(edges):
            if (inner, outer) not in edges:
                continue
            pair = frozenset((outer, inner))
            if pair in reported:
                continue
            reported.add(pair)
            here = edges[(outer, inner)]
            there = edges[(inner, outer)]
            # Report at the site that sorts later; point at the other.
            if (here[0], here[1]) < (there[0], there[1]):
                here, there = there, here
                outer, inner = inner, outer
            yield Finding(
                self.id, here[0], here[1], here[2],
                f"{inner!r} is acquired while holding {outer!r}, but "
                f"elsewhere the same locks nest in the opposite order; "
                f"pick one global order to avoid an ABBA deadlock",
                related=((there[0], there[1], there[2],
                          f"opposite nesting: {outer!r} acquired while "
                          f"holding {inner!r}"),))


# -- RES: resource safety ----------------------------------------------

@register
class UnclosedResourceRule(Rule):
    id = "RES001"
    name = "unclosed-resource"
    summary = ("an acquired file/socket handle is still open on some "
               "path at function exit and never escapes; use 'with' or "
               "close it on all paths")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for line, col, message, fix in _model_of(ctx).res1:
            yield Finding(self.id, ctx.rel, line, col, message, fix=fix)


@register
class LeakedFdRule(Rule):
    id = "RES002"
    name = "fd-leaked-across-raise"
    summary = ("a raw fd from os.open/mkstemp is not closed immediately "
               "or under try; an exception in between leaks it")
    scope = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for line, col, message in _model_of(ctx).res2:
            yield Finding(self.id, ctx.rel, line, col, message)
