"""The shipped rule packs; importing this module registers them all.

================  =========  =====================================
pack              ids        invariant
================  =========  =====================================
determinism       DET001-3   no wall clock, no unseeded/global RNG,
                             no set-order reaching counters/events
telemetry         TEL001-2   emit kinds registered, no dead kinds
scheme registry   REG001-3   SCHEMES factories importable and
                             signature-correct, override keys valid
storage budget    BUD001-3   Table II geometry within the paper's
                             7.6 KB storage claim
framework         LNT001-2   no stale suppressions, files parse
================  =========  =====================================
"""

from . import budget, determinism, registry, telemetry  # noqa: F401

__all__ = ["budget", "determinism", "registry", "telemetry"]
