"""The shipped rule packs; importing this module registers them all.

================  =========  =====================================
pack              ids        invariant
================  =========  =====================================
determinism       DET001-3   no wall clock, no unseeded/global RNG,
                             no set-order reaching counters/events
telemetry         TEL001-2   emit kinds registered, no dead kinds
scheme registry   REG001-3   SCHEMES factories importable and
                             signature-correct, override keys valid
storage budget    BUD001-3   Table II geometry within the paper's
                             7.6 KB storage claim
asyncio hygiene   ASY001-4   no blocking calls on the event loop
                             (interprocedural), coroutines awaited,
                             task refs kept, no await under lock
lock discipline   LCK001-2   guarded attributes stay guarded, lock
                             nesting order globally consistent
resource safety   RES001-2   handles closed on all paths, raw fds
                             never leaked across a raise
framework         LNT001-2   no stale suppressions, files parse
================  =========  =====================================
"""

from . import (  # noqa: F401
    budget,
    concurrency,
    determinism,
    envvars,
    exceptions,
    registry,
    telemetry,
)

__all__ = ["budget", "concurrency", "determinism", "envvars",
           "exceptions", "registry", "telemetry"]
