"""Hardware storage-budget rules (BUD001-BUD003).

The paper's central claim is economic: SN4L+Dis+BTB delivers
Shotgun-class miss coverage out of **7.6 KB** of per-core state (Table
II / Section VI-D3) — versus ~6 KB of *additions* for Shotgun on top of
its huge U-BTB and >200 KB for Confluence.  That number is a structural
property of the table geometries, so it can drift silently: bump
``seqtable_entries`` in a sweep and forget to revert it, and every
"storage" column in the repo is quietly wrong while all tests pass.

This rule statically folds the geometry constants out of the source —
``ProactivePrefetcher.__init__`` defaults, ``FrontendConfig`` cache
geometry, ``BtbPrefetchBuffer.ENTRY_BITS`` — recomputes the Table II
accounting, and fails the build when:

* **BUD001** a single structure exceeds its declared per-structure byte
  budget;
* **BUD002** the SN4L+Dis+BTB total exceeds the paper's storage claim;
* **BUD003** a geometry constant cannot be statically resolved (so the
  budget cannot be proven at lint time);
* **BUD004** every ``SCHEMES`` entry — not just the proposal — gets its
  per-core metadata bytes recomputed by constant-folding the factory
  call through the prefetcher constructors' defaults, and the figure is
  bound to the declared cap in
  ``repro.analysis.storage.SCHEME_METADATA_BUDGETS``: an undeclared
  scheme, a figure over its cap, or an unfoldable geometry all fail.
  This is what lets the scheme zoo grow without per-scheme manual
  storage audits.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..astutil import (
    UNFOLDABLE,
    class_constant,
    dotted_name,
    find_class,
    find_method,
    fold_constant,
    keyword_defaults,
    module_constant,
)
from ..framework import (
    Facts,
    FileContext,
    Finding,
    Project,
    Rule,
    fact_extractor,
    register,
)

#: Paper Table II: the proposal's total storage claim ("7.6 KB").
PAPER_TOTAL_BYTES = 7786

#: Per-structure byte budgets, matching the Table II line items.
STRUCTURE_BUDGETS: Dict[str, int] = {
    "seqtable": 2048,             # 16 K x 1 bit
    "distable": 4096,             # 4 K x (4-bit tag + 4-bit offset)
    "btb_prefetch_buffer": 1024,  # 32 entries x ~2 Kb / 8
    "l1i_status": 320,            # 512 lines x (4-bit status + pf flag)
    "queues_rlu": 298,            # 3 x 16 queue slots + 8 RLU tags
}

#: Bits per queue slot (block address + depth, Table II's accounting)
#: and per RLU entry (block-address tag).
QUEUE_SLOT_BITS = 43
RLU_TAG_BITS = 40
#: L1i per-line metadata: 4-bit local prefetch status + prefetch flag.
L1I_STATUS_BITS = 5
#: Full-tag width assumed when DisTable tagging is set to None.
FULL_TAG_BITS = 40
#: Byte count standing in for an unlimited (None-sized) reference table.
UNLIMITED_BYTES = 2 ** 62


@dataclass(frozen=True)
class Constant:
    """One folded geometry constant and where it came from."""

    name: str
    value: object            # int/float/None, or UNFOLDABLE
    rel: str
    line: int
    col: int

    @property
    def resolved(self) -> bool:
        return self.value is not UNFOLDABLE


@dataclass(frozen=True)
class BudgetItem:
    """One Table II line recomputed from the source constants."""

    structure: str
    bytes: int
    limit: int
    rel: str
    line: int
    col: int

    @property
    def over(self) -> bool:
        return self.bytes > self.limit


@dataclass
class BudgetReport:
    """Everything the budget rules (and the tests) need."""

    items: List[BudgetItem]
    unresolved: List[Constant]
    anchor: Optional[Tuple[str, int, int]] = None  # ProactivePrefetcher

    @property
    def total_bytes(self) -> int:
        return sum(item.bytes for item in self.items)

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024


#: Classes whose constructor defaults / bit constants BUD004 folds the
#: per-scheme metadata geometry from.  Every ``SCHEMES`` factory callee
#: must bottom out in one of these (or be a composite preset over one).
_GEOMETRY_CLASSES = frozenset({
    "NextXLinePrefetcher", "NextLineOnMissPrefetcher",
    "NextLineTaggedPrefetcher", "AdaptiveNxlPrefetcher",
    "Sn4lPrefetcher", "ProactivePrefetcher",
    "ConventionalDiscontinuityPrefetcher", "TifsPrefetcher",
    "PifPrefetcher", "RdipPrefetcher", "FdipPrefetcher",
    "BoomerangPrefetcher", "ConfluencePrefetcher", "ShotgunPrefetcher",
    "RunaheadPrefetcher", "ShotgunBtb",
})

#: Bit-width class constants worth folding out of geometry classes.
_GEOMETRY_CONSTS = ("U_ENTRY_BITS", "C_ENTRY_BITS", "RIB_ENTRY_BITS",
                    "ENTRY_BITS")

#: Picklable stand-in for :data:`UNFOLDABLE` inside extracted facts
#: (facts cross process boundaries; the sentinel's identity would not).
_UNFOLDED = "<unfoldable>"


def _encode(value: object) -> object:
    return _UNFOLDED if value is UNFOLDABLE else value


def _class_geometry(node: ast.ClassDef) -> Facts:
    """Constructor params/defaults + bit constants for one class."""
    init = find_method(node, "__init__")
    params: List[str] = []
    defaults: Dict[str, object] = {}
    if init is not None:
        args = init.args
        params = [a.arg for a in (args.posonlyargs + args.args)][1:]
        for name, dnode in keyword_defaults(init).items():
            defaults[name] = _encode(fold_constant(dnode))
    consts: Dict[str, object] = {}
    for cname in _GEOMETRY_CONSTS:
        cnode = class_constant(node, cname)
        if cnode is not None:
            consts[cname] = _encode(fold_constant(cnode))
    bases: List[str] = []
    for base in node.bases:
        dn = dotted_name(base)
        if dn is not None:
            bases.append(dn.split(".")[-1])
    return {"params": params, "defaults": defaults, "consts": consts,
            "bases": bases, "line": node.lineno, "col": node.col_offset + 1}


def _budget_table(node: ast.Dict) -> Facts:
    """Parsed ``SCHEME_METADATA_BUDGETS`` dict literal."""
    entries: Dict[str, Optional[int]] = {}
    for key, value in zip(node.keys, node.values):
        if not (isinstance(key, ast.Constant) and
                isinstance(key.value, str)):
            continue
        folded = fold_constant(value)
        entries[key.value] = folded if isinstance(folded, int) and \
            not isinstance(folded, bool) else None
    return {"entries": entries, "line": node.lineno,
            "col": node.col_offset + 1}


@fact_extractor("budget")
def budget_facts(ctx: FileContext) -> Optional[Facts]:
    """Budget-relevant declarations in this file: the Table II anchor
    classes, every geometry class's folded constructor defaults, and
    the declared per-scheme cap table."""
    if ctx.tree is None:
        return None
    wanted = {"ProactivePrefetcher", "FrontendConfig", "BtbPrefetchBuffer"}
    facts: Facts = {}
    found: List[str] = []
    geometry: Dict[str, Facts] = {}
    for node in ctx.tree.body:
        if isinstance(node, ast.ClassDef):
            if node.name in wanted:
                found.append(node.name)
            if node.name in _GEOMETRY_CLASSES:
                geometry[node.name] = _class_geometry(node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id == "SCHEME_METADATA_BUDGETS" and \
                        isinstance(node.value, ast.Dict):
                    facts["scheme_budgets"] = _budget_table(node.value)
    if found:
        facts["classes"] = found
    if geometry:
        facts["geometry"] = geometry
    return facts or None


def _constant(name: str, node: Optional[ast.AST], rel: str,
              fallback: Tuple[int, int] = (1, 1)) -> Constant:
    if node is None:
        return Constant(name, UNFOLDABLE, rel, *fallback)
    return Constant(name, fold_constant(node), rel,
                    node.lineno, node.col_offset + 1)


def _gather_constants(project: Project) -> Tuple[Dict[str, Constant],
                                                 Optional[Tuple[str, int,
                                                                int]]]:
    """Fold every geometry constant out of the linted sources."""
    constants: Dict[str, Constant] = {}
    anchor: Optional[Tuple[str, int, int]] = None
    for rel in sorted(project.facts_for("budget")):
        classes = project.facts_for("budget")[rel].get("classes", [])
        tree = project.context(rel).tree
        if tree is None:
            continue
        if "ProactivePrefetcher" in classes and \
                "proactive_anchor" not in constants:
            cls = find_class(tree, "ProactivePrefetcher")
            anchor = (rel, cls.lineno, cls.col_offset + 1)
            init = find_method(cls, "__init__")
            defaults = keyword_defaults(init) if init is not None else {}
            for name in ("seqtable_entries", "distable_entries",
                         "distable_tag_bits", "rlu_entries",
                         "queue_entries", "btb_buffer_entries"):
                constants[name] = _constant(name, defaults.get(name), rel,
                                            (cls.lineno,
                                             cls.col_offset + 1))
            constants["offset_bits"] = _constant(
                "offset_bits", module_constant(tree, "FIXED_OFFSET_BITS"),
                rel, (cls.lineno, cls.col_offset + 1))
        if "FrontendConfig" in classes and "l1i_size" not in constants:
            cls = find_class(tree, "FrontendConfig")
            for name in ("l1i_size", "block_size"):
                node = class_constant(cls, name)
                if node is None:  # dataclass fields are AnnAssign values
                    for stmt in cls.body:
                        if isinstance(stmt, ast.AnnAssign) and \
                                isinstance(stmt.target, ast.Name) and \
                                stmt.target.id == name:
                            node = stmt.value
                            break
                constants[name] = _constant(name, node, rel,
                                            (cls.lineno,
                                             cls.col_offset + 1))
        if "BtbPrefetchBuffer" in classes and \
                "btb_entry_bits" not in constants:
            cls = find_class(tree, "BtbPrefetchBuffer")
            constants["btb_entry_bits"] = _constant(
                "btb_entry_bits", class_constant(cls, "ENTRY_BITS"), rel,
                (cls.lineno, cls.col_offset + 1))
    return constants, anchor


def compute_budget(project: Project) -> Optional[BudgetReport]:
    """Recompute the Table II accounting from the linted sources.

    Returns None when the linted set does not define
    ``ProactivePrefetcher`` (nothing to budget).
    """
    constants, anchor = _gather_constants(project)
    if anchor is None:
        return None

    report = BudgetReport(items=[], unresolved=[], anchor=anchor)

    def resolved(*names: str) -> Optional[List[object]]:
        """Values of the named constants; None (recording each
        unresolved constant for BUD003) when any cannot be folded."""
        values: List[object] = []
        ok = True
        for name in names:
            const = constants.get(name)
            if const is None:
                rel, line, col = anchor
                report.unresolved.append(
                    Constant(name, UNFOLDABLE, rel, line, col))
                ok = False
            elif not const.resolved:
                report.unresolved.append(const)
                ok = False
            else:
                values.append(const.value)
        return values if ok else None

    def item(structure: str, nbytes: float, loc_of: str) -> None:
        """``math.inf`` bytes marks an unlimited reference table, which
        can never fit a hardware budget."""
        const = constants.get(loc_of)
        rel, line, col = (const.rel, const.line, const.col) \
            if const is not None and const.resolved else anchor
        report.items.append(BudgetItem(
            structure, UNLIMITED_BYTES if nbytes == math.inf
            else int(nbytes), STRUCTURE_BUDGETS[structure],
            rel, line, col))

    got = resolved("seqtable_entries")
    if got is not None:
        (n,) = got
        item("seqtable", math.inf if n is None else n * 1 // 8,
             "seqtable_entries")

    got = resolved("distable_entries", "distable_tag_bits", "offset_bits")
    if got is not None:
        n, tag, off = got
        tag_bits = FULL_TAG_BITS if tag is None else tag
        item("distable",
             math.inf if n is None else n * (tag_bits + off) // 8,
             "distable_entries")

    got = resolved("btb_buffer_entries", "btb_entry_bits")
    if got is not None:
        n, bits = got
        item("btb_prefetch_buffer", n * bits // 8, "btb_buffer_entries")

    got = resolved("l1i_size", "block_size")
    if got is not None:
        size, block = got
        item("l1i_status", size // block * L1I_STATUS_BITS // 8,
             "l1i_size")

    got = resolved("queue_entries", "rlu_entries")
    if got is not None:
        queues, rlu = got
        item("queues_rlu",
             (3 * queues * QUEUE_SLOT_BITS + rlu * RLU_TAG_BITS) // 8,
             "queue_entries")

    return report


@register
class StructureBudgetRule(Rule):
    id = "BUD001"
    name = "structure-over-budget"
    summary = ("a prefetcher structure's statically computed bytes "
               "exceed its declared per-structure budget (Table II "
               "line item)")
    scope = "project"
    facts = ("budget",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_budget(project)
        if report is None:
            return
        for it in report.items:
            if it.over:
                shown = "unlimited" if it.bytes >= UNLIMITED_BYTES \
                    else f"{it.bytes} B"
                yield Finding(
                    self.id, it.rel, it.line, it.col,
                    f"{it.structure} computes to {shown}, over its "
                    f"declared budget of {it.limit} B; shrink the "
                    f"geometry or revise docs + STRUCTURE_BUDGETS "
                    f"together")


@register
class TotalBudgetRule(Rule):
    id = "BUD002"
    name = "total-over-paper-claim"
    summary = ("the statically computed SN4L+Dis+BTB storage total "
               "exceeds the paper's 7.6 KB claim (Table II)")
    scope = "project"
    facts = ("budget",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_budget(project)
        if report is None or not report.items:
            return
        if report.total_bytes > PAPER_TOTAL_BYTES:
            rel, line, col = report.anchor
            shown = "unlimited" if report.total_bytes >= UNLIMITED_BYTES \
                else f"{report.total_bytes} B ({report.total_kb:.2f} KB)"
            yield Finding(
                self.id, rel, line, col,
                f"SN4L+Dis+BTB storage computes to {shown}, over the "
                f"paper's claim of {PAPER_TOTAL_BYTES} B (7.6 KB); the "
                f"storage argument of the paper no longer holds")


@register
class UnresolvedConstantRule(Rule):
    id = "BUD003"
    name = "unresolved-geometry-constant"
    summary = ("a table-geometry constant could not be statically "
               "folded, so the storage budget cannot be proven at lint "
               "time")
    scope = "project"
    facts = ("budget",)
    level = "warning"

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_budget(project)
        if report is None:
            return
        seen = set()
        for const in report.unresolved:
            if const.name in seen:
                continue
            seen.add(const.name)
            yield Finding(
                self.id, const.rel, const.line, const.col,
                f"geometry constant {const.name!r} is not a foldable "
                f"numeric literal; the budget rule cannot verify the "
                f"storage claim")


# ---------------------------------------------------------------------------
# BUD004: every registered scheme's metadata storage, bound to the
# declared cap table.
# ---------------------------------------------------------------------------

#: Conventional BTB baseline Shotgun's additions are counted against
#: (2 K entries x ~50 bits), mirroring ShotgunPrefetcher.storage_bytes.
CONVENTIONAL_BTB_BYTES = 2048 * 50 // 8
#: L1i prefetch-buffer tag width (L1PrefetchBuffer's accounting).
L1PB_TAG_BITS = 40

#: Composite factory name -> the ProactivePrefetcher enable flags the
#: factory pins (repro.core.proactive's dis_only/sn4l_dis/sn4l_dis_btb).
_COMPOSITE_PRESETS: Dict[str, Dict[str, bool]] = {
    "dis_only": {"enable_seq": False, "enable_dis": True,
                 "enable_btb": False},
    "sn4l_dis": {"enable_seq": True, "enable_dis": True,
                 "enable_btb": False},
    "sn4l_dis_btb": {"enable_seq": True, "enable_dis": True,
                     "enable_btb": True},
}

_MISSING = object()


class _Unfoldable(Exception):
    """A scheme figure the static models cannot fold; ``reason`` says
    exactly which constant/argument/class blocked the fold."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


def _need(args: Dict[str, object], name: str) -> object:
    value = args.get(name, _MISSING)
    if value is _MISSING or value == _UNFOLDED:
        raise _Unfoldable(f"constructor argument {name!r} has no "
                          f"statically foldable value")
    return value


def _entries_or_unlimited(args: Dict[str, object], name: str) -> int:
    """A table size; ``None`` means an unlimited reference table."""
    value = _need(args, name)
    if value is None:
        return -1
    if not isinstance(value, int) or isinstance(value, bool):
        raise _Unfoldable(f"constructor argument {name!r} is not an "
                          f"integer table size")
    return value


class _Geometry:
    """Merged geometry facts + the Table II anchor constants."""

    def __init__(self, project: Project):
        facts = project.facts_for("budget")
        self.classes: Dict[str, Facts] = {}
        for rel in sorted(facts):
            for name, spec in (facts[rel].get("geometry") or {}).items():
                self.classes.setdefault(name, spec)
        self._consts, _ = _gather_constants(project)

    def spec(self, cls: str) -> Facts:
        spec = self.classes.get(cls)
        if spec is None:
            raise _Unfoldable(f"class {cls!r} is not defined in the "
                              f"linted set")
        return spec

    def const(self, name: str) -> int:
        const = self._consts.get(name)
        if const is None or not const.resolved or \
                not isinstance(const.value, (int, float)):
            raise _Unfoldable(f"geometry constant {name!r} did not fold")
        return int(const.value)

    def class_const(self, cls: str, name: str) -> int:
        value = self.spec(cls)["consts"].get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            raise _Unfoldable(f"{cls}.{name} is not a foldable integer")
        return value

    def bind(self, cls: str, call: ast.Call) -> Dict[str, object]:
        """Constructor arguments merged over the class defaults,
        walking up single inheritance when the class has no __init__
        of its own (FdipPrefetcher -> RunaheadPrefetcher)."""
        spec = self.spec(cls)
        seen = {cls}
        while not spec["params"] and not spec["defaults"]:
            base = next((b for b in spec["bases"]
                         if b in self.classes and b not in seen), None)
            if base is None:
                break
            seen.add(base)
            spec = self.classes[base]
        args: Dict[str, object] = dict(spec["defaults"])
        params: List[str] = spec["params"]
        for i, node in enumerate(call.args):
            if isinstance(node, ast.Starred):
                raise _Unfoldable("cannot fold *args in the factory call")
            if i >= len(params):
                break  # REG001's problem, not a storage question
            args[params[i]] = self._fold(node, params[i])
        for kw in call.keywords:
            if kw.arg is None:
                raise _Unfoldable("cannot fold **kwargs in the factory "
                                  "call")
            args[kw.arg] = self._fold(kw.value, kw.arg)
        return args

    @staticmethod
    def _fold(node: ast.AST, name: str) -> object:
        value = fold_constant(node)
        if value is UNFOLDABLE:
            raise _Unfoldable(f"constructor argument {name!r} is not a "
                              f"foldable literal")
        return value


def _status_bytes(geom: _Geometry) -> int:
    """L1i local status + prefetch flag, shared by SN4L and Proactive."""
    return geom.const("l1i_size") // geom.const("block_size") * \
        L1I_STATUS_BITS // 8


def _l1pb_bytes(geom: _Geometry, entries: int) -> int:
    """L1 prefetch buffer: per-entry tag + a full cache block."""
    return entries * (L1PB_TAG_BITS // 8 + geom.const("block_size"))


def _shift_history_bytes(entries: int) -> int:
    """SHIFT-style history + 1-in-4 index (ShiftHistory's accounting)."""
    return entries * 26 // 8 + entries // 4 * 30 // 8


def _model_zero(geom: _Geometry, args: Dict[str, object]) -> int:
    return 0


def _model_register(geom: _Geometry, args: Dict[str, object]) -> int:
    return 8  # a few counters and the depth register


def _model_nextxline(geom: _Geometry, args: Dict[str, object]) -> int:
    if not _need(args, "use_buffer"):
        return 0
    return _l1pb_bytes(geom, _entries_or_unlimited(args, "buffer_entries"))


def _model_sn4l(geom: _Geometry, args: Dict[str, object]) -> int:
    if _need(args, "seqtable") is not None:
        raise _Unfoldable("a prebuilt seqtable's size cannot be folded")
    entries = _entries_or_unlimited(args, "seqtable_entries")
    if entries < 0:
        return UNLIMITED_BYTES
    return entries * 1 // 8 + _status_bytes(geom)


def _model_proactive(geom: _Geometry, args: Dict[str, object]) -> int:
    if _need(args, "seqtable") is not None or \
            _need(args, "distable") is not None:
        raise _Unfoldable("a prebuilt table's size cannot be folded")
    total = 0
    if _need(args, "enable_seq"):
        entries = _entries_or_unlimited(args, "seqtable_entries")
        if entries < 0:
            return UNLIMITED_BYTES
        total += entries * 1 // 8
    if _need(args, "enable_dis"):
        entries = _entries_or_unlimited(args, "distable_entries")
        if entries < 0:
            return UNLIMITED_BYTES
        tag = _need(args, "distable_tag_bits")
        tag_bits = FULL_TAG_BITS if tag is None else tag
        total += entries * (tag_bits + geom.const("offset_bits")) // 8
    if _need(args, "enable_btb"):
        total += _entries_or_unlimited(args, "btb_buffer_entries") * \
            geom.const("btb_entry_bits") // 8
    total += _status_bytes(geom)
    total += (3 * _entries_or_unlimited(args, "queue_entries") *
              QUEUE_SLOT_BITS +
              _entries_or_unlimited(args, "rlu_entries") *
              RLU_TAG_BITS) // 8
    return total


def _model_discontinuity(geom: _Geometry, args: Dict[str, object]) -> int:
    entries = _entries_or_unlimited(args, "n_entries")
    tag = _need(args, "tag_bits")
    tag_bits = FULL_TAG_BITS if tag is None else tag
    return entries * (tag_bits + 34) // 8  # 34-bit block-address target


def _model_shift_history(geom: _Geometry, args: Dict[str, object]) -> int:
    entries = _entries_or_unlimited(args, "history_entries")
    if entries < 0:
        return UNLIMITED_BYTES
    return _shift_history_bytes(entries)


def _model_rdip(geom: _Geometry, args: Dict[str, object]) -> int:
    signatures = _entries_or_unlimited(args, "n_signatures")
    lines = _entries_or_unlimited(args, "lines_per_entry")
    return signatures * (20 + lines * 26) // 8


def _model_ftq(geom: _Geometry, args: Dict[str, object]) -> int:
    return _entries_or_unlimited(args, "window") * 8  # ~8 B per FTQ slot


def _model_shotgun(geom: _Geometry, args: Dict[str, object]) -> int:
    bits = (_entries_or_unlimited(args, "u_entries") *
            geom.class_const("ShotgunBtb", "U_ENTRY_BITS") +
            _entries_or_unlimited(args, "c_entries") *
            geom.class_const("ShotgunBtb", "C_ENTRY_BITS") +
            _entries_or_unlimited(args, "rib_entries") *
            geom.class_const("ShotgunBtb", "RIB_ENTRY_BITS"))
    extra_btb = max(0, bits // 8 - CONVENTIONAL_BTB_BYTES)
    return extra_btb + \
        _l1pb_bytes(geom, _entries_or_unlimited(args, "l1_buffer_entries")) + \
        _entries_or_unlimited(args, "btb_buffer_entries") * \
        geom.const("btb_entry_bits") // 8


#: Factory class -> static per-scheme metadata model, mirroring each
#: class's ``storage_bytes`` accounting (attached-simulator figures,
#: i.e. including the prefetch buffers the scheme asks the frontend
#: for).
_SCHEME_MODELS = {
    "NextXLinePrefetcher": _model_nextxline,
    "NextLineOnMissPrefetcher": _model_zero,
    "NextLineTaggedPrefetcher": _model_zero,
    "AdaptiveNxlPrefetcher": _model_register,
    "Sn4lPrefetcher": _model_sn4l,
    "ProactivePrefetcher": _model_proactive,
    "ConventionalDiscontinuityPrefetcher": _model_discontinuity,
    "TifsPrefetcher": _model_shift_history,
    "PifPrefetcher": _model_shift_history,
    "RdipPrefetcher": _model_rdip,
    "FdipPrefetcher": _model_ftq,
    "BoomerangPrefetcher": _model_ftq,
    "RunaheadPrefetcher": _model_ftq,
    "ConfluencePrefetcher": _model_shift_history,
    "ShotgunPrefetcher": _model_shotgun,
}


def _scheme_bytes(geom: _Geometry, value: ast.AST) -> int:
    """Byte figure for one canonical SCHEMES entry (raises
    :class:`_Unfoldable` with the blocking reason otherwise)."""
    if not isinstance(value, ast.Lambda) or \
            not isinstance(value.body, ast.Tuple) or \
            len(value.body.elts) != 2:
        raise _Unfoldable("entry is not the canonical lambda shape "
                          "(REG003), so its storage cannot be folded")
    factory = value.body.elts[0]
    if isinstance(factory, ast.Constant) and factory.value is None:
        return 0  # config-override-only scheme: no prefetcher metadata
    if not isinstance(factory, ast.Call):
        raise _Unfoldable("first element is neither None nor a "
                          "constructor call")
    callee = dotted_name(factory.func)
    if callee is None:
        raise _Unfoldable("factory callee is not a plain name")
    tail = callee.split(".")[-1]
    preset = _COMPOSITE_PRESETS.get(tail)
    cls = "ProactivePrefetcher" if preset is not None else tail
    model = _SCHEME_MODELS.get(cls)
    if model is None:
        raise _Unfoldable(
            f"no static storage model for factory {tail!r}; add one to "
            f"_SCHEME_MODELS and a cap to SCHEME_METADATA_BUDGETS")
    if preset is not None and factory.args:
        raise _Unfoldable(f"composite factory {tail!r} takes keyword "
                          f"geometry only")
    args = geom.bind(cls, factory)
    if preset is not None:
        args.update(preset)
    return model(geom, args)


@dataclass(frozen=True)
class SchemeBudget:
    """One registered scheme's folded figure vs. its declared cap."""

    scheme: str
    bytes: Optional[int]     # None when the fold was blocked
    limit: Optional[int]     # None when the scheme has no declared cap
    problem: Optional[str]   # finding text, None when within budget
    rel: str
    line: int
    col: int


@dataclass
class SchemeBudgetReport:
    """Every registered scheme's figure, plus the declared cap table."""

    schemes: List[SchemeBudget]
    declared: Dict[str, Optional[int]]
    declared_loc: Tuple[str, int, int]

    def figure(self, scheme: str) -> Optional[int]:
        for row in self.schemes:
            if row.scheme == scheme:
                return row.bytes
        return None


def _shown_bytes(nbytes: int) -> str:
    return "unlimited" if nbytes >= UNLIMITED_BYTES else f"{nbytes} B"


def compute_scheme_budgets(project: Project
                           ) -> Optional[SchemeBudgetReport]:
    """Fold every SCHEMES entry's metadata bytes and bind each figure
    to the declared ``SCHEME_METADATA_BUDGETS`` cap.

    Returns None when the linted set lacks either a ``SCHEMES`` dict or
    the cap table — partial lint runs must not guess at caps they
    cannot see (the same gating ENV002 applies to the env contract).
    """
    facts = project.facts_for("budget")
    declared: Optional[Dict[str, Optional[int]]] = None
    declared_loc: Optional[Tuple[str, int, int]] = None
    for rel in sorted(facts):
        table = facts[rel].get("scheme_budgets")
        if table:
            declared = dict(table["entries"])
            declared_loc = (rel, table["line"], table["col"])
            break
    if declared is None or declared_loc is None:
        return None
    from .registry import _schemes_entries

    registry = project.facts_for("scheme_registry")
    schemes_files = sorted(r for r, f in registry.items()
                           if f.get("has_schemes"))
    if not schemes_files:
        return None
    geom = _Geometry(project)
    rows: List[SchemeBudget] = []
    for rel in schemes_files:
        tree = project.context(rel).tree
        if tree is None:
            continue
        for key, value in _schemes_entries(tree):
            if not (isinstance(key, ast.Constant) and
                    isinstance(key.value, str)):
                continue
            name = key.value
            line, col = key.lineno, key.col_offset + 1
            limit = declared.get(name, _MISSING)
            nbytes: Optional[int] = None
            problem: Optional[str] = None
            try:
                nbytes = _scheme_bytes(geom, value)
            except _Unfoldable as exc:
                problem = (f"cannot statically fold the metadata "
                           f"storage: {exc.reason}")
            if problem is None and nbytes is not None:
                if limit is _MISSING:
                    problem = (f"metadata computes to "
                               f"{_shown_bytes(nbytes)} but the scheme "
                               f"has no declared cap in "
                               f"SCHEME_METADATA_BUDGETS; declare one")
                elif limit is not None and nbytes > limit:
                    problem = (f"metadata computes to "
                               f"{_shown_bytes(nbytes)}, over the "
                               f"declared cap of {limit} B in "
                               f"SCHEME_METADATA_BUDGETS")
            rows.append(SchemeBudget(
                name, nbytes, None if limit is _MISSING else limit,
                problem, rel, line, col))
    return SchemeBudgetReport(rows, declared, declared_loc)


@register
class SchemeMetadataBudgetRule(Rule):
    id = "BUD004"
    name = "scheme-over-metadata-budget"
    summary = ("a registered scheme's constant-folded metadata storage "
               "is over (or missing from) its declared cap in "
               "SCHEME_METADATA_BUDGETS, or cannot be folded at all")
    scope = "project"
    facts = ("budget", "scheme_registry")

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_scheme_budgets(project)
        if report is None:
            return
        for row in report.schemes:
            if row.problem is not None:
                yield Finding(self.id, row.rel, row.line, row.col,
                              f"scheme {row.scheme!r}: {row.problem}")
        # The proposal's per-scheme fold must agree with the Table II
        # fold (BUD002's accounting) — two independent models of the
        # same hardware drifting apart means one of them is wrong.
        anchor = next((r for r in report.schemes
                       if r.scheme == "sn4l_dis_btb" and
                       r.bytes is not None), None)
        if anchor is None:
            return
        tableii = compute_budget(project)
        if tableii is not None and tableii.items and \
                not tableii.unresolved and \
                anchor.bytes != tableii.total_bytes:
            yield Finding(
                self.id, anchor.rel, anchor.line, anchor.col,
                f"scheme 'sn4l_dis_btb': per-scheme fold "
                f"({anchor.bytes} B) disagrees with the Table II fold "
                f"({tableii.total_bytes} B); the two storage "
                f"accountings drifted apart")
