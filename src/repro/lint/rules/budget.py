"""Hardware storage-budget rules (BUD001-BUD003).

The paper's central claim is economic: SN4L+Dis+BTB delivers
Shotgun-class miss coverage out of **7.6 KB** of per-core state (Table
II / Section VI-D3) — versus ~6 KB of *additions* for Shotgun on top of
its huge U-BTB and >200 KB for Confluence.  That number is a structural
property of the table geometries, so it can drift silently: bump
``seqtable_entries`` in a sweep and forget to revert it, and every
"storage" column in the repo is quietly wrong while all tests pass.

This rule statically folds the geometry constants out of the source —
``ProactivePrefetcher.__init__`` defaults, ``FrontendConfig`` cache
geometry, ``BtbPrefetchBuffer.ENTRY_BITS`` — recomputes the Table II
accounting, and fails the build when:

* **BUD001** a single structure exceeds its declared per-structure byte
  budget;
* **BUD002** the SN4L+Dis+BTB total exceeds the paper's storage claim;
* **BUD003** a geometry constant cannot be statically resolved (so the
  budget cannot be proven at lint time).
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..astutil import (
    UNFOLDABLE,
    class_constant,
    find_class,
    find_method,
    fold_constant,
    keyword_defaults,
    module_constant,
)
from ..framework import (
    Facts,
    FileContext,
    Finding,
    Project,
    Rule,
    fact_extractor,
    register,
)

#: Paper Table II: the proposal's total storage claim ("7.6 KB").
PAPER_TOTAL_BYTES = 7786

#: Per-structure byte budgets, matching the Table II line items.
STRUCTURE_BUDGETS: Dict[str, int] = {
    "seqtable": 2048,             # 16 K x 1 bit
    "distable": 4096,             # 4 K x (4-bit tag + 4-bit offset)
    "btb_prefetch_buffer": 1024,  # 32 entries x ~2 Kb / 8
    "l1i_status": 320,            # 512 lines x (4-bit status + pf flag)
    "queues_rlu": 298,            # 3 x 16 queue slots + 8 RLU tags
}

#: Bits per queue slot (block address + depth, Table II's accounting)
#: and per RLU entry (block-address tag).
QUEUE_SLOT_BITS = 43
RLU_TAG_BITS = 40
#: L1i per-line metadata: 4-bit local prefetch status + prefetch flag.
L1I_STATUS_BITS = 5
#: Full-tag width assumed when DisTable tagging is set to None.
FULL_TAG_BITS = 40
#: Byte count standing in for an unlimited (None-sized) reference table.
UNLIMITED_BYTES = 2 ** 62


@dataclass(frozen=True)
class Constant:
    """One folded geometry constant and where it came from."""

    name: str
    value: object            # int/float/None, or UNFOLDABLE
    rel: str
    line: int
    col: int

    @property
    def resolved(self) -> bool:
        return self.value is not UNFOLDABLE


@dataclass(frozen=True)
class BudgetItem:
    """One Table II line recomputed from the source constants."""

    structure: str
    bytes: int
    limit: int
    rel: str
    line: int
    col: int

    @property
    def over(self) -> bool:
        return self.bytes > self.limit


@dataclass
class BudgetReport:
    """Everything the budget rules (and the tests) need."""

    items: List[BudgetItem]
    unresolved: List[Constant]
    anchor: Optional[Tuple[str, int, int]] = None  # ProactivePrefetcher

    @property
    def total_bytes(self) -> int:
        return sum(item.bytes for item in self.items)

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024


@fact_extractor("budget")
def budget_facts(ctx: FileContext) -> Optional[Facts]:
    """Which budget-relevant classes this file defines."""
    if ctx.tree is None:
        return None
    wanted = {"ProactivePrefetcher", "FrontendConfig", "BtbPrefetchBuffer"}
    found = [node.name for node in ctx.tree.body
             if isinstance(node, ast.ClassDef) and node.name in wanted]
    return {"classes": found} if found else None


def _constant(name: str, node: Optional[ast.AST], rel: str,
              fallback: Tuple[int, int] = (1, 1)) -> Constant:
    if node is None:
        return Constant(name, UNFOLDABLE, rel, *fallback)
    return Constant(name, fold_constant(node), rel,
                    node.lineno, node.col_offset + 1)


def _gather_constants(project: Project) -> Tuple[Dict[str, Constant],
                                                 Optional[Tuple[str, int,
                                                                int]]]:
    """Fold every geometry constant out of the linted sources."""
    constants: Dict[str, Constant] = {}
    anchor: Optional[Tuple[str, int, int]] = None
    for rel in sorted(project.facts_for("budget")):
        classes = project.facts_for("budget")[rel].get("classes", [])
        tree = project.context(rel).tree
        if tree is None:
            continue
        if "ProactivePrefetcher" in classes and \
                "proactive_anchor" not in constants:
            cls = find_class(tree, "ProactivePrefetcher")
            anchor = (rel, cls.lineno, cls.col_offset + 1)
            init = find_method(cls, "__init__")
            defaults = keyword_defaults(init) if init is not None else {}
            for name in ("seqtable_entries", "distable_entries",
                         "distable_tag_bits", "rlu_entries",
                         "queue_entries", "btb_buffer_entries"):
                constants[name] = _constant(name, defaults.get(name), rel,
                                            (cls.lineno,
                                             cls.col_offset + 1))
            constants["offset_bits"] = _constant(
                "offset_bits", module_constant(tree, "FIXED_OFFSET_BITS"),
                rel, (cls.lineno, cls.col_offset + 1))
        if "FrontendConfig" in classes and "l1i_size" not in constants:
            cls = find_class(tree, "FrontendConfig")
            for name in ("l1i_size", "block_size"):
                node = class_constant(cls, name)
                if node is None:  # dataclass fields are AnnAssign values
                    for stmt in cls.body:
                        if isinstance(stmt, ast.AnnAssign) and \
                                isinstance(stmt.target, ast.Name) and \
                                stmt.target.id == name:
                            node = stmt.value
                            break
                constants[name] = _constant(name, node, rel,
                                            (cls.lineno,
                                             cls.col_offset + 1))
        if "BtbPrefetchBuffer" in classes and \
                "btb_entry_bits" not in constants:
            cls = find_class(tree, "BtbPrefetchBuffer")
            constants["btb_entry_bits"] = _constant(
                "btb_entry_bits", class_constant(cls, "ENTRY_BITS"), rel,
                (cls.lineno, cls.col_offset + 1))
    return constants, anchor


def compute_budget(project: Project) -> Optional[BudgetReport]:
    """Recompute the Table II accounting from the linted sources.

    Returns None when the linted set does not define
    ``ProactivePrefetcher`` (nothing to budget).
    """
    constants, anchor = _gather_constants(project)
    if anchor is None:
        return None

    report = BudgetReport(items=[], unresolved=[], anchor=anchor)

    def resolved(*names: str) -> Optional[List[object]]:
        """Values of the named constants; None (recording each
        unresolved constant for BUD003) when any cannot be folded."""
        values: List[object] = []
        ok = True
        for name in names:
            const = constants.get(name)
            if const is None:
                rel, line, col = anchor
                report.unresolved.append(
                    Constant(name, UNFOLDABLE, rel, line, col))
                ok = False
            elif not const.resolved:
                report.unresolved.append(const)
                ok = False
            else:
                values.append(const.value)
        return values if ok else None

    def item(structure: str, nbytes: float, loc_of: str) -> None:
        """``math.inf`` bytes marks an unlimited reference table, which
        can never fit a hardware budget."""
        const = constants.get(loc_of)
        rel, line, col = (const.rel, const.line, const.col) \
            if const is not None and const.resolved else anchor
        report.items.append(BudgetItem(
            structure, UNLIMITED_BYTES if nbytes == math.inf
            else int(nbytes), STRUCTURE_BUDGETS[structure],
            rel, line, col))

    got = resolved("seqtable_entries")
    if got is not None:
        (n,) = got
        item("seqtable", math.inf if n is None else n * 1 // 8,
             "seqtable_entries")

    got = resolved("distable_entries", "distable_tag_bits", "offset_bits")
    if got is not None:
        n, tag, off = got
        tag_bits = FULL_TAG_BITS if tag is None else tag
        item("distable",
             math.inf if n is None else n * (tag_bits + off) // 8,
             "distable_entries")

    got = resolved("btb_buffer_entries", "btb_entry_bits")
    if got is not None:
        n, bits = got
        item("btb_prefetch_buffer", n * bits // 8, "btb_buffer_entries")

    got = resolved("l1i_size", "block_size")
    if got is not None:
        size, block = got
        item("l1i_status", size // block * L1I_STATUS_BITS // 8,
             "l1i_size")

    got = resolved("queue_entries", "rlu_entries")
    if got is not None:
        queues, rlu = got
        item("queues_rlu",
             (3 * queues * QUEUE_SLOT_BITS + rlu * RLU_TAG_BITS) // 8,
             "queue_entries")

    return report


@register
class StructureBudgetRule(Rule):
    id = "BUD001"
    name = "structure-over-budget"
    summary = ("a prefetcher structure's statically computed bytes "
               "exceed its declared per-structure budget (Table II "
               "line item)")
    scope = "project"
    facts = ("budget",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_budget(project)
        if report is None:
            return
        for it in report.items:
            if it.over:
                shown = "unlimited" if it.bytes >= UNLIMITED_BYTES \
                    else f"{it.bytes} B"
                yield Finding(
                    self.id, it.rel, it.line, it.col,
                    f"{it.structure} computes to {shown}, over its "
                    f"declared budget of {it.limit} B; shrink the "
                    f"geometry or revise docs + STRUCTURE_BUDGETS "
                    f"together")


@register
class TotalBudgetRule(Rule):
    id = "BUD002"
    name = "total-over-paper-claim"
    summary = ("the statically computed SN4L+Dis+BTB storage total "
               "exceeds the paper's 7.6 KB claim (Table II)")
    scope = "project"
    facts = ("budget",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_budget(project)
        if report is None or not report.items:
            return
        if report.total_bytes > PAPER_TOTAL_BYTES:
            rel, line, col = report.anchor
            shown = "unlimited" if report.total_bytes >= UNLIMITED_BYTES \
                else f"{report.total_bytes} B ({report.total_kb:.2f} KB)"
            yield Finding(
                self.id, rel, line, col,
                f"SN4L+Dis+BTB storage computes to {shown}, over the "
                f"paper's claim of {PAPER_TOTAL_BYTES} B (7.6 KB); the "
                f"storage argument of the paper no longer holds")


@register
class UnresolvedConstantRule(Rule):
    id = "BUD003"
    name = "unresolved-geometry-constant"
    summary = ("a table-geometry constant could not be statically "
               "folded, so the storage budget cannot be proven at lint "
               "time")
    scope = "project"
    facts = ("budget",)
    level = "warning"

    def check_project(self, project: Project) -> Iterable[Finding]:
        report = compute_budget(project)
        if report is None:
            return
        seen = set()
        for const in report.unresolved:
            if const.name in seen:
                continue
            seen.add(const.name)
            yield Finding(
                self.id, const.rel, const.line, const.col,
                f"geometry constant {const.name!r} is not a foldable "
                f"numeric literal; the budget rule cannot verify the "
                f"storage claim")
