"""Environment-contract rules (ENV001-ENV003).

Every behaviour-affecting ``REPRO_*`` environment variable must be
declared in :mod:`repro.envcontract` with its type and the exact
fallback value reading sites use.  The reads themselves rarely name
the variable directly — the tree's idiom is a module-level alias
(``ENV_JOBS = "REPRO_JOBS"``) read through ``os.environ.get(ENV_JOBS,
"")`` — so the extractor resolves variable names with the dataflow
engine's constant propagation rather than by pattern matching:

* **ENV001** a read of a ``REPRO_*`` variable that is not in the
  contract table — a typo'd or undeclared knob silently falls back to
  its default forever;
* **ENV002** a contract entry no linted file reads — dead
  documentation that suggests the knob was lost in a refactor (only
  checked when the contract module itself is in the linted set);
* **ENV003** a reading site whose fallback disagrees with the declared
  default — two sites with different ideas of "unset" make the knob's
  behaviour depend on which code path consults it first.

Reads whose name expression cannot be folded to a string constant
(e.g. an attribute chain into another module, or a genuinely dynamic
name) are skipped: the contract governs the static namespace, and a
false positive on test plumbing would cost more than the coverage.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..astutil import UNFOLDABLE, resolve_dotted
from ..dataflow import (
    EXCEPT,
    STMT,
    ConstantPropagation,
    FileDataflow,
    TOP,
    file_dataflow,
    fold_literal,
    iter_functions,
)
from ..framework import (
    Facts,
    FileContext,
    Finding,
    Project,
    Rule,
    fact_extractor,
    register,
)

#: The reserved environment namespace the contract governs.
ENV_PREFIX = "REPRO_"

#: Sentinel default values in the facts stream.
_NO_DEFAULT = "<required>"
_UNFOLDED = "<unfoldable>"

_READ_METHODS = frozenset({"get", "pop"})


def _environ_read(node: ast.expr, imports: Dict[str, str]
                  ) -> Optional[Tuple[ast.expr, Optional[ast.expr], bool]]:
    """Match an environment read: (name expr, default expr, required).

    Covers ``os.environ.get/pop(name[, default])``, ``os.getenv(name
    [, default])`` and ``os.environ[name]`` subscript loads.
    """
    if isinstance(node, ast.Call):
        target = resolve_dotted(node.func, imports)
        if target in ("os.environ.get", "os.environ.pop",
                      "environ.get", "environ.pop") or \
                target in ("os.getenv", "getenv"):
            if not node.args:
                return None
            default = node.args[1] if len(node.args) > 1 else None
            return node.args[0], default, False
    if isinstance(node, ast.Subscript) and \
            isinstance(node.ctx, ast.Load):
        target = resolve_dotted(node.value, imports)
        if target in ("os.environ", "environ"):
            key = node.slice
            return key, None, True
    return None


def _fold_default(expr: Optional[ast.expr], cp: ConstantPropagation,
                  state: Dict[str, Any]) -> str:
    if expr is None:
        return _NO_DEFAULT
    value = cp.fold(expr, state)
    if value is UNFOLDABLE:
        return _UNFOLDED
    return repr(value)


def _default_span(expr: Optional[ast.expr]
                  ) -> Optional[Tuple[int, int, int, int]]:
    """Source span of a literal default, for the autofixer."""
    if isinstance(expr, ast.Constant) and expr.end_lineno is not None \
            and expr.end_col_offset is not None:
        return (expr.lineno, expr.col_offset,
                expr.end_lineno, expr.end_col_offset)
    return None


def _scan_expr(expr: ast.expr, cp: ConstantPropagation,
               state: Dict[str, Any], imports: Dict[str, str],
               reads: List[Dict[str, Any]]) -> None:
    for node in ast.walk(expr):
        if not isinstance(node, ast.expr):
            continue
        match = _environ_read(node, imports)
        if match is None:
            continue
        name_expr, default_expr, required = match
        name = cp.fold(name_expr, state)
        if not isinstance(name, str):
            continue  # dynamic or cross-module name: out of scope
        reads.append({
            "name": name,
            "line": node.lineno,
            "col": node.col_offset + 1,
            "default": (_NO_DEFAULT if required
                        else _fold_default(default_expr, cp, state)),
            "required": required,
            "default_span": _default_span(default_expr),
        })


def _stmt_exprs(stmt: ast.stmt) -> Iterable[ast.expr]:
    """Top-level expressions of one statement, nested defs excluded."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


def _module_level_reads(ctx: FileContext, flow: FileDataflow,
                        reads: List[Dict[str, Any]]) -> None:
    """Reads in module/class bodies, resolved against module constants."""
    cp = ConstantPropagation(flow.module_env)
    state = dict(flow.module_env)
    pending: List[ast.stmt] = list(ctx.tree.body if ctx.tree else ())
    while pending:
        stmt = pending.pop(0)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.ClassDef):
            pending.extend(stmt.body)
            continue
        for expr in _stmt_exprs(stmt):
            _scan_expr(expr, cp, state, flow.imports, reads)
        for nested in ast.iter_child_nodes(stmt):
            if isinstance(nested, ast.stmt):
                pending.append(nested)


@fact_extractor("env")
def env_facts(ctx: FileContext) -> Optional[Facts]:
    """Environment reads and contract declarations of one file.

    Read sites run through the dataflow engine so names and defaults
    bound via local or module-level constants resolve to their values;
    the facts ship as plain dicts and ride the parallel file pass like
    every other extractor.
    """
    if ctx.tree is None:
        return None
    flow = file_dataflow(ctx)
    reads: List[Dict[str, Any]] = []
    _module_level_reads(ctx, flow, reads)
    for func in iter_functions(ctx.tree):
        summary = flow.summary(func)
        cp = ConstantPropagation(flow.module_env)
        own = {id(s) for nested in iter_functions(func) if nested is not func
               for s in ast.walk(nested)}
        for node in summary.cfg.nodes:
            if node.kind not in (STMT, EXCEPT) or node.stmt is None:
                continue
            if id(node.stmt) in own:
                continue  # belongs to a nested function's own CFG
            state = summary.in_state("constants", node.index) or {}
            for expr in _stmt_exprs(node.stmt):
                _scan_expr(expr, cp, state, flow.imports, reads)

    declared: List[Dict[str, Any]] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and \
                resolve_dotted(node.func, ctx.imports) in \
                ("repro.envcontract.EnvVar", "EnvVar") and \
                len(node.args) >= 3:
            name_node, _type_node, default_node = node.args[:3]
            if isinstance(name_node, ast.Constant) and \
                    isinstance(name_node.value, str):
                default = fold_literal(default_node)
                declared.append({
                    "name": name_node.value,
                    "line": node.lineno,
                    "col": node.col_offset + 1,
                    "default": (repr(default)
                                if default is not UNFOLDABLE
                                else _UNFOLDED),
                })
    if not reads and not declared:
        return None
    return {"reads": reads, "declared": declared}


def _contract_of(project: Project) -> Tuple[Dict[str, Dict[str, Any]], bool]:
    """(declared vars by name, declared-in-linted-set?)."""
    declared: Dict[str, Dict[str, Any]] = {}
    in_set = False
    for rel in sorted(project.facts_for("env")):
        for entry in project.facts_for("env")[rel].get("declared", ()):
            in_set = True
            declared.setdefault(entry["name"], dict(entry, path=rel))
    if in_set:
        return declared, True
    try:
        from ... import envcontract
    except ImportError:  # pragma: no cover - installed tree always has it
        return {}, False
    for var in envcontract.CONTRACT:
        declared[var.name] = {
            "name": var.name, "line": 0, "col": 0,
            "default": repr(var.default), "path": "",
        }
    return declared, False


@register
class UndeclaredEnvVarRule(Rule):
    id = "ENV001"
    name = "undeclared-env-var"
    summary = ("a REPRO_* environment read outside the declared "
               "contract table; a typo'd knob silently falls back to "
               "its default forever")
    scope = "project"
    facts = ("env",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        contract, _ = _contract_of(project)
        for rel in sorted(project.facts_for("env")):
            for read in project.facts_for("env")[rel].get("reads", ()):
                name = read["name"]
                if name.startswith(ENV_PREFIX) and name not in contract:
                    yield Finding(
                        self.id, rel, read["line"], read["col"],
                        f"environment variable {name!r} is not declared "
                        f"in the repro.envcontract table; add an EnvVar "
                        f"entry with its type and default")


@register
class DeadEnvVarRule(Rule):
    id = "ENV002"
    name = "dead-env-var"
    summary = ("a contract entry no linted file reads; dead knob "
               "documentation hides renames")
    scope = "project"
    facts = ("env",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        contract, in_set = _contract_of(project)
        if not in_set:
            return  # contract module outside the linted set
        read_names = set()
        for rel in sorted(project.facts_for("env")):
            for read in project.facts_for("env")[rel].get("reads", ()):
                read_names.add(read["name"])
        for name in sorted(contract):
            if name not in read_names:
                entry = contract[name]
                yield Finding(
                    self.id, entry["path"], entry["line"], entry["col"],
                    f"declared environment variable {name!r} has no "
                    f"read site in the linted tree; remove the contract "
                    f"entry or restore the reader")


@register
class InconsistentEnvDefaultRule(Rule):
    id = "ENV003"
    name = "inconsistent-env-default"
    summary = ("a reading site whose fallback disagrees with the "
               "declared default; which value wins then depends on the "
               "code path")
    scope = "project"
    facts = ("env",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        contract, _ = _contract_of(project)
        for rel in sorted(project.facts_for("env")):
            for read in project.facts_for("env")[rel].get("reads", ()):
                entry = contract.get(read["name"])
                if entry is None or read["required"]:
                    continue
                declared = entry["default"]
                site = read["default"]
                if site == _UNFOLDED or declared == _UNFOLDED:
                    continue
                if site == _NO_DEFAULT:
                    site = repr(None)
                if site != declared:
                    # Safe autofix: when the site's fallback is a plain
                    # literal (the extractor recorded its span), rewrite
                    # it to the declared default verbatim.
                    fix = ()
                    span = read.get("default_span")
                    if span is not None:
                        line0, col0, line1, col1 = span
                        fix = ((rel, line0, col0, line1, col1, declared),)
                    yield Finding(
                        self.id, rel, read["line"], read["col"],
                        f"read of {read['name']!r} falls back to "
                        f"{site} but the contract declares {declared}; "
                        f"align the site with the declared default",
                        fix=fix)
