"""Domain-aware static analysis for the simulator's invariants.

``repro lint`` verifies, in seconds and before any simulation runs, the
structural properties the runtime gates (telemetry-bus strictness,
``repro bench --check`` behaviour digests) can only catch after a full
bench cycle: determinism of the simulation code, telemetry-registry
consistency, scheme-registry health, and the paper's 7.6 KB storage
claim.  See ``docs/static-analysis.md`` for the rule catalogue and the
lint-vs-digest-gate division of labour.

Programmatic use::

    from repro.lint import lint_paths

    result = lint_paths(["src/repro"])
    assert result.ok, result.findings
"""

from .framework import (  # noqa: F401
    RULES,
    FileContext,
    Finding,
    LintResult,
    LintUsageError,
    Project,
    Rule,
    Suppression,
    default_target,
    lint_paths,
    parse_suppressions,
    register,
    resolve_rules,
)
from .reporters import (  # noqa: F401
    RENDERERS,
    render_json,
    render_sarif,
    render_text,
    result_as_dict,
)
from . import rules  # noqa: F401  (registers the shipped rule packs)

__all__ = [
    "RULES",
    "RENDERERS",
    "FileContext",
    "Finding",
    "LintResult",
    "LintUsageError",
    "Project",
    "Rule",
    "Suppression",
    "default_target",
    "lint_paths",
    "parse_suppressions",
    "register",
    "resolve_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "result_as_dict",
]
