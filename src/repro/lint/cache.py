"""Incremental lint cache: per-file findings + facts in the result store.

A file's lint outcome is a pure function of (a) the file bytes, (b) the
active rule set, and (c) the lint implementation itself.  The cache key
therefore combines a content fingerprint with a **rule-pack salt** — a
hash over every source file of the lint package plus the environment
contract (``repro/envcontract.py``, whose declarations the ENV pack
checks against) — and the sorted active rule ids and fact keys.  Editing
any lint module, the contract, or the selection invalidates every
entry; editing simulator code does not (unlike simulation results,
which are salted with :func:`repro.experiments.store.code_salt` over
the whole package).

Entries live in the sharded result store under ``lint/<shard>/<fp>.json``
and hold everything the project-scope pass needs from the file: the
file-scope findings, the extracted facts, and the parsed suppressions.
Payloads are JSON all the way down — the runner normalises fresh facts
through a JSON round-trip before caching so a store-served run is
bit-identical to a cold one.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .framework import Facts, Finding, Suppression

#: Bump to orphan every cached lint entry (payload shape changes).
LINT_CACHE_VERSION = 1

_PACK_SALT: Optional[str] = None


def pack_salt() -> str:
    """Hash of the lint implementation (memoised per process).

    Covers every ``.py`` under ``repro/lint`` and the environment
    contract module.  Part of every cache key: a rule edit must never
    serve findings computed by the previous rule.
    """
    global _PACK_SALT
    if _PACK_SALT is None:
        lint_dir = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        sources = sorted(lint_dir.rglob("*.py"))
        contract = lint_dir.parent / "envcontract.py"
        if contract.is_file():
            sources.append(contract)
        for source in sources:
            digest.update(source.name.encode())
            try:
                digest.update(source.read_bytes())
            except OSError:
                digest.update(b"<unreadable>")
        digest.update(str(LINT_CACHE_VERSION).encode())
        _PACK_SALT = digest.hexdigest()[:16]
    return _PACK_SALT


def file_key(content: bytes, rel: str, rule_ids: Sequence[str],
             fact_keys: Sequence[str]) -> str:
    """Cache key of one file's lint outcome.

    ``rel`` participates because findings embed the root-relative path;
    the same bytes linted under a different root are a different entry.
    """
    digest = hashlib.sha256()
    digest.update(pack_salt().encode())
    digest.update(rel.encode())
    digest.update(",".join(sorted(rule_ids)).encode())
    digest.update(";".join(sorted(fact_keys)).encode())
    digest.update(content)
    return digest.hexdigest()[:32]


def _jsonify(value: Any) -> Any:
    """Normalise facts for the cache (tuples -> lists, sorted keys).

    Applied to *fresh* facts too, so cached and freshly computed runs
    feed project rules identical structures.
    """
    return json.loads(json.dumps(value, sort_keys=True))


def encode_entry(findings: Sequence[Finding], facts: Dict[str, Facts],
                 suppressions: Dict[int, Suppression]) -> Dict[str, Any]:
    """The JSON payload cached per file."""
    return {
        "version": LINT_CACHE_VERSION,
        "findings": [f.as_dict() for f in findings],
        "facts": _jsonify(facts),
        "suppressions": [[s.line, list(s.rules), s.justification]
                         for s in suppressions.values()],
    }


def decode_entry(payload: Dict[str, Any]
                 ) -> Optional[Tuple[List[Finding], Dict[str, Facts],
                                     Dict[int, Suppression]]]:
    """Inverse of :func:`encode_entry`; None on any shape mismatch."""
    try:
        if payload.get("version") != LINT_CACHE_VERSION:
            return None
        findings = [Finding.from_dict(d) for d in payload["findings"]]
        facts = dict(payload["facts"])
        suppressions = {
            int(line): Suppression(int(line),
                                   tuple(str(r) for r in rules), str(why))
            for line, rules, why in payload["suppressions"]}
    except (KeyError, TypeError, ValueError):
        return None
    return findings, facts, suppressions
