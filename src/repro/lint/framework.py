"""Rule registry, suppression parsing and the lint runner.

The framework separates *file-scope* rules (one file at a time: the
determinism pack) from *project-scope* rules (whole-tree invariants:
telemetry registry consistency, scheme registry, storage budgets).
Project rules consume **facts** — small picklable summaries extracted
per file by registered fact extractors — so the per-file pass can run
in worker processes (``repro lint --jobs``) while cross-file checks
stay in the parent.

Findings can be suppressed per line and per rule with::

    risky_call()   # repro: noqa[DET001] -- justification

Unused suppressions are themselves reported (``LNT001``) so stale
exemptions cannot linger after the code they excused is gone.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

Facts = Dict[str, object]


class LintUsageError(ValueError):
    """Bad lint invocation (unknown rule id, missing path)."""


#: One step of an interprocedural evidence chain: (path, line, col, note).
Related = Tuple[str, int, int, str]

#: One span replacement of a safe autofix: ``(path, line, col,
#: end_line, end_col, replacement)``.  Lines are 1-based, columns are
#: 0-based AST offsets; the span ``[start, end)`` is replaced by the
#: text.  The path is explicit because a fix may edit a different file
#: than the finding (registering a telemetry kind edits the registry,
#: not the emit site).
Edit = Tuple[str, int, int, int, int, str]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``related`` carries the evidence chain of interprocedural findings
    (e.g. the call path from an ``async def`` down to the blocking
    sink): each entry is a secondary location plus a note, rendered as
    ``relatedLocations`` in SARIF and indented ``via`` lines in text.
    ``fix`` carries the span edits of a *safe* autofix when the rule
    can compute one; ``repro lint --fix`` applies them.
    """

    rule: str
    path: str            # posix path relative to the lint root
    line: int
    col: int             # 1-based column
    message: str
    suppressed: bool = False
    justification: str = ""
    related: Tuple[Related, ...] = ()
    fix: Tuple[Edit, ...] = ()

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message,
        }
        if self.suppressed:
            d["suppressed"] = True
            if self.justification:
                d["justification"] = self.justification
        if self.related:
            d["related"] = [
                {"path": p, "line": line, "col": col, "note": note}
                for p, line, col, note in self.related]
        if self.fix:
            d["fix"] = [list(edit) for edit in self.fix]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Finding":
        related = tuple(
            (str(r["path"]), int(r["line"]), int(r["col"]), str(r["note"]))
            for r in d.get("related", ()))  # type: ignore[union-attr]
        fix = tuple(
            (str(e[0]), int(e[1]), int(e[2]), int(e[3]), int(e[4]),
             str(e[5]))
            for e in d.get("fix", ()))  # type: ignore[union-attr, index]
        return cls(rule=str(d["rule"]), path=str(d["path"]),
                   line=int(d["line"]), col=int(d["col"]),  # type: ignore[arg-type]
                   message=str(d["message"]),
                   suppressed=bool(d.get("suppressed", False)),
                   justification=str(d.get("justification", "")),
                   related=related, fix=fix)


#: Matches a comment of the form ``repro: noqa[DET001,TEL002] -- why``
#: (hash prefix included; the justification after ``--`` is optional).
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s*(?:--|—|:)\s*(?P<why>.*\S))?")


@dataclass
class Suppression:
    """A parsed per-line ``# repro: noqa[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str = ""


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Per-line suppressions of ``source`` keyed by 1-based line.

    Only real ``#`` comment tokens count — a noqa example quoted inside
    a docstring is documentation, not an exemption.  Falls back to a
    raw line scan when the file does not tokenize (the suppressions of
    a broken file hardly matter: it already reports LNT002).
    """
    out: Dict[int, Suppression] = {}

    def add(lineno: int, text: str) -> None:
        match = _NOQA_RE.search(text)
        if match is None:
            return
        rules = tuple(sorted({r.strip() for r in
                              match.group("rules").split(",") if r.strip()}))
        if rules:
            out[lineno] = Suppression(lineno, rules,
                                      match.group("why") or "")

    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "noqa" in text:
                add(lineno, text)
        return out
    for tok in tokens:
        if tok.type == tokenize.COMMENT and "noqa" in tok.string:
            add(tok.start[0], tok.string)
    return out


class FileContext:
    """One source file: path, source, lazily parsed AST, suppressions."""

    def __init__(self, path: Path, rel: str,
                 source: Optional[str] = None) -> None:
        self.path = path
        self.rel = rel
        self._source = source
        self._tree: Optional[ast.Module] = None
        self._imports: Optional[Dict[str, str]] = None
        self._suppressions: Optional[Dict[int, Suppression]] = None
        self.syntax_error: Optional[SyntaxError] = None

    @property
    def source(self) -> str:
        if self._source is None:
            self._source = self.path.read_text(encoding="utf-8")
        return self._source

    @property
    def tree(self) -> Optional[ast.Module]:
        if self._tree is None and self.syntax_error is None:
            try:
                self._tree = ast.parse(self.source, filename=str(self.path))
            except SyntaxError as exc:
                self.syntax_error = exc
        return self._tree

    @property
    def imports(self) -> Dict[str, str]:
        if self._imports is None:
            from .astutil import collect_imports
            tree = self.tree
            self._imports = collect_imports(tree) if tree is not None else {}
        return self._imports

    @property
    def suppressions(self) -> Dict[int, Suppression]:
        if self._suppressions is None:
            self._suppressions = parse_suppressions(self.source)
        return self._suppressions


class Project:
    """The linted file set plus per-rule facts for project rules."""

    def __init__(self, root: Path, files: Sequence[Tuple[Path, str]]) -> None:
        self.root = root
        self._contexts: Dict[str, FileContext] = {
            rel: FileContext(path, rel) for path, rel in files}
        #: fact key -> rel -> facts dict (only files that produced facts).
        self.facts: Dict[str, Dict[str, Facts]] = {}

    def files(self) -> List[str]:
        return sorted(self._contexts)

    def context(self, rel: str) -> FileContext:
        return self._contexts[rel]

    def facts_for(self, key: str) -> Dict[str, Facts]:
        return self.facts.get(key, {})


class Rule:
    """Base class; subclasses register with :func:`register`."""

    id: str = ""
    name: str = ""           # kebab-case slug for reporters
    summary: str = ""        # one line, shown in --list-rules and SARIF
    scope: str = "file"      # "file" or "project"
    level: str = "error"     # SARIF level: "error" | "warning" | "note"
    facts: Tuple[str, ...] = ()   # fact keys this (project) rule consumes

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


#: rule id -> singleton instance, in registration order.
RULES: Dict[str, Rule] = {}

#: fact key -> extractor(ctx) -> facts dict or None.
FACT_EXTRACTORS: Dict[str, Callable[[FileContext], Optional[Facts]]] = {}


def register(cls):
    """Class decorator: instantiate and add to the rule registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def fact_extractor(key: str):
    """Decorator registering a per-file fact extractor under ``key``."""
    def wrap(fn):
        FACT_EXTRACTORS[key] = fn
        return fn
    return wrap


@register
class UnusedSuppressionRule(Rule):
    """A ``noqa`` that suppresses nothing is stale and must go."""

    id = "LNT001"
    name = "unused-suppression"
    summary = ("a '# repro: noqa[RULE]' comment whose rules produced no "
               "finding on that line")
    scope = "project"        # applied by the runner after all rules ran
    level = "warning"


@register
class SyntaxErrorRule(Rule):
    """Unparsable files can hide anything; surfaced as a finding."""

    id = "LNT002"
    name = "syntax-error"
    summary = "the file does not parse; no rule can check it"
    scope = "file"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    root: str
    files: List[str]
    findings: List[Finding] = field(default_factory=list)    # unsuppressed
    suppressed: List[Finding] = field(default_factory=list)
    rules: Tuple[str, ...] = ()      # active rule ids
    skipped: int = 0                 # files dropped by --changed-only
    store_served: int = 0            # files served from the lint cache

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return out


def default_target() -> Path:
    """The installed ``repro`` package tree (lint's self-host target)."""
    return Path(__file__).resolve().parents[1]


#: Directory names skipped during directory discovery.  The lint test
#: corpus (``tests/lint_fixtures``) holds deliberate violations; its
#: files are linted only when named explicitly, exactly like pytest's
#: ``norecursedirs``.
EXCLUDED_DIRS = frozenset({"__pycache__", "lint_fixtures"})


def _expand(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in sorted(path.rglob("*.py"))
                         if not (EXCLUDED_DIRS & set(p.parts)))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise LintUsageError(f"not a python file or directory: {path}")
    seen: Set[Path] = set()
    unique = []
    for f in files:
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(r)
    return unique


def changed_files(root: Path) -> Optional[Set[Path]]:
    """Files differing from ``git merge-base HEAD main``, resolved.

    Includes committed, staged, unstaged and untracked changes — the
    working set a pre-commit run cares about.  Returns ``None`` when
    ``root`` is not inside a git checkout (or git is unusable), in
    which case callers lint everything.
    """
    import subprocess

    def git(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", "-C", str(root), *args],
                capture_output=True, text=True, timeout=60)
        except (OSError, subprocess.SubprocessError):
            return None
        return proc.stdout if proc.returncode == 0 else None

    top = git("rev-parse", "--show-toplevel")
    if top is None or not top.strip():
        return None
    toplevel = Path(top.strip())
    base = git("merge-base", "HEAD", "main")
    # No ``main`` (detached checkout, differently named trunk): diff
    # against HEAD so the working tree still narrows the run.
    base_rev = base.strip() if base and base.strip() else "HEAD"
    diff = git("diff", "--name-only", "-z", base_rev, "--")
    if diff is None:
        return None
    untracked = git("ls-files", "--others", "--exclude-standard", "-z") or ""
    names = [n for n in diff.split("\0") + untracked.split("\0") if n]
    return {(toplevel / name).resolve() for name in names}


def _module_keys(root: Path, path: Path) -> Set[str]:
    """Dotted names under which ``path`` can be imported.

    Registers every suffix of the root-relative module path, so
    ``src/repro/lint/cache.py`` answers to ``repro.lint.cache`` and
    ``lint.cache`` alike — the linted tree does not say which dirs are
    on ``sys.path``, and over-matching only ever lints more files.
    """
    try:
        parts = list(path.relative_to(root).parts)
    except ValueError:
        parts = list(path.parts[-3:])
    if not parts:
        return set()
    parts[-1] = parts[-1][:-len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return {".".join(parts[i:]) for i in range(len(parts)) if parts[i:]}


def _import_targets(tree: ast.Module, pkg: Sequence[str]) -> Set[str]:
    """Dotted modules a file references, relative imports resolved
    against ``pkg`` (the importing file's package path)."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = list(pkg[:len(pkg) - (node.level - 1)]) \
                    if node.level - 1 <= len(pkg) else []
                head = base + ([node.module] if node.module else [])
                prefix = ".".join(head)
            else:
                prefix = node.module or ""
            if prefix:
                out.add(prefix)
            for alias in node.names:
                out.add(f"{prefix}.{alias.name}" if prefix
                        else alias.name)
    return out


def dependent_closure(root: Path, files: Sequence[Path],
                      changed: Set[Path]) -> Set[Path]:
    """``changed`` plus every file whose facts depend on one of them.

    A file's findings can change without its bytes changing when a
    callee it imports is edited (the interprocedural packs chase calls
    across files, the TEL/BUD packs read registries declared elsewhere).
    The dependency channel for all of them is the import: you cannot
    call, lock or read what you never imported.  This builds the
    file-level edge set from the import statements of the linted tree
    and returns the reverse transitive closure of the changed set —
    over-approximating the call graph, which only ever re-lints more.
    """
    by_key: Dict[str, Set[Path]] = {}
    for path in files:
        for key in _module_keys(root, path):
            by_key.setdefault(key, set()).add(path)

    dependents: Dict[Path, Set[Path]] = {}
    for path in files:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            continue
        try:
            pkg = list(path.relative_to(root).parts[:-1])
        except ValueError:
            pkg = []
        for target in _import_targets(tree, pkg):
            for dep in by_key.get(target, ()):
                if dep != path:
                    dependents.setdefault(dep, set()).add(path)

    keep = set(changed)
    frontier = list(changed)
    while frontier:
        for caller in dependents.get(frontier.pop(), ()):
            if caller not in keep:
                keep.add(caller)
                frontier.append(caller)
    return keep


def resolve_rules(select: Optional[Sequence[str]] = None,
                  ignore: Optional[Sequence[str]] = None) -> List[Rule]:
    """Active rules after ``--select`` / ``--ignore`` filtering.

    A selector is a full rule id (``DET001``) or a prefix naming a whole
    pack (``DET``, ``BUD``); a selector matching nothing is an error.
    """
    def expand(selectors: Optional[Sequence[str]]) -> Set[str]:
        out: Set[str] = set()
        for sel in selectors or ():
            sel = sel.strip()
            if not sel:
                continue
            ids = [rid for rid in RULES if rid.startswith(sel)]
            if not ids:
                raise LintUsageError(
                    f"unknown rule id {sel!r}; known: {', '.join(RULES)}")
            out.update(ids)
        return out

    selected = expand(select)
    ignored = expand(ignore)
    active = [r for r in RULES.values()
              if (not selected or r.id in selected)
              and r.id not in ignored]
    return active


def _noqa_fix(project: "Project", rel: str, line: int, sup: Suppression,
              unused: Sequence[str]) -> Tuple[Edit, ...]:
    """Safe LNT001 fix: delete a fully stale ``noqa`` comment, or prune
    the unused rule ids from a partially stale one.  Never the other
    direction — the fixer must not *create* suppressions."""
    try:
        text = project.context(rel).source.splitlines()[line - 1]
    except (KeyError, IndexError, OSError):
        return ()
    match = _NOQA_RE.search(text)
    if match is None:
        return ()
    if set(unused) == set(sup.rules):
        start = match.start()
        while start > 0 and text[start - 1] in " \t":
            start -= 1
        if start == 0:
            # The comment is the whole line: drop the line itself.
            return ((rel, line, 0, line + 1, 0, ""),)
        return ((rel, line, start, line, len(text), ""),)
    kept = [r for r in sup.rules if r not in unused]
    return ((rel, line, match.start("rules"), line, match.end("rules"),
             ",".join(kept)),)


def _file_pass(ctx: FileContext, rules: Sequence[Rule],
               fact_keys: Sequence[str]
               ) -> Tuple[List[Finding], Dict[str, Facts]]:
    """File-scope findings and project-rule facts for one file."""
    findings: List[Finding] = []
    if ctx.tree is None:
        err = ctx.syntax_error
        if any(r.id == "LNT002" for r in rules):
            findings.append(Finding(
                "LNT002", ctx.rel, err.lineno or 1, (err.offset or 0) or 1,
                f"syntax error: {err.msg}"))
        return findings, {}
    for rule in rules:
        if rule.scope == "file" and rule.id != "LNT002":
            findings.extend(rule.check_file(ctx))
    facts: Dict[str, Facts] = {}
    for key in fact_keys:
        extracted = FACT_EXTRACTORS[key](ctx)
        if extracted:
            facts[key] = extracted
    return findings, facts


def _worker(payload: Tuple[str, str, Tuple[str, ...], Tuple[str, ...]]
            ) -> Tuple[str, List[Dict[str, object]], Dict[str, Facts],
                       List[Tuple[int, Tuple[str, ...], str]]]:
    """Worker-process entry: lint one file, return picklable results."""
    from . import rules as _rules  # noqa: F401  (registers the packs)
    path, rel, rule_ids, fact_keys = payload
    ctx = FileContext(Path(path), rel)
    active = [RULES[r] for r in rule_ids if r in RULES]
    findings, facts = _file_pass(ctx, active, fact_keys)
    sup = [(s.line, s.rules, s.justification)
           for s in ctx.suppressions.values()]
    return rel, [f.as_dict() for f in findings], facts, sup


def lint_paths(paths: Optional[Sequence] = None,
               select: Optional[Sequence[str]] = None,
               ignore: Optional[Sequence[str]] = None,
               jobs: Optional[int] = None,
               root: Optional[Path] = None,
               changed_only: bool = False,
               use_store: Optional[bool] = None) -> LintResult:
    """Run the active rules over ``paths`` (default: the repro package).

    ``jobs`` follows the same resolution as every other subcommand
    (explicit argument, then ``REPRO_JOBS``, else serial); the per-file
    pass fans out to worker processes, cross-file rules stay local.

    ``changed_only`` keeps only files differing from ``git merge-base
    HEAD main`` (committed, staged, unstaged or untracked) — the fast
    pre-commit mode.  Outside a git checkout every file is kept, so the
    flag degrades to a full run rather than an empty one.

    ``use_store`` controls the incremental cache: per-file findings,
    facts and suppressions are served from (and saved to) the sharded
    result store, keyed by content fingerprint plus the rule-pack salt
    (:mod:`repro.lint.cache`).  The default follows the store's own
    availability (``$REPRO_CACHE_DISABLE`` turns both off); pass False
    to force a cold run.
    """
    from . import rules as _rules  # noqa: F401  (registers the packs)
    from ..experiments.parallel import map_parallel, resolve_jobs

    targets = [Path(p) for p in paths] if paths else [default_target()]
    for t in targets:
        if not t.exists():
            raise LintUsageError(f"no such path: {t}")
    files = _expand(targets)
    if root is None:
        cwd = Path.cwd().resolve()
        if all(cwd in f.parents for f in files):
            root = cwd
        elif len(files) == 1:
            root = files[0].parent
        else:
            root = Path(*os.path.commonprefix([f.parts for f in files]))
    root = root.resolve()

    skipped = 0
    if changed_only:
        changed = changed_files(root)
        if changed is not None:
            # A changed callee invalidates its callers' facts too:
            # widen the changed set to its reverse import closure.
            keep = dependent_closure(
                root, files, {f for f in files if f in changed})
            kept_files = [f for f in files if f in keep]
            skipped = len(files) - len(kept_files)
            files = kept_files

    def rel_of(f: Path) -> str:
        try:
            return f.relative_to(root).as_posix()
        except ValueError:
            return f.as_posix()

    pairs = [(f, rel_of(f)) for f in files]
    active = resolve_rules(select, ignore)
    rule_ids = tuple(r.id for r in active)
    fact_keys = tuple(sorted({k for r in active for k in r.facts
                              if k in FACT_EXTRACTORS}))
    project = Project(root, pairs)

    all_findings: List[Finding] = []
    suppressions: Dict[str, Dict[int, Suppression]] = {}

    store = None
    if use_store is not False:
        from ..experiments.store import get_store
        store = get_store()

    store_served = 0
    cache_keys: Dict[str, str] = {}
    pending = pairs
    if store is not None:
        from .cache import _jsonify, decode_entry, encode_entry, file_key
        pending = []
        for f, rel in pairs:
            try:
                content = f.read_bytes()
            except OSError:
                pending.append((f, rel))
                continue
            cache_keys[rel] = file_key(content, rel, rule_ids, fact_keys)
            payload = store.load_lint(cache_keys[rel])
            entry = decode_entry(payload) if payload is not None else None
            if entry is None:
                pending.append((f, rel))
                continue
            findings, facts, sup = entry
            all_findings.extend(findings)
            for key, value in facts.items():
                project.facts.setdefault(key, {})[rel] = value
            suppressions[rel] = sup
            store_served += 1

    def publish(rel: str, findings: List[Finding], facts: Dict[str, Facts],
                sup: Dict[int, Suppression]) -> None:
        """Merge one fresh file pass, persisting it to the lint cache.

        Fresh facts pass through the same JSON normalisation as cached
        ones, so warm and cold runs feed project rules identical
        structures.
        """
        if store is not None:
            facts = _jsonify(facts)
        all_findings.extend(findings)
        for key, value in facts.items():
            project.facts.setdefault(key, {})[rel] = value
        suppressions[rel] = sup
        if store is not None and rel in cache_keys:
            store.save_lint(cache_keys[rel],
                            encode_entry(findings, facts, sup))

    n_jobs = resolve_jobs(jobs)
    if n_jobs > 1 and len(pending) > 1:
        payloads = [(str(f), rel, rule_ids, fact_keys) for f, rel in pending]
        for rel, findings, facts, sup in map_parallel(
                _worker, payloads, jobs=n_jobs):
            publish(rel, [Finding.from_dict(d) for d in findings], facts,
                    {line: Suppression(line, rules, why)
                     for line, rules, why in sup})
    else:
        for f, rel in pending:
            ctx = project.context(rel)
            findings, facts = _file_pass(ctx, active, fact_keys)
            publish(rel, findings, facts, dict(ctx.suppressions))

    for rule in active:
        if rule.scope == "project" and rule.id != "LNT001":
            all_findings.extend(rule.check_project(project))

    # Apply per-line suppressions centrally (covers project findings too).
    used: Dict[Tuple[str, int], Set[str]] = {}
    kept: List[Finding] = []
    muted: List[Finding] = []
    for finding in all_findings:
        sup = suppressions.get(finding.path, {}).get(finding.line)
        if sup is not None and finding.rule in sup.rules:
            used.setdefault((finding.path, finding.line),
                            set()).add(finding.rule)
            muted.append(Finding(
                finding.rule, finding.path, finding.line, finding.col,
                finding.message, suppressed=True,
                justification=sup.justification,
                related=finding.related))
        else:
            kept.append(finding)

    if any(r.id == "LNT001" for r in active):
        for rel in sorted(suppressions):
            for line, sup in sorted(suppressions[rel].items()):
                unused = [r for r in sup.rules
                          if r not in used.get((rel, line), set())]
                if unused:
                    kept.append(Finding(
                        "LNT001", rel, line, 1,
                        f"suppression of {', '.join(unused)} matches no "
                        f"finding on this line; remove the stale noqa",
                        fix=_noqa_fix(project, rel, line, sup, unused)))

    key = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731
    return LintResult(root=str(root), files=[rel for _, rel in pairs],
                      findings=sorted(kept, key=key),
                      suppressed=sorted(muted, key=key),
                      rules=tuple(r.id for r in active),
                      skipped=skipped, store_served=store_served)
