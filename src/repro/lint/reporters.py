"""Render a :class:`~repro.lint.framework.LintResult` as text/JSON/SARIF.

The SARIF output is the minimal valid 2.1.0 document GitHub code
scanning ingests: one run, the active rules as ``tool.driver.rules``,
one result per unsuppressed finding with a physical location.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .framework import RULES, LintResult

JSON_SCHEMA_VERSION = 1

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(f"{finding.location}: {finding.rule} {finding.message}")
        for path, line, col, note in finding.related:
            lines.append(f"    via {path}:{line}:{col}: {note}")
    counts = result.counts()
    if counts:
        per_rule = ", ".join(f"{rid} x{n}" for rid, n in sorted(counts.items()))
        lines.append("")
        lines.append(f"{len(result.findings)} finding(s) in "
                     f"{len(result.files)} file(s): {per_rule}")
    else:
        lines.append(f"clean: {len(result.files)} file(s), "
                     f"{len(result.suppressed)} suppressed finding(s)")
    if result.skipped:
        lines.append(f"({result.skipped} unchanged file(s) skipped by "
                     f"--changed-only)")
    if result.store_served:
        lines.append(f"({result.store_served}/{len(result.files)} file(s) "
                     f"served from the lint cache)")
    return "\n".join(lines)


def result_as_dict(result: LintResult) -> Dict[str, object]:
    return {
        "version": JSON_SCHEMA_VERSION,
        "ok": result.ok,
        "root": result.root,
        "files": len(result.files),
        "skipped": result.skipped,
        "store_served": result.store_served,
        "rules": list(result.rules),
        "counts": result.counts(),
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": [f.as_dict() for f in result.suppressed],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_as_dict(result), indent=2, sort_keys=True)


def _sarif_rules(result: LintResult) -> List[Dict[str, object]]:
    rules = []
    for rid in result.rules:
        rule = RULES.get(rid)
        if rule is None:
            continue
        rules.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": rule.level},
        })
    return rules


def _sarif_result(finding) -> Dict[str, object]:
    rule = RULES.get(finding.rule)
    entry: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": rule.level if rule is not None else "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": finding.line,
                           "startColumn": finding.col},
            },
        }],
    }
    if finding.related:
        entry["relatedLocations"] = [{
            "physicalLocation": {
                "artifactLocation": {"uri": path},
                "region": {"startLine": line, "startColumn": col},
            },
            "message": {"text": note},
        } for path, line, col, note in finding.related]
    if finding.suppressed:
        # SARIF 2.1.0 §3.27.23: a result with a non-empty suppressions
        # array is suppressed; ``inSource`` marks an in-code noqa.  The
        # justification carries the text after ``--`` in the comment, so
        # dashboards show *why* the exemption exists, not just that it
        # does.
        suppression: Dict[str, object] = {"kind": "inSource"}
        if finding.justification:
            suppression["justification"] = finding.justification
        entry["suppressions"] = [suppression]
    return entry


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 with suppressed findings included.

    Unsuppressed findings come first; suppressed ones follow with a
    ``suppressions[]`` entry so code-scanning UIs show them as
    dismissed rather than dropping them from the record entirely.
    """
    results = [_sarif_result(f) for f in result.findings]
    results.extend(_sarif_result(f) for f in result.suppressed)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "version": "1.0.0",
                "rules": _sarif_rules(result),
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
