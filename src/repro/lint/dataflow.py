"""Flow-sensitive intraprocedural dataflow for the lint packs.

The syntactic packs (DET/TEL/REG/BUD) and the flow-insensitive
concurrency pass miss value-dependent violations: a handle closed on
one branch but leaked on the other, a lock held through ``acquire()``
/ ``release()`` rather than a ``with`` block, an environment variable
name that only materialises after constant propagation through a
module-level ``ENV_FOO = "REPRO_FOO"`` alias.  This module supplies
the missing machinery:

* :func:`build_cfg` — a per-function control-flow graph straight from
  the AST, covering branches, loops, ``try``/``except``/``finally``,
  ``with`` blocks (entry and exit are distinct nodes so analyses see
  context release), ``break``/``continue``/``return``/``raise``, and
  the *exception edge* from every statement inside a ``try`` body to
  its handlers.
* :func:`solve` — a forward worklist solver over small picklable
  lattice states (plain dicts / frozensets), so per-file summaries can
  ride the same ``map_parallel`` fan-out as ``@fact_extractor`` facts.
* Four shipped analyses: :class:`ReachingDefinitions`,
  :class:`ConstantPropagation` (constants *and* env-var values),
  :class:`ResourceFlow` (acquired-handle state) and
  :class:`HeldLocks` (path-sensitive lock state including explicit
  ``acquire``/``release`` pairs).

Rules consume the engine either directly (file-scope rules call
:func:`function_summaries` on their ``FileContext``) or through facts
(extractors run the solver in the worker and ship the picklable
summary dicts to project-scope rules).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from .astutil import UNFOLDABLE, dotted_name, fold_constant

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Lattice top: the variable is bound but to no single known value.
TOP = "<top>"


def fold_literal(node: Optional[ast.AST]) -> object:
    """Like :func:`fold_constant` but strings/bools are values too.

    The budget pack's folder is deliberately numeric-only (a string
    default for a table geometry *should* be flagged as unfoldable);
    constant propagation needs the wider literal domain because env-var
    names and defaults are strings.
    """
    if isinstance(node, ast.Constant) and \
            isinstance(node.value, (str, bool)):
        return node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = fold_literal(node.left)
        right = fold_literal(node.right)
        if isinstance(left, str) and isinstance(right, str):
            return left + right
    if isinstance(node, ast.JoinedStr):
        parts = [fold_literal(v) for v in node.values]
        if all(isinstance(p, str) for p in parts):
            return "".join(parts)  # type: ignore[arg-type]
    return fold_constant(node)

# --------------------------------------------------------------------------
# Control-flow graph
# --------------------------------------------------------------------------

#: Node kinds.  ``stmt`` carries one simple statement; control headers
#: (``if``/``while``/``for``/``try``/``with``) carry their own node so
#: conditions are evaluated exactly once per traversal; ``with_exit``
#: is the synthetic context-release point; ``exit`` is the normal
#: function exit and ``raise_exit`` the exceptional one.
ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise_exit"
STMT = "stmt"
WITH_EXIT = "with_exit"
EXCEPT = "except"
FINALLY = "finally"


@dataclass
class Node:
    """One CFG node: a statement (or synthetic point) plus its kind."""

    index: int
    kind: str
    stmt: Optional[ast.stmt] = None
    succs: Set[int] = field(default_factory=set)


class CFG:
    """Control-flow graph of a single function."""

    #: Edge-kind bits: a normal edge carries the source's OUT state, an
    #: exception edge carries its IN state (the statement raised before
    #: its effect completed — ``fh = open(...)`` failing never bound
    #: ``fh``).  An edge can be both (the last statement of a ``try``
    #: body both falls into and raises into its ``finally``); the
    #: solver then joins IN and OUT.
    EDGE_NORMAL = 1
    EDGE_EXC = 2

    def __init__(self, func: FunctionNode):
        self.func = func
        self.nodes: List[Node] = []
        self.edge_kinds: Dict[Tuple[int, int], int] = {}
        self.entry = self._new(ENTRY)
        self.exit = self._new(EXIT)
        self.raise_exit = self._new(RAISE_EXIT)

    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node = Node(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node.index

    def add_edge(self, src: int, dst: int, exc: bool = False) -> None:
        self.nodes[src].succs.add(dst)
        bit = self.EDGE_EXC if exc else self.EDGE_NORMAL
        self.edge_kinds[(src, dst)] = self.edge_kinds.get((src, dst), 0) | bit

    def preds(self) -> Dict[int, Set[int]]:
        back: Dict[int, Set[int]] = {n.index: set() for n in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                back[succ].add(node.index)
        return back


class _Builder:
    """Statement-granularity CFG construction.

    ``frontier`` is the set of nodes whose successor is the next
    statement; it empties after ``return``/``raise``/``break``/
    ``continue`` (the code that follows is unreachable and gets no
    incoming edges, which the solver then simply never visits).
    """

    def __init__(self, func: FunctionNode):
        self.cfg = CFG(func)
        # Stack of (continue target, break sink set) for loops, and a
        # stack of exception targets for enclosing try statements: the
        # handler heads when the try has handlers, else its synthetic
        # finally head (try/finally runs cleanup, then propagates).
        self._loops: List[Tuple[int, Set[int]]] = []
        self._exc_targets: List[List[int]] = []
        # Enclosing finally regions: a ``return`` routes through the
        # innermost finally body instead of jumping straight to exit,
        # so ``finally: fh.close()`` is seen on the return path.  Each
        # entry is ``[fin_head, saw_return]``.
        self._fin_stack: List[List[Any]] = []
        frontier = self._body(func.body, {self.cfg.entry})
        self._join(frontier, self.cfg.exit)

    # -- helpers ---------------------------------------------------------

    def _join(self, frontier: Set[int], target: int) -> None:
        for src in frontier:
            self.cfg.add_edge(src, target)

    def _node(self, kind: str, stmt: Optional[ast.stmt],
              frontier: Set[int]) -> int:
        index = self.cfg._new(kind, stmt)
        self._join(frontier, index)
        # Any statement inside a try body may raise into the nearest
        # handlers (or through the finally of a handler-less try).
        if self._exc_targets:
            for target in self._exc_targets[-1]:
                self.cfg.add_edge(index, target, exc=True)
        return index

    def _raise_target(self) -> List[int]:
        """Where control lands when a statement raises uncaught."""
        if self._exc_targets:
            return self._exc_targets[-1]
        return [self.cfg.raise_exit]

    # -- statement dispatch ----------------------------------------------

    def _body(self, stmts: List[ast.stmt], frontier: Set[int]) -> Set[int]:
        for stmt in stmts:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        if not frontier:
            return frontier  # unreachable code: build no nodes
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Return):
            index = self._node(STMT, stmt, frontier)
            if self._fin_stack:
                self.cfg.add_edge(index, self._fin_stack[-1][0])
                self._fin_stack[-1][1] = True
            else:
                self.cfg.add_edge(index, self.cfg.exit)
            return set()
        if isinstance(stmt, ast.Raise):
            index = self._node(STMT, stmt, frontier)
            for target in self._raise_target():
                self.cfg.add_edge(index, target)
            return set()
        if isinstance(stmt, ast.Break):
            index = self._node(STMT, stmt, frontier)
            if self._loops:
                self._loops[-1][1].add(index)
            return set()
        if isinstance(stmt, ast.Continue):
            index = self._node(STMT, stmt, frontier)
            if self._loops:
                self.cfg.add_edge(index, self._loops[-1][0])
            return set()
        # Nested function/class bodies are separate dataflow universes.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return {self._node(STMT, stmt, frontier)}
        return {self._node(STMT, stmt, frontier)}

    def _if(self, stmt: ast.If, frontier: Set[int]) -> Set[int]:
        cond = self._node(STMT, stmt, frontier)
        then_out = self._body(stmt.body, {cond})
        else_out = self._body(stmt.orelse, {cond}) if stmt.orelse else {cond}
        return then_out | else_out

    def _loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
              frontier: Set[int]) -> Set[int]:
        header = self._node(STMT, stmt, frontier)
        breaks: Set[int] = set()
        self._loops.append((header, breaks))
        body_out = self._body(stmt.body, {header})
        self._loops.pop()
        self._join(body_out, header)
        else_out = self._body(stmt.orelse, {header}) if stmt.orelse \
            else {header}
        return else_out | breaks

    def _try(self, stmt: ast.Try, frontier: Set[int]) -> Set[int]:
        # Handler heads (and the synthetic finally head of a
        # handler-less try) exist before the body so exception edges
        # can point at them while the body is built.
        heads: List[int] = []
        for handler in stmt.handlers:
            heads.append(self.cfg._new(EXCEPT, handler))
        fin_head: Optional[int] = None
        fin_entry: Optional[List[Any]] = None
        if stmt.finalbody:
            fin_head = self.cfg._new(FINALLY, stmt)
            fin_entry = [fin_head, False]
            self._fin_stack.append(fin_entry)
        self._exc_targets.append(heads if heads else
                                 ([fin_head] if fin_head is not None
                                  else list(self._raise_target())))
        body_out = self._body(stmt.body, frontier)
        self._exc_targets.pop()
        outs: Set[int] = set()
        outs |= self._body(stmt.orelse, body_out) if stmt.orelse \
            else body_out
        # Handler bodies build after the pop: a raise inside a handler
        # propagates to the *enclosing* context, not back into itself.
        for head, handler in zip(heads, stmt.handlers):
            outs |= self._body(handler.body, {head})
        if stmt.finalbody:
            self._fin_stack.pop()
            if fin_head is not None:
                self._join(outs, fin_head)
            fin_out = self._body(stmt.finalbody, {fin_head}
                                 if fin_head is not None else outs)
            if not heads:
                # try/finally with no handler: the cleanup runs, then
                # the exception keeps propagating outward.
                for target in self._raise_target():
                    self._join(fin_out, target)
            if fin_entry is not None and fin_entry[1]:
                # A return inside the try routed through this finally;
                # after the cleanup it continues to the next enclosing
                # finally, or leaves the function.
                if self._fin_stack:
                    self._join(fin_out, self._fin_stack[-1][0])
                    self._fin_stack[-1][1] = True
                else:
                    self._join(fin_out, self.cfg.exit)
            return fin_out
        return outs

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              frontier: Set[int]) -> Set[int]:
        enter = self._node(STMT, stmt, frontier)
        body_out = self._body(stmt.body, {enter})
        leave = self._node(WITH_EXIT, stmt, body_out)
        return {leave}


def build_cfg(func: FunctionNode) -> CFG:
    """Construct the statement-level CFG of one function."""
    return _Builder(func).cfg


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """All function definitions in the module, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# --------------------------------------------------------------------------
# Worklist solver
# --------------------------------------------------------------------------

class Analysis:
    """A forward dataflow analysis over picklable states."""

    name = "analysis"

    def initial(self, func: FunctionNode) -> Any:
        raise NotImplementedError

    def join(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, state: Any, node: Node) -> Any:
        raise NotImplementedError


def solve(cfg: CFG, analysis: Analysis) -> Dict[int, Any]:
    """Run ``analysis`` to fixpoint; returns the IN state per node.

    The solver is a plain forward worklist; lattices here are finite
    (sets of lines, small constant maps with a TOP element) so
    termination is structural, but a belt-and-braces visit cap guards
    against a non-monotone transfer function in a future analysis.
    """
    states: Dict[int, Any] = {cfg.entry: analysis.initial(cfg.func)}
    work: List[int] = [cfg.entry]
    cap = max(1, len(cfg.nodes)) * 64
    visits = 0
    while work and visits < cap:
        visits += 1
        index = work.pop()
        node = cfg.nodes[index]
        out = analysis.transfer(states[index], node)
        for succ in node.succs:
            kind = cfg.edge_kinds.get((index, succ), CFG.EDGE_NORMAL)
            if kind == CFG.EDGE_EXC:
                # The statement raised before completing: its effect
                # (binding an opened handle, acquiring a lock) must not
                # reach the handler.
                carried = states[index]
            elif kind == CFG.EDGE_NORMAL:
                carried = out
            else:
                carried = analysis.join(states[index], out)
            if succ in states:
                merged = analysis.join(states[succ], carried)
                if merged != states[succ]:
                    states[succ] = merged
                    work.append(succ)
            else:
                states[succ] = carried
                work.append(succ)
    return states


def solve_out(cfg: CFG, analysis: Analysis) -> Dict[int, Any]:
    """Like :func:`solve` but returns the OUT state per visited node."""
    ins = solve(cfg, analysis)
    return {index: analysis.transfer(state, cfg.nodes[index])
            for index, state in ins.items()}


# --------------------------------------------------------------------------
# Shipped analyses
# --------------------------------------------------------------------------

def _targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


class ReachingDefinitions(Analysis):
    """Which assignment lines can reach each program point.

    State: ``{var: frozenset(def lines)}``.
    """

    name = "reaching"

    def initial(self, func: FunctionNode) -> Dict[str, FrozenSet[int]]:
        args = func.args
        names = [a.arg for a in (args.posonlyargs + args.args +
                                 args.kwonlyargs)]
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                names.append(extra.arg)
        return {name: frozenset({func.lineno}) for name in names}

    def join(self, a: Dict[str, FrozenSet[int]],
             b: Dict[str, FrozenSet[int]]) -> Dict[str, FrozenSet[int]]:
        merged = dict(a)
        for var, lines in b.items():
            merged[var] = merged.get(var, frozenset()) | lines
        return merged

    def transfer(self, state: Dict[str, FrozenSet[int]],
                 node: Node) -> Dict[str, FrozenSet[int]]:
        stmt = node.stmt
        if stmt is None or node.kind not in (STMT, EXCEPT):
            return state
        out = dict(state)
        for target in _targets(stmt):
            if isinstance(target, ast.Name):
                out[target.id] = frozenset({stmt.lineno})
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        out[elt.id] = frozenset({stmt.lineno})
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and \
                isinstance(stmt.target, ast.Name):
            out[stmt.target.id] = frozenset({stmt.lineno})
        if isinstance(stmt, (ast.With, ast.AsyncWith)) and node.kind == STMT:
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    out[item.optional_vars.id] = frozenset({stmt.lineno})
        if node.kind == EXCEPT and isinstance(stmt, ast.ExceptHandler) \
                and stmt.name:
            out[stmt.name] = frozenset({stmt.lineno})
        return out


class ConstantPropagation(Analysis):
    """Constant and env-value propagation.

    State: ``{var: value}`` where value is a literal (str/int/float/
    bool/None/tuple) or :data:`TOP`.  Seeded with the module-level
    constant environment so ``ENV_JOBS = "REPRO_JOBS"`` aliases resolve
    inside functions.  Only straight-line facts survive a join: a
    variable bound to different constants on two branches goes to TOP.
    """

    name = "constants"

    def __init__(self, module_env: Optional[Dict[str, Any]] = None):
        self.module_env = dict(module_env or {})

    def initial(self, func: FunctionNode) -> Dict[str, Any]:
        return dict(self.module_env)

    def join(self, a: Dict[str, Any], b: Dict[str, Any]) -> Dict[str, Any]:
        merged: Dict[str, Any] = {}
        for var in sorted(set(a) | set(b)):
            if var in a and var in b and a[var] == b[var]:
                merged[var] = a[var]
            else:
                merged[var] = TOP
        return merged

    def fold(self, expr: ast.expr, state: Dict[str, Any]) -> Any:
        """Fold ``expr`` given the current constant state."""
        if isinstance(expr, ast.Name):
            value = state.get(expr.id, UNFOLDABLE)
            return UNFOLDABLE if value is TOP else value
        value = fold_literal(expr)
        if value is not UNFOLDABLE:
            return value
        if isinstance(expr, ast.BinOp) and \
                isinstance(expr.op, (ast.Add, ast.Sub, ast.Mult)):
            left = self.fold(expr.left, state)
            right = self.fold(expr.right, state)
            if left is not UNFOLDABLE and right is not UNFOLDABLE:
                try:
                    if isinstance(expr.op, ast.Add):
                        return left + right
                    if isinstance(expr.op, ast.Sub):
                        return left - right
                    return left * right
                except TypeError:
                    return UNFOLDABLE
        return UNFOLDABLE

    def transfer(self, state: Dict[str, Any], node: Node) -> Dict[str, Any]:
        stmt = node.stmt
        if stmt is None or node.kind != STMT:
            return state
        out = dict(state)
        for target in _targets(stmt):
            if isinstance(target, ast.Name):
                value = UNFOLDABLE
                if isinstance(stmt, ast.Assign):
                    value = self.fold(stmt.value, state)
                elif isinstance(stmt, ast.AnnAssign) and stmt.value:
                    value = self.fold(stmt.value, state)
                out[target.id] = TOP if value is UNFOLDABLE else value
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        out[elt.id] = TOP
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and \
                isinstance(stmt.target, ast.Name):
            out[stmt.target.id] = TOP
        return out


#: Calls whose result is an owned, closeable handle; mirrors the
#: concurrency pack's RESOURCE_CALLS but consumed flow-sensitively.
OPEN_CALLS = frozenset({
    "open", "io.open", "os.fdopen", "socket.socket", "socket.create_connection",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile", "gzip.open",
    "bz2.open", "lzma.open", "subprocess.Popen",
})

_CLOSE_METHODS = frozenset({
    "close", "terminate", "kill", "shutdown", "release", "wait",
})

_OPEN = "open"


def _call_name(call: ast.Call, imports: Optional[Dict[str, str]]) -> str:
    name = dotted_name(call.func) or ""
    if imports:
        head, _, rest = name.partition(".")
        if head in imports:
            name = imports[head] + ("." + rest if rest else "")
    return name


#: One tracked handle: (status, open line, open col, call name).
ResourceState = Tuple[str, int, int, str]


class ResourceFlow(Analysis):
    """Acquired-resource state per local variable.

    State: ``{var: (status, open line, open col, call name)}`` with
    status ``"open"`` while the handle is owned and unreleased on this
    path.  A close/terminate call, a ``with`` binding (released at the
    with-exit node), returning or yielding the handle, storing it on
    an attribute/container, or passing it to a call all remove the
    obligation — the last three are ownership escapes, not leaks.
    Merely *using* the handle (``fh.read()``, ``fh.name``) is not an
    escape: the receiver of an attribute access keeps its obligation.
    """

    name = "resources"

    def __init__(self, imports: Optional[Dict[str, str]] = None):
        self.imports = dict(imports or {})

    def initial(self, func: FunctionNode) -> Dict[str, ResourceState]:
        return {}

    def join(self, a: Dict[str, ResourceState],
             b: Dict[str, ResourceState]) -> Dict[str, ResourceState]:
        # A handle open on *either* incoming path is still an
        # obligation: join is union (may-be-open).
        merged = dict(b)
        merged.update(a)
        return merged

    def _is_open_call(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Call) and \
            _call_name(expr, self.imports) in OPEN_CALLS

    def _escapes(self, out: Dict[str, ResourceState],
                 expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        receivers = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name):
                receivers.add(id(node.value))
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in out and \
                    id(node) not in receivers:
                out.pop(node.id, None)

    def transfer(self, state: Dict[str, ResourceState],
                 node: Node) -> Dict[str, ResourceState]:
        stmt = node.stmt
        if stmt is None:
            return state
        out = dict(state)
        if node.kind == WITH_EXIT and isinstance(stmt,
                                                 (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    out.pop(item.optional_vars.id, None)
            return out
        if node.kind != STMT:
            return out
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            var = stmt.targets[0].id
            if self._is_open_call(stmt.value):
                out[var] = (_OPEN, stmt.lineno, stmt.col_offset + 1,
                            _call_name(stmt.value, self.imports))  # type: ignore[arg-type]
                return out
            # Rebinding the name drops the tracked handle (aliasing is
            # out of scope for the intraprocedural pass).
            out.pop(var, None)
            self._escapes(out, stmt.value)
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # `with open(...) as fh` — managed, never an obligation;
            # `with contextlib.closing(fh)` releases a tracked handle.
            for item in stmt.items:
                self._escapes(out, item.context_expr)
            return out
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if isinstance(call.func, ast.Attribute) and \
                    call.func.attr in _CLOSE_METHODS and \
                    isinstance(call.func.value, ast.Name):
                out.pop(call.func.value.id, None)
                return out
            self._escapes(out, call)
            return out
        if isinstance(stmt, ast.Return):
            self._escapes(out, stmt.value)
            return out
        # Any other statement mentioning the handle (append to a list,
        # attribute store, raise from it...) transfers ownership.
        for field_value in ast.iter_child_nodes(stmt):
            if isinstance(field_value, ast.expr):
                self._escapes(out, field_value)
        return out


_ACQUIRE_METHODS = frozenset({"acquire", "acquire_read", "acquire_write"})
_RELEASE_METHODS = frozenset({"release"})


def _lock_expr_of(expr: ast.expr) -> Optional[str]:
    """A stable textual key for a lock-valued expression."""
    name = dotted_name(expr)
    return name


class HeldLocks(Analysis):
    """Path-sensitive held-lock state.

    State: ``frozenset`` of lock expressions (``self._lock``,
    ``LOCK_A`` ...) held on *all* paths reaching the point — the join
    is intersection, so a lock acquired on only one branch does not
    count as a guard after the merge.  Both ``with lock:`` regions and
    explicit ``lock.acquire()`` / ``lock.release()`` pairs move the
    state.
    """

    name = "locks"

    def __init__(self, lock_names: Optional[Set[str]] = None):
        #: When given, only these expressions are treated as locks;
        #: otherwise any `.acquire()`d expression is.
        self.lock_names = lock_names

    def _is_lock(self, key: Optional[str]) -> bool:
        if key is None:
            return False
        if self.lock_names is None:
            return True
        return key in self.lock_names

    def initial(self, func: FunctionNode) -> FrozenSet[str]:
        return frozenset()

    def join(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a & b

    def transfer(self, state: FrozenSet[str], node: Node) -> FrozenSet[str]:
        stmt = node.stmt
        if stmt is None:
            return state
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            keys = set()
            for item in stmt.items:
                key = _lock_expr_of(item.context_expr)
                if self._is_lock(key):
                    keys.add(key)
            if node.kind == STMT:
                return state | keys
            if node.kind == WITH_EXIT:
                return state - keys
            return state
        if node.kind != STMT:
            return state
        call: Optional[ast.Call] = None
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
        elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            call = stmt.value
        if call is not None and isinstance(call.func, ast.Attribute):
            method = call.func.attr
            key = _lock_expr_of(call.func.value)
            if self._is_lock(key) and key is not None:
                if method in _ACQUIRE_METHODS:
                    return state | {key}
                if method in _RELEASE_METHODS:
                    return state - {key}
        return state


# --------------------------------------------------------------------------
# Per-file summaries (picklable, cached on the FileContext)
# --------------------------------------------------------------------------

def module_constants(tree: ast.Module) -> Dict[str, Any]:
    """Foldable module-level ``NAME = literal`` bindings."""
    env: Dict[str, Any] = {}
    for stmt in tree.body:
        targets = _targets(stmt)
        value = getattr(stmt, "value", None)
        if value is None:
            continue
        folded = fold_literal(value)
        if folded is UNFOLDABLE:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                env[target.id] = folded
    return env


@dataclass
class FunctionSummary:
    """Cheap per-function dataflow digests consumed by rules."""

    func: FunctionNode
    cfg: CFG
    #: IN states per node for each analysis that ran.
    states: Dict[str, Dict[int, Any]]

    def in_state(self, name: str, index: int) -> Any:
        return self.states.get(name, {}).get(index)


class FileDataflow:
    """Lazily solved per-function dataflow for one file."""

    def __init__(self, tree: ast.Module,
                 imports: Optional[Dict[str, str]] = None):
        self.tree = tree
        self.imports = dict(imports or {})
        self.module_env = module_constants(tree)
        self._summaries: Dict[int, FunctionSummary] = {}

    def _analyses(self) -> List[Analysis]:
        return [
            ReachingDefinitions(),
            ConstantPropagation(self.module_env),
            ResourceFlow(self.imports),
            HeldLocks(),
        ]

    def summary(self, func: FunctionNode) -> FunctionSummary:
        key = id(func)
        if key not in self._summaries:
            cfg = build_cfg(func)
            states = {analysis.name: solve(cfg, analysis)
                      for analysis in self._analyses()}
            self._summaries[key] = FunctionSummary(func, cfg, states)
        return self._summaries[key]

    def functions(self) -> Iterator[FunctionNode]:
        return iter_functions(self.tree)


def file_dataflow(ctx: Any) -> FileDataflow:
    """The (cached) dataflow universe of a ``FileContext``."""
    cached = getattr(ctx, "_dataflow", None)
    if cached is None:
        cached = FileDataflow(ctx.tree, getattr(ctx, "imports", None))
        setattr(ctx, "_dataflow", cached)
    return cached


def exit_states(summary: FunctionSummary, analysis: str,
                analyses: Optional[Callable[[], Analysis]] = None
                ) -> List[Any]:
    """IN states of the normal-exit node (one per solved path class)."""
    state = summary.in_state(analysis, summary.cfg.exit)
    return [state] if state is not None else []
