"""Small AST helpers shared by the lint rules.

Three concerns: resolving a call's dotted name through the module's
imports (``np.random.default_rng`` -> ``numpy.random.default_rng``),
folding constant arithmetic expressions (``16 * 1024`` -> 16384, the
shape every table-geometry default in this tree takes), and locating
class/function definitions for static signature checks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple, Union


def collect_imports(tree: ast.AST) -> Dict[str, str]:
    """Map local alias -> dotted origin for every import in ``tree``.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from time import time as now`` yields ``{"now": "time.time"}``.
    Relative imports are recorded with their leading dots stripped —
    the banned-name sets only care about absolute stdlib/numpy names,
    so an in-package origin can never collide with them.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            module = (node.module or "").lstrip(".")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                origin = f"{module}.{alias.name}" if module else alias.name
                imports[local] = origin
    return imports


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """Dotted name of ``node`` with its first segment mapped through
    the module's imports (so aliases resolve to their true origin)."""
    name = dotted_name(node)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = imports.get(head)
    if origin is None:
        return name
    return f"{origin}.{rest}" if rest else origin


_FOLD_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Div: lambda a, b: a / b,
    ast.Pow: lambda a, b: a ** b,
    ast.Mod: lambda a, b: a % b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
}

#: Sentinel distinguishing "folded to None" from "could not fold".
UNFOLDABLE = object()


def fold_constant(node: Optional[ast.AST]) -> object:
    """Evaluate a numeric constant expression (literals + arithmetic).

    Returns the value (which may legitimately be ``None`` for
    ``Optional[int] = None`` defaults) or :data:`UNFOLDABLE` when the
    expression references names, calls or anything non-constant.
    """
    if node is None:
        return UNFOLDABLE
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, (int, float)):
            return node.value
        return UNFOLDABLE
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = fold_constant(node.operand)
        if isinstance(operand, (int, float)):
            return -operand
        return UNFOLDABLE
    if isinstance(node, ast.BinOp):
        op = _FOLD_BINOPS.get(type(node.op))
        if op is None:
            return UNFOLDABLE
        left = fold_constant(node.left)
        right = fold_constant(node.right)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            try:
                return op(left, right)
            except (ZeroDivisionError, OverflowError, ValueError):
                return UNFOLDABLE
        return UNFOLDABLE
    return UNFOLDABLE


def iter_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def find_class(tree: ast.AST, name: str) -> Optional[ast.ClassDef]:
    for node in iter_classes(tree):
        if node.name == name:
            return node
    return None


def find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def keyword_defaults(fn: ast.FunctionDef) -> Dict[str, ast.AST]:
    """Parameter name -> default-value node, for every defaulted
    positional/keyword parameter of ``fn``."""
    args = fn.args
    defaults: Dict[str, ast.AST] = {}
    positional = args.posonlyargs + args.args
    for arg, default in zip(positional[len(positional) - len(args.defaults):],
                            args.defaults):
        defaults[arg.arg] = default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            defaults[arg.arg] = default
    return defaults


def module_constant(tree: ast.AST, name: str) -> Optional[ast.AST]:
    """Value node of a top-level ``NAME = <expr>`` assignment."""
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def class_constant(cls: ast.ClassDef, name: str) -> Optional[ast.AST]:
    """Value node of a class-level ``NAME = <expr>`` assignment."""
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                return node.value
    return None


def static_bind(defn: Union[ast.ClassDef, ast.FunctionDef],
                call: ast.Call) -> Optional[str]:
    """Check ``call`` against an AST definition's signature.

    For a class the constructor (``__init__``) is bound with ``self``
    skipped.  Returns an error description, or None when the call binds
    (or cannot be checked statically, e.g. ``*args`` in the call).
    """
    if isinstance(defn, ast.ClassDef):
        fn = find_method(defn, "__init__")
        if fn is None:
            # Object () constructor: any argument is an arity error.
            if call.args or any(k.arg for k in call.keywords):
                return f"{defn.name} takes no constructor arguments"
            return None
        skip_self = 1
    else:
        fn, skip_self = defn, 0

    if any(isinstance(a, ast.Starred) for a in call.args) or \
            any(k.arg is None for k in call.keywords):
        return None  # *args / **kwargs at the call site: not checkable

    args = fn.args
    positional = [a.arg for a in (args.posonlyargs + args.args)][skip_self:]
    n_required = len(positional) - len(args.defaults)
    kwonly = {a.arg for a in args.kwonlyargs}
    kw_required = {a.arg for a, d in zip(args.kwonlyargs, args.kw_defaults)
                   if d is None}

    n_pos = len(call.args)
    if n_pos > len(positional) and args.vararg is None:
        return (f"{defn.name} takes at most {len(positional)} positional "
                f"arguments ({n_pos} given)")
    supplied = set(positional[:n_pos])
    for kw in call.keywords:
        if kw.arg in supplied:
            return f"{defn.name} got multiple values for {kw.arg!r}"
        if kw.arg not in positional and kw.arg not in kwonly \
                and args.kwarg is None:
            return f"{defn.name} got an unexpected keyword {kw.arg!r}"
        supplied.add(kw.arg)
    missing = [p for p in positional[:n_required] if p not in supplied]
    missing += sorted(kw_required - supplied)
    if missing:
        return (f"{defn.name} missing required argument(s): "
                f"{', '.join(missing)}")
    return None


def string_tuple(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The values of a tuple/list of string constants, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        values.append(elt.value)
    return tuple(values)
