"""Benchmark matrix runner with an append-only JSONL history.

``repro bench`` runs a declared benchmark matrix — (workload, scheme,
jobs) cells at a fixed trace length — and records, per cell:

* **wall-clock** per repetition and derived **records/sec**;
* a **behaviour digest** (the deterministic engine counters: cycles,
  misses, prefetches, …) so a run that got *faster by computing the
  wrong thing* is caught as loudly as a slowdown;
* **cache-hit and fast-path counters** (persistent-store session
  counters, fast-path eligibility/downgrade flags);
* the run's **content fingerprint** (same scheme as the result store,
  code salt included) and the current **git revision**.

Each measured cell is appended as one JSON line to
``$REPRO_CACHE_DIR/bench/history.jsonl``.  The history is the source of
truth; ``BENCH_throughput.json`` at the repo root is a *derived view*
regenerated from it (:func:`write_view`), and the regression gate
(:mod:`repro.obs.regress`) compares a fresh run against the latest
stored baseline for the same cell.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..experiments import store as result_store

#: Schema version of one history line.
HISTORY_VERSION = 1

_GIT_REV: Optional[str] = None

#: Monotonic token keeping pool-throughput runs distinct within one
#: process (each must simulate, never hit the memo of a previous rep).
_POOL_TOKEN = 0


def git_rev() -> str:
    """Short git revision of the working tree ("unknown" outside git)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=10)
            _GIT_REV = proc.stdout.strip() if proc.returncode == 0 \
                and proc.stdout.strip() else "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = "unknown"
    return _GIT_REV


@dataclass(frozen=True)
class BenchCell:
    """One benchmark matrix point: a (workload, scheme, jobs) cell.

    ``jobs == 1`` times repeated serial simulations of the cell (engine
    throughput).  ``jobs > 1`` times a ``run_many`` fan-out of ``jobs``
    independent copies of the cell per repetition (pool throughput,
    including spawn/pickling overhead — the parallel-runner analogue).
    """

    workload: str
    scheme: str
    n_records: int = 30_000
    scale: float = 1.0
    jobs: int = 1

    def key(self) -> str:
        """Stable identity of the cell across revisions."""
        return (f"{self.workload}/{self.scheme}"
                f"@{self.n_records}x{self.scale:g}j{self.jobs}")


#: Counters that form the behaviour digest.  All integers, all exactly
#: reproducible: two runs of the same code on the same cell must match
#: bit for bit, and a mismatch across revisions is a behaviour change.
DIGEST_COUNTERS: Tuple[str, ...] = (
    "delivery_cycles", "icache_stall_cycles", "btb_stall_cycles",
    "mispredict_stall_cycles", "backend_cycles",
    "instructions", "demand_accesses", "demand_hits", "demand_misses",
    "demand_late_prefetch", "prefetches_issued", "prefetches_useful",
    "prefetches_useless", "btb_misses", "btb_buffer_fills", "mispredicts",
)


def _digest(stats) -> Dict[str, int]:
    return {name: int(getattr(stats, name)) for name in DIGEST_COUNTERS}


#: Named matrices.  "small" is the CI gate (cheap, two schemes); the
#: default covers three workloads crossed with the proactive SN4L / Dis
#: / BTB build-up; "full" adds the remaining workloads, the strongest
#: baseline competitor and a pool-throughput cell.
_DEFAULT_WORKLOADS = ("web_apache", "oltp_db_a", "web_search")
_DEFAULT_SCHEMES = ("baseline", "sn4l", "sn4l_dis", "sn4l_dis_btb")

MATRICES: Dict[str, Tuple[BenchCell, ...]] = {
    "small": (
        BenchCell("web_apache", "baseline", n_records=9_000, scale=0.5),
        BenchCell("web_apache", "sn4l_dis_btb", n_records=9_000, scale=0.5),
    ),
    "default": tuple(
        BenchCell(w, s) for w in _DEFAULT_WORKLOADS
        for s in _DEFAULT_SCHEMES),
    "full": tuple(
        BenchCell(w, s) for w in
        ("media_streaming", "oltp_db_a", "oltp_db_b", "web_apache",
         "web_zeus", "web_frontend", "web_search")
        for s in _DEFAULT_SCHEMES + ("shotgun",)
    ) + (
        BenchCell("web_apache", "sn4l_dis_btb", jobs=4),
    ),
}


def matrix_names() -> Tuple[str, ...]:
    return tuple(MATRICES)


def resolve_matrix(name: str, n_records: Optional[int] = None,
                   scale: Optional[float] = None) -> Tuple[BenchCell, ...]:
    """A named matrix, optionally overriding every cell's size knobs."""
    try:
        cells = MATRICES[name]
    except KeyError:
        known = ", ".join(MATRICES)
        raise KeyError(f"unknown matrix {name!r}; known: {known}") from None
    if n_records is None and scale is None:
        return cells
    return tuple(
        BenchCell(c.workload, c.scheme,
                  n_records=n_records if n_records is not None
                  else c.n_records,
                  scale=scale if scale is not None else c.scale,
                  jobs=c.jobs)
        for c in cells)


def _cell_fingerprint(cell: BenchCell) -> str:
    """Content fingerprint of a cell (code salt included via the store)."""
    from ..workloads import get_profile
    return result_store.fingerprint({
        "kind": "bench",
        "profile": get_profile(cell.workload),
        "scheme": cell.scheme,
        "n_records": cell.n_records,
        "scale": cell.scale,
        "jobs": cell.jobs,
    })


def _run_serial_cell(cell: BenchCell, repeats: int
                     ) -> Tuple[List[float], Dict[str, int], Dict[str, Any]]:
    """Time ``repeats`` fresh simulations of one cell.

    The trace is built (or loaded from the store) once, outside the
    timed region, so wall-clock measures the engine, not trace
    generation.  A fresh prefetcher per repetition keeps every rep
    independent; the deterministic engine makes every rep's counters
    identical, which is asserted.
    """
    from ..experiments.runner import build_scheme
    from ..frontend import FrontendConfig, FrontendSimulator
    from ..workloads import get_generator, get_trace

    generator = get_generator(cell.workload, scale=cell.scale)
    trace = get_trace(cell.workload, n_records=cell.n_records,
                      scale=cell.scale)
    warmup = cell.n_records // 3
    wall: List[float] = []
    digest: Optional[Dict[str, int]] = None
    flags: Dict[str, Any] = {}
    for _ in range(repeats):
        prefetcher, overrides = build_scheme(cell.scheme)
        sim = FrontendSimulator(trace, config=FrontendConfig(**overrides),
                                prefetcher=prefetcher,
                                program=generator.program)
        flags["fast_path_eligible"] = sim._fast_path_eligible()
        start = time.perf_counter()
        stats = sim.run(warmup=warmup)
        wall.append(time.perf_counter() - start)
        flags["fast_path_downgraded"] = bool(
            stats.extra.get("fast_path_downgraded"))
        d = _digest(stats)
        if digest is None:
            digest = d
        elif digest != d:               # pragma: no cover - engine bug
            raise AssertionError(
                f"non-deterministic benchmark cell {cell.key()}: "
                f"{digest} != {d}")
    return wall, digest, flags


def _run_pool_cell(cell: BenchCell, repeats: int
                   ) -> Tuple[List[float], Dict[str, int], Dict[str, Any]]:
    """Time ``repeats`` pool fan-outs of ``cell.jobs`` independent runs.

    Measures the parallel runner end to end (spawn, pickling, worker
    simulation, result merge).  Caching is disabled per run so every
    repetition does real work; ``cache_key_extra`` keeps the copies
    distinct through ``run_many``'s dedup.
    """
    from ..experiments.parallel import run_many
    from ..workloads import get_trace

    # Warm the trace cache outside the timed region (shared by workers).
    get_trace(cell.workload, n_records=cell.n_records, scale=cell.scale)
    wall: List[float] = []
    digest: Optional[Dict[str, int]] = None
    for rep in range(repeats):
        global _POOL_TOKEN
        _POOL_TOKEN += 1
        # Unique cache_key_extra per copy defeats run_many's dedup and
        # the memo, so every worker does real work; the pool then seeds
        # the in-process memo, which is what lets run_many's trailing
        # serial pass return without re-simulating.  persistent=False
        # keeps these throwaway runs out of the on-disk store.
        specs = [(cell.workload, cell.scheme,
                  {"cache_key_extra": f"bench-pool-{_POOL_TOKEN}-{i}"})
                 for i in range(cell.jobs)]
        start = time.perf_counter()
        results = run_many(specs, jobs=cell.jobs,
                           n_records=cell.n_records, scale=cell.scale,
                           persistent=False)
        wall.append(time.perf_counter() - start)
        d = _digest(results[0].stats)
        if digest is None:
            digest = d
        elif digest != d:               # pragma: no cover - engine bug
            raise AssertionError(
                f"non-deterministic benchmark cell {cell.key()}")
    return wall, digest, {"fast_path_eligible": cell.scheme == "baseline",
                          "fast_path_downgraded": False}


def run_cell(cell: BenchCell, repeats: int = 3) -> Dict[str, Any]:
    """Measure one cell; returns the history record (not yet appended)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    store = result_store.get_store()
    counters_before = dict(store.counters()) if store is not None else {}
    if cell.jobs > 1:
        wall, digest, flags = _run_pool_cell(cell, repeats)
        effective_records = cell.n_records * cell.jobs
    else:
        wall, digest, flags = _run_serial_cell(cell, repeats)
        effective_records = cell.n_records
    rps = [effective_records / w for w in wall]
    cache_counters = {}
    if store is not None:
        after = store.counters()
        cache_counters = {k: after[k] - counters_before.get(k, 0)
                          for k in after}
    return {
        "version": HISTORY_VERSION,
        "written_at": time.time(),
        "git_rev": git_rev(),
        "code_salt": result_store.code_salt(),
        "fingerprint": _cell_fingerprint(cell),
        "cell": cell.key(),
        "workload": cell.workload,
        "scheme": cell.scheme,
        "n_records": cell.n_records,
        "scale": cell.scale,
        "jobs": cell.jobs,
        "repeats": repeats,
        "wall_s": [round(w, 6) for w in wall],
        "records_per_sec": [round(r, 1) for r in rps],
        "mean_records_per_sec": round(sum(rps) / len(rps), 1),
        "digest": digest,
        "counters": {**flags, "store": cache_counters},
    }


def run_matrix(cells: Iterable[BenchCell], repeats: int = 3,
               progress=None) -> List[Dict[str, Any]]:
    """Measure every cell serially (parallel timing would self-perturb)."""
    records = []
    for cell in cells:
        record = run_cell(cell, repeats=repeats)
        if progress is not None:
            progress(record)
        records.append(record)
    return records


# -- history ---------------------------------------------------------------

def history_path() -> Path:
    return result_store.bench_history_path()


def load_history(path: Optional[Path] = None) -> List[Dict[str, Any]]:
    """Every readable history record, in append (chronological) order."""
    return list(result_store.iter_jsonl(path or history_path()))


def append_history(record: Dict[str, Any],
                   path: Optional[Path] = None) -> Path:
    return result_store.append_jsonl(path or history_path(), record)


def latest_baseline(history: Sequence[Dict[str, Any]],
                    record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The most recent stored entry for the same cell, if any.

    Matched on the cell key (workload/scheme/records/scale/jobs), *not*
    on the code salt or git rev — the gate's job is exactly to compare
    the current code against what was measured before it.
    """
    cell = record.get("cell")
    for entry in reversed(history):
        if entry.get("cell") == cell:
            return entry
    return None


# -- derived view ----------------------------------------------------------

def derive_view(history: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The ``BENCH_throughput.json`` matrix section: latest entry per cell."""
    latest: Dict[str, Dict[str, Any]] = {}
    for entry in history:                # later entries win
        if entry.get("cell"):
            latest[entry["cell"]] = entry
    matrix: Dict[str, Dict[str, Any]] = {}
    for entry in latest.values():
        row = matrix.setdefault(entry["workload"], {})
        scheme_key = entry["scheme"] if entry.get("jobs", 1) == 1 \
            else f"{entry['scheme']}(x{entry['jobs']} jobs)"
        digest = entry.get("digest") or {}
        total_cycles = sum(digest.get(c, 0) for c in
                           ("delivery_cycles", "icache_stall_cycles",
                            "btb_stall_cycles", "mispredict_stall_cycles",
                            "backend_cycles"))
        row[scheme_key] = {
            "records_per_sec": entry["mean_records_per_sec"],
            "n_records": entry["n_records"],
            "scale": entry["scale"],
            "repeats": entry["repeats"],
            "ipc": round(digest.get("instructions", 0) / total_cycles, 4)
            if total_cycles else None,
            "git_rev": entry.get("git_rev", "unknown"),
        }
    return matrix


def write_view(history: Sequence[Dict[str, Any]], path) -> Path:
    """Regenerate the derived throughput view, preserving foreign keys.

    ``BENCH_throughput.json`` has two writers: the engine microbenchmark
    (``benchmarks/test_perf_throughput.py``, the ``engine_microbench``
    section) and this function (the ``matrix`` section).  Each preserves
    the other's section, so the file is always the union of the latest
    measurements.
    """
    path = Path(path)
    existing: Dict[str, Any] = {}
    try:
        loaded = json.loads(path.read_text())
        if isinstance(loaded, dict):
            existing = loaded
    except (OSError, ValueError):
        pass
    view = {
        "version": 2,
        "generated_by": "repro bench",
        "git_rev": git_rev(),
        "written_at": time.time(),
        "matrix": derive_view(history),
    }
    if "engine_microbench" in existing:
        view["engine_microbench"] = existing["engine_microbench"]
    path.write_text(json.dumps(view, indent=2, sort_keys=True) + "\n")
    return path


def render_records(records: Sequence[Dict[str, Any]]) -> str:
    """Human-readable measurement table, one row per cell."""
    lines = [f"{'workload':16s} {'scheme':22s} {'records':>8s} "
             f"{'reps':>5s} {'rec/s':>10s} {'wall':>8s}"]
    for r in records:
        scheme = r["scheme"] if r.get("jobs", 1) == 1 \
            else f"{r['scheme']} (x{r['jobs']} jobs)"
        lines.append(
            f"{r['workload']:16s} {scheme:22s} {r['n_records']:>8d} "
            f"{r['repeats']:>5d} {r['mean_records_per_sec']:>10,.0f} "
            f"{min(r['wall_s']):>7.2f}s")
    return "\n".join(lines)
