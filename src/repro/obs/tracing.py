"""Streaming JSONL event traces (``repro run --trace out.jsonl``).

The ring-buffered :class:`~repro.frontend.eventlog.EventLog` keeps only
the last ``capacity`` events; :class:`JsonlTraceLog` additionally writes
*every* event to a JSON Lines file as it is emitted, so a full run's
event stream survives.  A ``{"marker": "measurement_start"}`` line is
written when the engine resets its statistics after warmup; readers
count events after the last marker, which is what makes the trace
reconcile exactly with the returned
:class:`~repro.frontend.stats.FrontendStats` (see
:func:`repro.obs.telemetry.reconcile`).

Tracing is strictly opt-in: a simulator with ``event_log is None`` takes
the exact pre-observability path, including fast-path eligibility.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Tuple

from ..frontend.eventlog import Event, EventLog

MEASUREMENT_MARKER = "measurement_start"


class JsonlTraceLog(EventLog):
    """An :class:`EventLog` that also streams every event to a file.

    Use as a context manager (or call :meth:`close`) to flush:

    >>> with JsonlTraceLog("out.jsonl") as log:   # doctest: +SKIP
    ...     sim.event_log = log
    ...     sim.run()
    """

    def __init__(self, path, capacity: int = 4096,
                 strict: Optional[bool] = None, extra_kinds=()):
        super().__init__(capacity=capacity, strict=strict,
                         extra_kinds=extra_kinds)
        self.path = path
        self.events_written = 0
        self._fh = open(path, "w", encoding="utf-8")

    def emit(self, cycle: int, kind: str, addr: int,
             detail: str = "", source: str = "") -> None:
        super().emit(cycle, kind, addr, detail, source)
        # The appended event, post-validation (a degraded kind streams
        # as "unknown", same as it was counted).
        event = self._events[-1]
        self._fh.write(json.dumps(event.to_dict(),
                                  separators=(",", ":")) + "\n")
        self.events_written += 1

    def mark_measurement_start(self) -> None:
        super().mark_measurement_start()
        self._fh.write(json.dumps({"marker": MEASUREMENT_MARKER}) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlTraceLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path) -> Tuple[List[Event], Dict[str, int]]:
    """Read a JSONL trace; returns ``(measured_events, counts)``.

    ``measured_events`` are the events after the last measurement marker
    (the whole file when no marker is present), and ``counts`` are their
    per-kind totals — directly comparable with ``FrontendStats`` through
    :func:`repro.obs.telemetry.reconcile`.
    """
    measured: List[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            d = json.loads(raw)
            if d.get("marker") == MEASUREMENT_MARKER:
                measured = []
                continue
            measured.append(Event.from_dict(d))
    counts: Counter = Counter(e.kind for e in measured)
    return measured, dict(counts)


def trace_run(workload: str, scheme: str, out_path,
              n_records: int = 20_000, warmup: Optional[int] = None,
              scale: float = 1.0, variable_length: bool = False,
              config_overrides: Optional[Dict] = None):
    """Simulate one (workload, scheme) pair streaming events to JSONL.

    Returns ``(stats, counts)`` where ``counts`` are the measured-window
    event totals.  Mirrors ``run_scheme``'s construction (same trace,
    config and default warmup of a third of the records) so the returned
    statistics are bit-identical to a cached run of the same parameters
    — but never reads or writes the result caches, because a cached
    result has no event stream.
    """
    from ..experiments.runner import build_scheme
    from ..frontend import FrontendConfig, FrontendSimulator
    from ..workloads import get_generator, get_trace

    if warmup is None:
        warmup = n_records // 3
    prefetcher, scheme_overrides = build_scheme(scheme)
    merged = {**scheme_overrides, **(config_overrides or {})}
    generator = get_generator(workload, scale=scale,
                              variable_length=variable_length)
    trace = get_trace(workload, n_records=n_records, scale=scale,
                      variable_length=variable_length)
    sim = FrontendSimulator(trace, config=FrontendConfig(**merged),
                            prefetcher=prefetcher,
                            program=generator.program)
    with JsonlTraceLog(out_path) as log:
        sim.event_log = log
        stats = sim.run(warmup=warmup)
        counts = dict(log.counts)
    return stats, counts
