"""Engine event traces and request-scoped distributed tracing.

Two tracing planes live here:

* **Engine event traces** — the ring-buffered
  :class:`~repro.frontend.eventlog.EventLog` keeps only the last
  ``capacity`` events; :class:`JsonlTraceLog` additionally writes
  *every* event to a JSON Lines file as it is emitted, so a full run's
  event stream survives.  A ``{"marker": "measurement_start"}`` line is
  written when the engine resets its statistics after warmup; readers
  count events after the last marker, which is what makes the trace
  reconcile exactly with the returned
  :class:`~repro.frontend.stats.FrontendStats` (see
  :func:`repro.obs.telemetry.reconcile`).

* **Request-scoped spans** — :class:`TraceContext` /:class:`Tracer`
  carry one request's identity from :class:`~repro.service.ServiceClient`
  through the HTTP layer (``X-Repro-Trace`` header), the job queue, the
  ``run_many`` worker processes and down to the engine's ``run_scheme``.
  Span/trace ids are **deterministic**: a SHA-256 over a caller-supplied
  seed (the job fingerprint) and a per-process counter — no wall clock,
  no RNG — so a replayed submission names the same trace.  Wall time
  appears only as span *data* (``start_ts``/``duration_s``).  Worker
  processes return their spans as a snapshot and the parent folds them
  in with :meth:`Tracer.merge`, exactly the way
  :meth:`repro.obs.profile.Profiler.merge` folds worker profiles.
  Finished spans are published on the telemetry span bus
  (:func:`repro.obs.telemetry.span_event`) and persisted per trace under
  ``<cache root>/service/traces/``, sharded like the result store.

Engine event tracing is strictly opt-in: a simulator with ``event_log
is None`` takes the exact pre-observability path, including fast-path
eligibility.  Span tracing costs one context-variable read when no
trace is active, and can be disabled wholesale with
``REPRO_TRACE_SAMPLE=0``.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import time
import warnings
from collections import Counter, deque
from contextlib import contextmanager
from pathlib import Path
from threading import Lock
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from ..frontend.eventlog import Event, EventLog

MEASUREMENT_MARKER = "measurement_start"

#: Environment knob: fraction of new traces that are sampled, in [0, 1].
ENV_TRACE_SAMPLE = "REPRO_TRACE_SAMPLE"


class JsonlTraceLog(EventLog):
    """An :class:`EventLog` that also streams every event to a file.

    Use as a context manager (or call :meth:`close`) to flush:

    >>> with JsonlTraceLog("out.jsonl") as log:   # doctest: +SKIP
    ...     sim.event_log = log
    ...     sim.run()
    """

    def __init__(self, path, capacity: int = 4096,
                 strict: Optional[bool] = None, extra_kinds=()):
        super().__init__(capacity=capacity, strict=strict,
                         extra_kinds=extra_kinds)
        self.path = path
        self.events_written = 0
        self._fh = open(path, "w", encoding="utf-8")

    def emit(self, cycle: int, kind: str, addr: int,
             detail: str = "", source: str = "") -> None:
        super().emit(cycle, kind, addr, detail, source)
        # The appended event, post-validation (a degraded kind streams
        # as "unknown", same as it was counted).
        event = self._events[-1]
        self._fh.write(json.dumps(event.to_dict(),
                                  separators=(",", ":")) + "\n")
        self.events_written += 1

    def mark_measurement_start(self) -> None:
        super().mark_measurement_start()
        self._fh.write(json.dumps({"marker": MEASUREMENT_MARKER}) + "\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlTraceLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path) -> Tuple[List[Event], Dict[str, int]]:
    """Read a JSONL trace; returns ``(measured_events, counts)``.

    ``measured_events`` are the events after the last measurement marker
    (the whole file when no marker is present), and ``counts`` are their
    per-kind totals — directly comparable with ``FrontendStats`` through
    :func:`repro.obs.telemetry.reconcile`.
    """
    measured: List[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            d = json.loads(raw)
            if d.get("marker") == MEASUREMENT_MARKER:
                measured = []
                continue
            measured.append(Event.from_dict(d))
    counts: Counter = Counter(e.kind for e in measured)
    return measured, dict(counts)


def trace_run(workload: str, scheme: str, out_path,
              n_records: int = 20_000, warmup: Optional[int] = None,
              scale: float = 1.0, variable_length: bool = False,
              config_overrides: Optional[Dict] = None):
    """Simulate one (workload, scheme) pair streaming events to JSONL.

    Returns ``(stats, counts)`` where ``counts`` are the measured-window
    event totals.  Mirrors ``run_scheme``'s construction (same trace,
    config and default warmup of a third of the records) so the returned
    statistics are bit-identical to a cached run of the same parameters
    — but never reads or writes the result caches, because a cached
    result has no event stream.
    """
    from ..experiments.runner import build_scheme
    from ..frontend import FrontendConfig, FrontendSimulator
    from ..workloads import get_generator, get_trace

    if warmup is None:
        warmup = n_records // 3
    prefetcher, scheme_overrides = build_scheme(scheme)
    merged = {**scheme_overrides, **(config_overrides or {})}
    generator = get_generator(workload, scale=scale,
                              variable_length=variable_length)
    trace = get_trace(workload, n_records=n_records, scale=scale,
                      variable_length=variable_length)
    sim = FrontendSimulator(trace, config=FrontendConfig(**merged),
                            prefetcher=prefetcher,
                            program=generator.program)
    with JsonlTraceLog(out_path) as log:
        sim.event_log = log
        stats = sim.run(warmup=warmup)
        counts = dict(log.counts)
    return stats, counts


# -- request-scoped distributed tracing -------------------------------------

#: The propagation header: ``X-Repro-Trace: <trace_id>-<span_id>``.
TRACE_HEADER = "X-Repro-Trace"

_HEX = set("0123456789abcdef")

#: Sample-rate strings already warned about (one warning per value).
_warned_rates = set()


def _hash_id(*parts: str) -> str:
    """A 16-hex-char id from deterministic inputs only.

    Ids fold a seed (the job fingerprint) and a per-process counter —
    never a wall clock or RNG — so a replayed submission produces the
    same trace id and tests can assert exact linkage.
    """
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def _env_sample_rate() -> float:
    raw = os.environ.get(ENV_TRACE_SAMPLE, "")
    if not raw:
        return 1.0
    try:
        rate = float(raw)
    except ValueError:
        if raw not in _warned_rates:
            _warned_rates.add(raw)
            warnings.warn(
                f"ignoring invalid {ENV_TRACE_SAMPLE}={raw!r} (want a "
                f"float in [0, 1]); sampling every trace",
                RuntimeWarning, stacklevel=3)
        return 1.0
    return min(1.0, max(0.0, rate))


class TraceContext:
    """Identity of the active span: ``(trace_id, span_id)``.

    Immutable and tiny — it crosses the HTTP boundary as the
    :data:`TRACE_HEADER` header and the process boundary inside
    ``run_many`` worker payloads.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("TraceContext is immutable")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id)

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id))

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id!r}, {self.span_id!r})"

    def to_header(self) -> str:
        return f"{self.trace_id}-{self.span_id}"

    @classmethod
    def from_header(cls, value: Optional[str]) -> Optional["TraceContext"]:
        """Parse the propagation header; None for absent/malformed.

        A malformed header is treated as "no trace" rather than an
        error: tracing must never fail a request it is observing.
        """
        if not value:
            return None
        parts = value.strip().split("-")
        if len(parts) != 2:
            return None
        trace_id, span_id = parts
        if not trace_id or not span_id or \
                not set(trace_id) <= _HEX or not set(span_id) <= _HEX:
            return None
        return cls(trace_id, span_id)


class Span:
    """One live span; becomes an immutable record when it finishes.

    ``attrs`` may be mutated while the span is open (the HTTP layer
    stamps the response status on exit); wall-clock times are recorded
    as span *data* only — identity is deterministic.
    """

    __slots__ = ("name", "context", "parent_id", "attrs",
                 "start_ts", "_t0")

    def __init__(self, name: str, context: TraceContext, parent_id: str,
                 attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.context = context
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.start_ts = time.time()
        self._t0 = time.perf_counter()

    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id


class Tracer:
    """Deterministic-id span recorder with context propagation.

    The module-level :data:`TRACER` is the process-wide instance.  The
    *current* context rides a :class:`contextvars.ContextVar`, which is
    what carries it across ``asyncio.to_thread`` into the job executor
    threads for free; crossing a *process* boundary is explicit (the
    worker payload), and the worker's finished spans come back through
    :meth:`snapshot`/:meth:`merge` like profiler snapshots do.
    """

    def __init__(self, sample_rate: Optional[float] = None,
                 capacity: int = 8192):
        self._lock = Lock()
        self._counter = 0
        self._finished: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._current: "contextvars.ContextVar[Optional[TraceContext]]" = \
            contextvars.ContextVar("repro_trace_context", default=None)
        self.sample_rate = (_env_sample_rate() if sample_rate is None
                            else min(1.0, max(0.0, sample_rate)))

    # -- ids and sampling ----------------------------------------------

    def _next(self) -> int:
        with self._lock:
            self._counter += 1
            return self._counter

    def new_trace_id(self, seed: str) -> str:
        return _hash_id("trace", seed, str(self._next()))

    def new_span_id(self, trace_id: str, parent_id: str,
                    name: str) -> str:
        return _hash_id("span", trace_id, parent_id, name,
                        str(self._next()))

    def sampled(self, trace_id: str) -> bool:
        """Deterministic head sampling: a trace id either always records
        or never does, at every hop, without coordination."""
        rate = self.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return int(trace_id[:8], 16) / 0xFFFFFFFF < rate

    # -- context -------------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        return self._current.get()

    @contextmanager
    def attach(self, context: Optional[TraceContext]
               ) -> Iterator[Optional[TraceContext]]:
        """Make ``context`` current without opening a span (workers)."""
        token = self._current.set(context)
        try:
            yield context
        finally:
            self._current.reset(token)

    # -- spans ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, parent: Optional[TraceContext] = None,
             attrs: Optional[Dict[str, Any]] = None,
             span_id: Optional[str] = None,
             seed: Optional[str] = None) -> Iterator[Optional[Span]]:
        """Open one span; yields None when the trace is unsampled.

        With no explicit ``parent`` the current context is used; with
        neither, a new *root* trace is started from ``seed`` (default:
        the span name) if the sampler admits it.  A propagated context
        is always honoured — the sampling decision belongs to the root.
        """
        context = parent if parent is not None else self._current.get()
        if context is None:
            if self.sample_rate <= 0.0:
                yield None
                return
            trace_id = self.new_trace_id(seed if seed is not None
                                         else name)
            if not self.sampled(trace_id):
                yield None
                return
            parent_id = ""
        else:
            trace_id, parent_id = context.trace_id, context.span_id
        sid = span_id if span_id is not None \
            else self.new_span_id(trace_id, parent_id, name)
        span = Span(name, TraceContext(trace_id, sid), parent_id, attrs)
        token = self._current.set(span.context)
        try:
            yield span
        finally:
            self._current.reset(token)
            self._finish(span, time.perf_counter() - span._t0)

    def record_span(self, name: str, parent: Optional[TraceContext],
                    duration_s: float, start_ts: Optional[float] = None,
                    attrs: Optional[Dict[str, Any]] = None
                    ) -> Optional[str]:
        """Record an externally measured child span (queue wait).

        Returns the new span id, or None when there is no parent to
        hang it off.
        """
        if parent is None:
            return None
        sid = self.new_span_id(parent.trace_id, parent.span_id, name)
        span = Span(name, TraceContext(parent.trace_id, sid),
                    parent.span_id, attrs)
        if start_ts is not None:
            span.start_ts = start_ts
        self._finish(span, duration_s)
        return sid

    def _finish(self, span: Span, duration_s: float) -> None:
        from .metrics import inc
        from .telemetry import span_event
        record: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "pid": os.getpid(),
            "start_ts": round(span.start_ts, 6),
            "duration_s": round(max(0.0, duration_s), 6),
        }
        if span.attrs:
            record["attrs"] = {str(k): v for k, v in span.attrs.items()}
        with self._lock:
            self._finished.append(record)
        inc("repro_spans_total", labels={"name": span.name})
        span_event(record)

    # -- buffered spans ------------------------------------------------

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every buffered finished span (worker -> parent transport)."""
        with self._lock:
            return [dict(record) for record in self._finished]

    def merge(self, spans: List[Dict[str, Any]]) -> None:
        """Fold a worker's :meth:`snapshot` into this tracer."""
        with self._lock:
            self._finished.extend(dict(record) for record in spans)

    def spans_for(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(record) for record in self._finished
                    if record.get("trace_id") == trace_id]

    def reset(self) -> None:
        """Drop buffered spans and restart the id counter.

        Pool workers call this at task start (like ``PROFILER.reset()``)
        so a reused worker process's snapshot covers exactly one task.
        """
        with self._lock:
            self._finished.clear()
            self._counter = 0

    # -- persistence ---------------------------------------------------

    def persist(self, trace_id: str,
                root: Optional[Path] = None) -> Optional[Path]:
        """Append a trace's buffered spans to its JSONL stream.

        The stream lives next to the job event streams —
        ``<cache root>/service/traces/<shard>/<trace_id>.jsonl`` —
        written with the same torn-write-safe appender.  Persisted
        spans leave the buffer, so repeated calls append only news.
        Best-effort: returns None (and keeps the buffer) when caching
        is disabled or the write fails.
        """
        from ..experiments import store as result_store
        if root is None:
            if not result_store.caching_enabled():
                return None
            root = result_store.cache_root() / "service" / "traces"
        spans = self.spans_for(trace_id)
        if not spans:
            return None
        path = trace_stream_path(trace_id, root)
        try:
            for record in spans:
                result_store.append_jsonl(path, record)
        except OSError:
            return None
        with self._lock:
            kept = [record for record in self._finished
                    if record.get("trace_id") != trace_id]
            self._finished.clear()
            self._finished.extend(kept)
        return path


def trace_stream_path(trace_id: str, root: Path) -> Path:
    """Where a trace's span stream lives (sharded like the store)."""
    shard = trace_id[:2] if len(trace_id) >= 2 else "00"
    return Path(root) / shard / f"{trace_id}.jsonl"


def read_trace_spans(trace_id: str,
                     root: Optional[Path] = None) -> List[Dict[str, Any]]:
    """Reconstruct one trace from its persisted span stream.

    Spans are deduplicated by span id (leader and follower jobs may
    both persist the shared subtree) and ordered by start time.
    """
    from ..experiments import store as result_store
    if root is None:
        root = result_store.cache_root() / "service" / "traces"
    path = trace_stream_path(trace_id, root)
    seen = set()
    spans: List[Dict[str, Any]] = []
    for record in result_store.iter_jsonl(path):
        span_id = record.get("span_id")
        if not span_id or span_id in seen:
            continue
        seen.add(span_id)
        spans.append(record)
    spans.sort(key=lambda r: (r.get("start_ts", 0.0), r.get("span_id")))
    return spans


#: Process-wide tracer, sampled from ``$REPRO_TRACE_SAMPLE`` at import.
TRACER = Tracer()
