"""Process-wide metrics registry: counters, gauges, histograms.

The service, the job queue, the persistent store and the engine all
report into one :class:`MetricsRegistry` (the module-level
:data:`REGISTRY`), exported as Prometheus text at ``GET /metricsz`` and
``repro stats --metrics``.  Three metric kinds:

* **counters** — monotonic totals (``inc``), optionally labelled;
* **gauges** — last-write-wins levels (``set_gauge``), typically fed by
  *collectors* — callbacks sampled right before every export (queue
  depth, store session counters);
* **histograms** — fixed log-spaced buckets (p50/p95/p99 are derived
  from the cumulative bucket counts, see :func:`quantile_from_buckets`)
  whose bucket lines carry OpenMetrics-style *exemplars*: the span/trace
  id of one observation that landed in the bucket, so a bad p99 bucket
  links to the exact trace (:mod:`repro.obs.tracing`).

Metric names are **string literals at every call site** — declaration
(``declare_counter(...)``) and observation (``inc``/``set_gauge``/
``observe``) alike — which is what lets lint's TEL003/TEL004 rules
check the declared/observed contract statically, the same way TEL001/
TEL002 police the event-kind registry.  At runtime the contract is
enforced the way :class:`~repro.frontend.eventlog.EventLog` enforces
kinds: observing an undeclared metric raises under ``__debug__`` and
degrades to an implicit declaration otherwise.

Everything is guarded by one lock, like
:data:`~repro.obs.telemetry.STORE_EVENT_COUNTS`: the service observes
from ``to_thread`` executor threads and the event loop concurrently.
Collectors run *outside* the lock (they may take other locks, e.g. the
store's counter lock).
"""

from __future__ import annotations

import math
import threading
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

#: Canonical labelset form: sorted ((key, value), ...) pairs.
LabelSet = Tuple[Tuple[str, str], ...]

#: One retained exemplar: (labels, observed value).
Exemplar = Tuple[Dict[str, str], float]

#: A collector samples external state into gauges before an export.
Collector = Callable[[], None]


def log_spaced_buckets(lo: float = 1e-3, hi: float = 100.0,
                       per_decade: int = 4) -> Tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds.

    The default — 1 ms to 100 s, four buckets per decade — brackets
    everything from a memo-hit job to a full bench matrix; fixed bounds
    (rather than adaptive ones) keep scrapes from different processes
    and times directly comparable.
    """
    if lo <= 0 or hi <= lo or per_decade < 1:
        raise ValueError(f"bad bucket range ({lo}, {hi}, {per_decade})")
    lo_e, hi_e = math.log10(lo), math.log10(hi)
    steps = int(round((hi_e - lo_e) * per_decade))
    return tuple(round(10.0 ** (lo_e + i / per_decade), 9)
                 for i in range(steps + 1))


DEFAULT_BUCKETS = log_spaced_buckets()


def _labelset(labels: Optional[Mapping[str, Any]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"') \
                .replace("\n", "\\n")


def _render_labels(labels: LabelSet, extra: str = "") -> str:
    parts = [f'{k}="{_escape(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Common shape of one registered metric (internals lock-guarded)."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help = help_text

    def header(self) -> List[str]:
        return [f"# HELP {self.name} {_escape(self.help)}",
                f"# TYPE {self.name} {self.kind}"]


class _Counter(_Metric):
    kind = "counter"

    def __init__(self, name: str, help_text: str):
        super().__init__(name, help_text)
        self.values: Dict[LabelSet, float] = {}

    def render(self) -> List[str]:
        lines = self.header()
        for labels in sorted(self.values):
            lines.append(f"{self.name}{_render_labels(labels)} "
                         f"{_format_value(self.values[labels])}")
        return lines


class _Gauge(_Counter):
    kind = "gauge"


class _Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs buckets")
        self.bounds = bounds
        #: labelset -> per-bucket counts (one extra slot for +Inf).
        self.counts: Dict[LabelSet, List[int]] = {}
        self.sums: Dict[LabelSet, float] = {}
        self.totals: Dict[LabelSet, int] = {}
        #: labelset -> bucket index -> last exemplar landing there.
        self.exemplars: Dict[LabelSet, Dict[int, Exemplar]] = {}

    def observe(self, value: float, labels: LabelSet,
                exemplar: Optional[Mapping[str, str]] = None) -> None:
        counts = self.counts.get(labels)
        if counts is None:
            counts = self.counts[labels] = [0] * (len(self.bounds) + 1)
            self.sums[labels] = 0.0
            self.totals[labels] = 0
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        counts[index] += 1
        self.sums[labels] += value
        self.totals[labels] += 1
        if exemplar:
            slots = self.exemplars.setdefault(labels, {})
            slots[index] = ({str(k): str(v) for k, v in exemplar.items()},
                            float(value))

    def render(self) -> List[str]:
        lines = self.header()
        for labels in sorted(self.counts):
            counts = self.counts[labels]
            slots = self.exemplars.get(labels, {})
            cumulative = 0
            for i, bound in enumerate(list(self.bounds) + [math.inf]):
                cumulative += counts[i]
                le = _render_labels(labels,
                                    extra=f'le="{_format_value(bound)}"')
                line = f"{self.name}_bucket{le} {cumulative}"
                if i in slots:
                    ex_labels, ex_value = slots[i]
                    ex = ",".join(f'{k}="{_escape(v)}"'
                                  for k, v in sorted(ex_labels.items()))
                    line += (f" # {{{ex}}} "
                             f"{_format_value(ex_value)}")
                lines.append(line)
            label_text = _render_labels(labels)
            lines.append(f"{self.name}_sum{label_text} "
                         f"{_format_value(self.sums[labels])}")
            lines.append(f"{self.name}_count{label_text} "
                         f"{self.totals[labels]}")
        return lines

    def quantile(self, q: float, labels: LabelSet = ()) -> Optional[float]:
        counts = self.counts.get(labels)
        if counts is None or self.totals.get(labels, 0) == 0:
            return None
        cumulative = 0
        pairs = []
        for i, bound in enumerate(self.bounds):
            cumulative += counts[i]
            pairs.append((bound, cumulative))
        pairs.append((math.inf, cumulative + counts[-1]))
        return quantile_from_buckets(pairs, q)


def quantile_from_buckets(pairs: Sequence[Tuple[float, float]],
                          q: float) -> Optional[float]:
    """Estimate a quantile from cumulative histogram buckets.

    ``pairs`` are ``(upper_bound, cumulative_count)`` rows, ascending
    (the shape of Prometheus ``_bucket`` lines).  Linear interpolation
    inside the landing bucket, which is the standard ``histogram_quantile``
    estimate; a quantile landing in the +Inf bucket reports the last
    finite bound (the histogram cannot resolve beyond its range).
    """
    if not pairs:
        return None
    total = pairs[-1][1]
    if total <= 0:
        return None
    rank = q * total
    prev_bound, prev_count = 0.0, 0.0
    last_finite = 0.0
    for bound, count in pairs:
        if bound != math.inf:
            last_finite = bound
        if count >= rank:
            if bound == math.inf:
                return last_finite if last_finite else prev_bound
            width = count - prev_count
            if width <= 0:
                return bound
            fraction = (rank - prev_count) / width
            return prev_bound + (bound - prev_bound) * fraction
        prev_bound, prev_count = (bound if bound != math.inf
                                  else prev_bound), count
    return last_finite


class MetricsRegistry:
    """One process's metric namespace (usually :data:`REGISTRY`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Collector] = []
        #: Collector exceptions swallowed by :meth:`collect`; drops are
        #: counted (best-effort, unguarded) rather than lost silently.
        self.collector_errors = 0

    # -- declaration ---------------------------------------------------

    def _declare(self, cls: Type[_Metric], name: str, help_text: str,
                 **kwargs: Any) -> _Metric:
        if not name.replace("_", "").replace(":", "").isalnum() \
                or name[0].isdigit():
            raise ValueError(f"bad metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
            return metric

    def declare_counter(self, name: str, help_text: str) -> None:
        """Register a monotonic counter (idempotent)."""
        self._declare(_Counter, name, help_text)

    def declare_gauge(self, name: str, help_text: str) -> None:
        """Register a last-write-wins gauge (idempotent)."""
        self._declare(_Gauge, name, help_text)

    def declare_histogram(self, name: str, help_text: str,
                          buckets: Optional[Sequence[float]] = None) -> None:
        """Register a fixed-bucket histogram (idempotent)."""
        self._declare(_Histogram, name, help_text,
                      buckets=tuple(buckets) if buckets is not None
                      else DEFAULT_BUCKETS)

    def _resolve(self, name: str, cls: Type[_Metric]) -> _Metric:
        """Lock held.  The declared metric, or the runtime fallback.

        Mirrors :class:`~repro.frontend.eventlog.EventLog` kind
        validation: an undeclared observation raises under ``__debug__``
        (tests and CI see it immediately) and degrades to an implicit
        declaration under ``-O`` — production observability must never
        crash the simulation it observes.
        """
        metric = self._metrics.get(name)  # repro: noqa[LCK001] -- callers hold _lock
        if metric is None:
            if __debug__:
                raise ValueError(
                    f"metric {name!r} observed but never declared; "
                    f"declare it in repro.obs.metrics (lint rule TEL003)")
            metric = cls(name, "(undeclared)")
            self._metrics[name] = metric  # repro: noqa[LCK001] -- callers hold _lock
        elif not isinstance(metric, cls) or \
                (cls is _Counter and type(metric) is not _Counter):
            raise ValueError(f"metric {name!r} is a {metric.kind}, "
                             f"observed as {cls.kind}")
        return metric

    # -- observation ---------------------------------------------------

    def inc(self, name: str, n: float = 1.0,
            labels: Optional[Mapping[str, Any]] = None) -> None:
        key = _labelset(labels)
        with self._lock:
            metric = self._resolve(name, _Counter)
            assert isinstance(metric, _Counter)
            metric.values[key] = metric.values.get(key, 0.0) + n

    def set_gauge(self, name: str, value: float,
                  labels: Optional[Mapping[str, Any]] = None) -> None:
        key = _labelset(labels)
        with self._lock:
            metric = self._resolve(name, _Gauge)
            assert isinstance(metric, _Gauge)
            metric.values[key] = float(value)

    def observe(self, name: str, value: float,
                labels: Optional[Mapping[str, Any]] = None,
                exemplar: Optional[Mapping[str, str]] = None) -> None:
        key = _labelset(labels)
        with self._lock:
            metric = self._resolve(name, _Histogram)
            assert isinstance(metric, _Histogram)
            metric.observe(float(value), key, exemplar=exemplar)

    # -- collectors ----------------------------------------------------

    def add_collector(self, collector: Collector) -> Collector:
        """Register a pre-export sampler (queue depth, store counters)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)
        return collector

    def remove_collector(self, collector: Collector) -> None:
        with self._lock:
            try:
                self._collectors.remove(collector)
            except ValueError:
                pass

    def collect(self) -> None:
        """Run every collector (outside the lock; errors swallowed)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:   # noqa: BLE001 - observers are best-effort
                self.collector_errors += 1

    # -- export --------------------------------------------------------

    def render(self) -> str:
        """The registry as Prometheus text exposition format."""
        self.collect()
        lines: List[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                lines.extend(self._metrics[name].render())
        return "\n".join(lines) + "\n"

    def quantiles(self, name: str, qs: Sequence[float],
                  labels: Optional[Mapping[str, Any]] = None
                  ) -> Dict[float, Optional[float]]:
        """Quantile estimates for one histogram (None when empty)."""
        key = _labelset(labels)
        with self._lock:
            metric = self._metrics.get(name)
            if not isinstance(metric, _Histogram):
                return {q: None for q in qs}
            return {q: metric.quantile(q, key) for q in qs}

    def snapshot(self) -> Dict[str, Any]:
        """Machine-readable dump, also the :meth:`merge` input.

        Labelsets are encoded as lists of ``[key, value]`` pairs so the
        snapshot survives JSON and pickling across worker processes.
        """
        self.collect()
        out: Dict[str, Any] = {"counters": {}, "gauges": {},
                               "histograms": {}}
        with self._lock:
            for name, metric in sorted(self._metrics.items()):
                if isinstance(metric, _Histogram):
                    out["histograms"][name] = {
                        "buckets": list(metric.bounds),
                        "series": [
                            {"labels": [list(kv) for kv in labels],
                             "counts": list(metric.counts[labels]),
                             "sum": metric.sums[labels],
                             "count": metric.totals[labels]}
                            for labels in sorted(metric.counts)],
                    }
                elif isinstance(metric, _Gauge):
                    out["gauges"][name] = [
                        {"labels": [list(kv) for kv in labels],
                         "value": metric.values[labels]}
                        for labels in sorted(metric.values)]
                elif isinstance(metric, _Counter):
                    out["counters"][name] = [
                        {"labels": [list(kv) for kv in labels],
                         "value": metric.values[labels]}
                        for labels in sorted(metric.values)]
        return out

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another process's :meth:`snapshot` into this registry.

        The parallel runner carries worker-process metrics back through
        the pool the same way :meth:`repro.obs.profile.Profiler.merge`
        carries profiler spans: counters and histogram buckets add,
        gauges overwrite (a worker's last level wins for its labelset).
        Unknown names are folded in as implicitly declared — the worker
        ran the same code, so in practice they are always declared here
        too.
        """
        for name, series in snapshot.get("counters", {}).items():
            for row in series:
                self.inc(name, float(row.get("value", 0.0)),
                         labels=dict(tuple(kv) for kv in row["labels"]))
        for name, series in snapshot.get("gauges", {}).items():
            for row in series:
                self.set_gauge(name, float(row.get("value", 0.0)),
                               labels=dict(tuple(kv)
                                           for kv in row["labels"]))
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(float(b) for b in data.get("buckets", ()))
            with self._lock:
                metric = self._resolve(name, _Histogram)
                assert isinstance(metric, _Histogram)
                if metric.bounds != bounds:
                    continue    # incompatible shape: drop, never corrupt
                for row in data.get("series", ()):
                    labels: LabelSet = tuple(
                        (str(k), str(v)) for k, v in row["labels"])
                    counts = metric.counts.get(labels)
                    if counts is None:
                        counts = metric.counts[labels] = \
                            [0] * (len(bounds) + 1)
                        metric.sums[labels] = 0.0
                        metric.totals[labels] = 0
                    for i, n in enumerate(row["counts"]):
                        counts[i] += int(n)
                    metric.sums[labels] += float(row.get("sum", 0.0))
                    metric.totals[labels] += int(row.get("count", 0))

    def reset_values(self) -> None:
        """Zero every series, keep declarations and collectors (tests)."""
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, _Histogram):
                    metric.counts.clear()
                    metric.sums.clear()
                    metric.totals.clear()
                    metric.exemplars.clear()
                elif isinstance(metric, _Counter):
                    metric.values.clear()


def parse_prometheus_text(text: str
                          ) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text exposition into ``{series: [(labels, v)]}``.

    The inverse of :meth:`MetricsRegistry.render`, used by ``repro top``
    and the CI scrape assertions.  Exemplar suffixes (``# {...} v``) are
    stripped; comment and malformed lines are skipped, mirroring how
    :func:`~repro.experiments.store.iter_jsonl` tolerates torn lines.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if " # " in line:
            line = line.split(" # ", 1)[0].rstrip()
        labels: Dict[str, str] = {}
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, _, value_text = rest.rpartition("}")
            for part in _split_labels(label_text):
                key, _, value = part.partition("=")
                labels[key.strip()] = value.strip().strip('"') \
                    .replace('\\"', '"').replace("\\\\", "\\")
        else:
            name, _, value_text = line.partition(" ")
        value_text = value_text.strip()
        try:
            value = (math.inf if value_text == "+Inf"
                     else float(value_text))
        except ValueError:
            continue
        out.setdefault(name.strip(), []).append((labels, value))
    return out


def _split_labels(text: str) -> List[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in text:
        if escaped:
            current.append(ch)
            escaped = False
        elif ch == "\\":
            current.append(ch)
            escaped = True
        elif ch == '"':
            current.append(ch)
            in_quotes = not in_quotes
        elif ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


#: The process-wide registry every subsystem reports into.
REGISTRY = MetricsRegistry()


# -- module-level convenience (the lintable call-site API) ------------------

def declare_counter(name: str, help_text: str) -> None:
    REGISTRY.declare_counter(name, help_text)


def declare_gauge(name: str, help_text: str) -> None:
    REGISTRY.declare_gauge(name, help_text)


def declare_histogram(name: str, help_text: str,
                      buckets: Optional[Sequence[float]] = None) -> None:
    REGISTRY.declare_histogram(name, help_text, buckets=buckets)


def inc(name: str, n: float = 1.0,
        labels: Optional[Mapping[str, Any]] = None) -> None:
    REGISTRY.inc(name, n, labels=labels)


def set_gauge(name: str, value: float,
              labels: Optional[Mapping[str, Any]] = None) -> None:
    REGISTRY.set_gauge(name, value, labels=labels)


def observe(name: str, value: float,
            labels: Optional[Mapping[str, Any]] = None,
            exemplar: Optional[Mapping[str, str]] = None) -> None:
    REGISTRY.observe(name, value, labels=labels, exemplar=exemplar)


def render_metrics() -> str:
    """The process registry as Prometheus text (``/metricsz``)."""
    return REGISTRY.render()


# -- the core catalogue -----------------------------------------------------
#
# Declared at import so every process exposes the same schema; each name
# here has a static observation site (lint rule TEL004 enforces it).

declare_counter("repro_http_requests_total",
                "HTTP requests answered by repro serve, by method/status")
declare_counter("repro_jobs_submitted_total", "jobs accepted into the queue")
declare_counter("repro_jobs_rejected_total",
                "submissions refused by queue backpressure (429)")
declare_counter("repro_jobs_completed_total", "jobs finished successfully")
declare_counter("repro_jobs_failed_total", "jobs that raised")
declare_counter("repro_jobs_cancelled_total", "jobs cancelled while queued")
declare_counter("repro_jobs_deduped_total",
                "jobs served by single-flight dedupe (awaited a leader)")
declare_counter("repro_runs_total", "engine simulations executed")
declare_counter("repro_records_simulated_total",
                "trace records fed through the engine")
declare_counter("repro_spans_total", "trace spans finished, by span name")

declare_gauge("repro_job_queue_depth", "jobs waiting in the bounded queue")
declare_gauge("repro_jobs_running", "jobs currently executing")
declare_gauge("repro_jobs_inflight",
              "distinct fingerprints currently executing (dedupe groups)")
declare_gauge("repro_store_hits", "persistent store session hits")
declare_gauge("repro_store_misses", "persistent store session misses")
declare_gauge("repro_store_writes", "persistent store session writes")
declare_gauge("repro_store_corrupt",
              "persistent store entries that failed to parse")
declare_gauge("repro_store_evicted",
              "entries removed by the LRU byte budget this session")
declare_gauge("repro_store_migrated",
              "flat legacy entries moved into their shard this session")
declare_gauge("repro_store_invalidations",
              "entries removed by clear() this session")

declare_histogram("repro_job_latency_seconds",
                  "job wall time, submission to terminal state")
declare_histogram("repro_job_queue_wait_seconds",
                  "time a job spent queued before a worker picked it up")
declare_histogram("repro_run_seconds",
                  "engine wall time of one simulated (workload, scheme)")


def _store_collector() -> None:
    """Sample the persistent store's session counters into gauges.

    Imported lazily for the same reason
    :func:`repro.experiments.store._notify` is: the store must not
    import its observers at module load.
    """
    from ..experiments import store as result_store
    st = result_store.get_store()
    if st is None:
        return
    counters = st.counters()
    set_gauge("repro_store_hits", counters["hits"])
    set_gauge("repro_store_misses", counters["misses"])
    set_gauge("repro_store_writes", counters["writes"])
    set_gauge("repro_store_corrupt", counters["corrupt"])
    set_gauge("repro_store_evicted", counters["evicted"])
    set_gauge("repro_store_migrated", counters["migrated"])
    set_gauge("repro_store_invalidations", counters["invalidations"])


REGISTRY.add_collector(_store_collector)
