"""Observability: structured telemetry, profiling hooks, run manifests.

The ``repro.obs`` package is the unified observability layer threaded
through the engine, the prefetchers, the experiment runner and the CLI:

* :mod:`repro.obs.telemetry` — per-prefetcher component counters
  (coverage / accuracy / timeliness / pollution per SN4L, Dis, … source)
  and the event-count <-> :class:`~repro.frontend.stats.FrontendStats`
  reconciliation used by the trace smoke test;
* :mod:`repro.obs.profile` — context-manager timing spans and monotonic
  counters (``PROFILER``) instrumenting ``run_scheme``, the parallel
  pool and the persistent store;
* :mod:`repro.obs.tracing` — streaming JSONL event traces
  (``repro run --trace out.jsonl``) and their readers;
* :mod:`repro.obs.bench` — the ``repro bench`` benchmark matrix with
  its append-only JSONL measurement history (and the derived
  ``BENCH_throughput.json`` view);
* :mod:`repro.obs.regress` — the statistical regression gate
  (``repro bench --check``): t-interval comparison against the stored
  baseline plus deterministic behaviour-digest matching;
* :mod:`repro.obs.traceql` — trace analytics (``repro trace
  summarize|diff|query``) with per-component drift attribution.

Everything here is opt-in: with no event log attached and no profiler
consumer, the default simulation path is unchanged (the engine's
``event_log is None`` fast path and fast-path eligibility are
preserved).
"""

from .bench import BenchCell, MATRICES, run_cell, run_matrix
from .metrics import (
    REGISTRY,
    MetricsRegistry,
    declare_counter,
    declare_gauge,
    declare_histogram,
    inc,
    log_spaced_buckets,
    observe,
    parse_prometheus_text,
    quantile_from_buckets,
    render_metrics,
    set_gauge,
)
from .profile import PROFILER, Profiler, SpanStats
from .regress import Verdict, check_record, check_records, markdown_report
from .telemetry import (
    RECONCILED_COUNTERS,
    SPAN_EVENT_COUNTS,
    STORE_EVENT_COUNTS,
    ComponentCounters,
    add_span_listener,
    add_store_listener,
    component_report,
    reconcile,
    remove_span_listener,
    remove_store_listener,
    span_event,
    span_event_counts,
    store_event,
    store_event_counts,
)
from .traceql import diff_traces, query_trace, summarize_trace
from .tracing import (
    TRACER,
    JsonlTraceLog,
    Span,
    TraceContext,
    Tracer,
    read_trace,
    read_trace_spans,
    trace_run,
)

__all__ = [
    "PROFILER",
    "Profiler",
    "SpanStats",
    "ComponentCounters",
    "RECONCILED_COUNTERS",
    "STORE_EVENT_COUNTS",
    "add_store_listener",
    "remove_store_listener",
    "store_event",
    "store_event_counts",
    "reconcile",
    "component_report",
    "JsonlTraceLog",
    "read_trace",
    "trace_run",
    "TRACER",
    "Tracer",
    "TraceContext",
    "Span",
    "read_trace_spans",
    "REGISTRY",
    "MetricsRegistry",
    "declare_counter",
    "declare_gauge",
    "declare_histogram",
    "inc",
    "set_gauge",
    "observe",
    "render_metrics",
    "parse_prometheus_text",
    "quantile_from_buckets",
    "log_spaced_buckets",
    "SPAN_EVENT_COUNTS",
    "add_span_listener",
    "remove_span_listener",
    "span_event",
    "span_event_counts",
    "BenchCell",
    "MATRICES",
    "run_cell",
    "run_matrix",
    "Verdict",
    "check_record",
    "check_records",
    "markdown_report",
    "diff_traces",
    "query_trace",
    "summarize_trace",
]
