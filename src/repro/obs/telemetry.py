"""Per-component telemetry and event/counter reconciliation.

Three concerns live here:

* :class:`ComponentCounters` — attribution of prefetch outcomes to the
  *component* that issued them (``sn4l``, ``dis``, a baseline
  prefetcher's name, …).  The paper's argument is exactly this division:
  sequential, discontinuity and BTB misses are conquered by separate
  mechanisms, so coverage/accuracy/timeliness must be measurable per
  mechanism (the Fig. 6/9-style breakdowns).  Enabled with
  ``FrontendSimulator.enable_component_telemetry()``; costs nothing when
  off (``None`` checks on prefetch paths only).
* :func:`reconcile` — the invariant that telemetry can never drift from
  the statistics: for every counter in :data:`RECONCILED_COUNTERS`, the
  number of emitted events of the paired kind must equal the counter
  exactly.  CI's trace smoke job asserts this for every registered
  scheme.
* :func:`store_event` — the persistent store's lifecycle bus.  The
  store (:mod:`repro.experiments.store`) reports corrupt entries,
  evictions and singleton re-points here; listeners registered with
  :func:`add_store_listener` (the ``repro serve`` job event stream,
  tests) observe them without the store importing any consumer.
* :func:`span_event` — the same bus pattern for *finished trace spans*
  (:mod:`repro.obs.tracing`): every span record is published to
  listeners registered with :func:`add_span_listener`, and
  :data:`SPAN_EVENT_COUNTS` aggregates finished spans by name even when
  nobody listens.
"""

from __future__ import annotations

import threading
from collections import Counter, defaultdict
from typing import Any, Callable, Dict, List, Mapping, Tuple

#: A store lifecycle listener: called as ``listener(kind, fields)``.
StoreListener = Callable[[str, Dict[str, Any]], None]

_STORE_LISTENERS: List[StoreListener] = []

#: Store lifecycle events seen this process, by kind ("corrupt",
#: "evict", "repoint", ...) — a cheap aggregate surface (``repro
#: stats``) even when no listener is registered.  The service publishes
#: store events from ``to_thread`` executor threads *and* the loop
#: thread concurrently, so the counter and the listener list are
#: guarded by :data:`_BUS_LOCK`; read snapshots via
#: :func:`store_event_counts`.
STORE_EVENT_COUNTS: Counter = Counter()

#: Listener exceptions swallowed per bus ("store" / "span").  Observers
#: are best-effort — a failing listener must never take down the
#: publisher — but the drops stay countable instead of vanishing.
DROPPED_LISTENER_ERRORS: Counter = Counter()

_BUS_LOCK = threading.Lock()


def add_store_listener(listener: StoreListener) -> StoreListener:
    """Register a callback for persistent-store lifecycle events."""
    with _BUS_LOCK:
        _STORE_LISTENERS.append(listener)
    return listener


def remove_store_listener(listener: StoreListener) -> None:
    """Unregister a listener (no-op if it was never added)."""
    with _BUS_LOCK:
        try:
            _STORE_LISTENERS.remove(listener)
        except ValueError:
            pass


def store_event_counts() -> Dict[str, int]:
    """A consistent snapshot of the event counts, sorted by kind."""
    with _BUS_LOCK:
        return dict(sorted(STORE_EVENT_COUNTS.items()))


def store_event(kind: str, **fields: Any) -> None:
    """Publish one store lifecycle event to every listener.

    Listeners must never break the store: exceptions are swallowed
    (a cache layer failing because an observer crashed would invert
    the dependency the bus exists to avoid).  The count bump and the
    listener snapshot happen under the bus lock — ``Counter.__iadd__``
    is a read-modify-write, and the service's worker threads publish
    concurrently with the loop — but the listeners themselves run
    outside it, so a slow observer cannot stall every other publisher.
    """
    with _BUS_LOCK:
        STORE_EVENT_COUNTS[kind] += 1
        listeners = list(_STORE_LISTENERS)
    for listener in listeners:
        try:
            listener(kind, dict(fields))
        except Exception:       # noqa: BLE001 - observers are best-effort
            DROPPED_LISTENER_ERRORS["store"] += 1

#: A span listener: called with one finished span record (a dict with
#: trace_id/span_id/parent_id/name/start_ts/duration_s keys).
SpanListener = Callable[[Dict[str, Any]], None]

_SPAN_LISTENERS: List[SpanListener] = []

#: Finished spans seen this process, by span name — the cheap aggregate
#: surface mirroring :data:`STORE_EVENT_COUNTS`.  Shares
#: :data:`_BUS_LOCK`: spans finish on the service's loop thread,
#: ``to_thread`` executor threads and pool-merge paths concurrently.
SPAN_EVENT_COUNTS: Counter = Counter()


def add_span_listener(listener: SpanListener) -> SpanListener:
    """Register a callback for finished trace spans."""
    with _BUS_LOCK:
        _SPAN_LISTENERS.append(listener)
    return listener


def remove_span_listener(listener: SpanListener) -> None:
    """Unregister a span listener (no-op if it was never added)."""
    with _BUS_LOCK:
        try:
            _SPAN_LISTENERS.remove(listener)
        except ValueError:
            pass


def span_event_counts() -> Dict[str, int]:
    """A consistent snapshot of finished-span counts by span name."""
    with _BUS_LOCK:
        return dict(sorted(SPAN_EVENT_COUNTS.items()))


def span_event(record: Dict[str, Any]) -> None:
    """Publish one finished span to every span listener.

    Same contract as :func:`store_event`: the count bump happens under
    the bus lock, listeners run outside it, and listener exceptions are
    swallowed — tracing must never fail the request it observes.
    """
    with _BUS_LOCK:
        SPAN_EVENT_COUNTS[record.get("name", "unknown")] += 1
        listeners = list(_SPAN_LISTENERS)
    for listener in listeners:
        try:
            listener(dict(record))
        except Exception:       # noqa: BLE001 - observers are best-effort
            DROPPED_LISTENER_ERRORS["span"] += 1


#: event kind -> FrontendStats attribute that must match its count.
RECONCILED_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("demand_hit", "demand_hits"),
    ("demand_miss", "demand_misses"),
    ("demand_late", "demand_late_prefetch"),
    ("prefetch", "prefetches_issued"),
    ("btb_miss", "btb_misses"),
    ("btb_rescue", "btb_buffer_fills"),
    ("mispredict", "mispredicts"),
)


def reconcile(stats, counts: Mapping[str, int]) -> Dict[str, Tuple[int, int]]:
    """Compare event counts against the statistics counters.

    Returns ``{kind: (event_count, stats_count)}`` for every reconciled
    pair that disagrees — empty means telemetry and counters agree.
    """
    mismatches: Dict[str, Tuple[int, int]] = {}
    for kind, attr in RECONCILED_COUNTERS:
        emitted = int(counts.get(kind, 0))
        counted = int(getattr(stats, attr))
        if emitted != counted:
            mismatches[kind] = (emitted, counted)
    return mismatches


class ComponentCounters:
    """Prefetch outcome counters keyed by issuing component.

    The engine pops/pushes these on the same code paths that update
    :class:`~repro.frontend.stats.FrontendStats`, so per-source sums
    always equal the aggregate counters:

    ``sum(issued) == prefetches_issued``,
    ``sum(useful) == prefetches_useful`` *(for prefetch-credited
    useful events after telemetry was enabled)*, and so on.
    """

    def __init__(self):
        self.issued: Counter = Counter()
        self.useful: Counter = Counter()
        self.useless: Counter = Counter()
        self.late: Counter = Counter()
        self.covered_latency: Dict[str, float] = defaultdict(float)
        self.prefetched_latency: Dict[str, float] = defaultdict(float)

    def reset(self) -> None:
        """Zero every counter (engine warmup reset)."""
        self.issued.clear()
        self.useful.clear()
        self.useless.clear()
        self.late.clear()
        self.covered_latency.clear()
        self.prefetched_latency.clear()

    # -- engine hooks --------------------------------------------------

    def on_issue(self, source: str) -> None:
        self.issued[source] += 1

    def on_useful(self, source: str, covered: float, full: float,
                  late: bool = False) -> None:
        self.useful[source] += 1
        if late:
            self.late[source] += 1
        self.covered_latency[source] += covered
        self.prefetched_latency[source] += full

    def on_useless(self, source: str) -> None:
        self.useless[source] += 1

    # -- derived metrics ----------------------------------------------

    def sources(self) -> List[str]:
        keys = (set(self.issued) | set(self.useful) | set(self.useless)
                | set(self.late))
        return sorted(keys)

    def accuracy(self, source: str) -> float:
        done = self.useful[source] + self.useless[source]
        return self.useful[source] / done if done else 0.0

    def timeliness(self, source: str) -> float:
        """Covered fraction of the fill latency (per-component CMAL)."""
        full = self.prefetched_latency[source]
        return self.covered_latency[source] / full if full else 0.0

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Machine-readable snapshot, one row per source."""
        return {
            src: {
                "issued": float(self.issued[src]),
                "useful": float(self.useful[src]),
                "useless": float(self.useless[src]),
                "late": float(self.late[src]),
                "accuracy": self.accuracy(src),
                "timeliness": self.timeliness(src),
                "covered_latency": self.covered_latency[src],
                "prefetched_latency": self.prefetched_latency[src],
            }
            for src in self.sources()
        }

    def render(self) -> str:
        """Human-readable per-component table."""
        lines = [f"{'component':14s} {'issued':>8s} {'useful':>8s} "
                 f"{'useless':>8s} {'late':>6s} {'accuracy':>9s} "
                 f"{'cmal':>7s}"]
        for src in self.sources():
            name = src or "(untagged)"
            lines.append(
                f"{name:14s} {self.issued[src]:>8d} {self.useful[src]:>8d} "
                f"{self.useless[src]:>8d} {self.late[src]:>6d} "
                f"{self.accuracy(src):>9.1%} {self.timeliness(src):>7.1%}")
        return "\n".join(lines)


def component_report(workload: str, scheme: str, n_records: int = 20_000,
                     warmup: int = None, scale: float = 1.0,
                     variable_length: bool = False):
    """Run one (workload, scheme) pair with component telemetry enabled.

    Returns ``(stats, ComponentCounters)``.  This always simulates (a
    cached result has no component attribution), mirroring the
    construction :func:`repro.experiments.runner.run_scheme` uses so the
    aggregate counters are identical to a cached run of the same
    parameters.
    """
    from ..experiments.runner import build_scheme
    from ..frontend import FrontendConfig, FrontendSimulator
    from ..workloads import get_generator, get_trace

    if warmup is None:
        warmup = n_records // 3
    prefetcher, overrides = build_scheme(scheme)
    generator = get_generator(workload, scale=scale,
                              variable_length=variable_length)
    trace = get_trace(workload, n_records=n_records, scale=scale,
                      variable_length=variable_length)
    sim = FrontendSimulator(trace, config=FrontendConfig(**overrides),
                            prefetcher=prefetcher,
                            program=generator.program)
    counters = sim.enable_component_telemetry()
    stats = sim.run(warmup=warmup)
    return stats, counters
