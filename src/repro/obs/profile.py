"""Lightweight profiling: timing spans and monotonic counters.

A :class:`Profiler` aggregates named wall-clock spans (count / total /
min / max) and integer counters.  The module-level :data:`PROFILER` is
the process-wide instance the experiment layer reports into:

* ``run_scheme`` — simulation wall time, memo/store hit and miss counts;
* ``run_many`` — pool wall time, per-worker run time, queue wait;
* the persistent store — hit/miss/corrupt/invalidation totals are read
  directly off :class:`~repro.experiments.store.ResultStore`.

Costs are one ``perf_counter()`` pair per span — these wrap whole
simulation runs, never per-record work, so the engine's hot loops are
untouched.  ``repro stats`` renders the snapshot.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SpanStats:
    """Aggregate of one named span."""

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": float(self.count), "total_s": self.total,
                "mean_s": self.mean,
                "min_s": self.min if self.count else 0.0,
                "max_s": self.max}


class Profiler:
    """Named timing spans plus monotonic counters."""

    def __init__(self):
        self.counters: Counter = Counter()
        self._spans: Dict[str, SpanStats] = {}

    @contextmanager
    def span(self, name: str):
        """Context manager timing one span occurrence."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into span ``name``."""
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = SpanStats()
        span.add(seconds)

    def incr(self, name: str, n: int = 1) -> None:
        self.counters[name] += n

    def span_stats(self, name: str) -> SpanStats:
        return self._spans.get(name, SpanStats())

    def merge(self, snapshot: Dict) -> None:
        """Fold another profiler's :meth:`snapshot` into this one.

        Used by the parallel runner to carry worker-process counters and
        spans back into the parent, so ``repro stats`` reports pool-wide
        totals rather than silently dropping everything that happened in
        a worker.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] += int(value)
        for name, data in snapshot.get("spans", {}).items():
            count = int(data.get("count", 0))
            if count <= 0:
                continue
            span = self._spans.get(name)
            if span is None:
                span = self._spans[name] = SpanStats()
            span.count += count
            span.total += float(data.get("total_s", 0.0))
            span.min = min(span.min, float(data.get("min_s", span.min)))
            span.max = max(span.max, float(data.get("max_s", span.max)))

    def snapshot(self) -> Dict:
        """Machine-readable dump of every counter and span."""
        return {
            "counters": dict(self.counters),
            "spans": {name: span.as_dict()
                      for name, span in sorted(self._spans.items())},
        }

    def reset(self) -> None:
        self.counters.clear()
        self._spans.clear()

    def render(self) -> str:
        """Human-readable profile table (spans, then counters)."""
        lines = []
        if self._spans:
            lines.append(f"{'span':28s} {'count':>7s} {'total':>9s} "
                         f"{'mean':>9s} {'max':>9s}")
            for name, span in sorted(self._spans.items()):
                lines.append(f"{name:28s} {span.count:>7d} "
                             f"{span.total:>8.3f}s {span.mean:>8.3f}s "
                             f"{span.max:>8.3f}s")
        if self.counters:
            if lines:
                lines.append("")
            lines.append(f"{'counter':36s} {'value':>10s}")
            for name in sorted(self.counters):
                lines.append(f"{name:36s} {self.counters[name]:>10d}")
        return "\n".join(lines) if lines else "(no profile data)"


#: Process-wide profiler the experiment layer reports into.
PROFILER = Profiler()
