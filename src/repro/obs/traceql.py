"""Trace analytics over JSONL event traces: summarize, diff, query.

``repro run --trace out.jsonl`` streams every engine event to disk
(:mod:`repro.obs.tracing`); this module answers questions about such
files after the fact:

* :func:`summarize_trace` — per-kind / per-source / per-component event
  totals and the covered cycle span of the measured window;
* :func:`diff_traces` — align two traces, report per-kind and
  per-component counter drift, and pinpoint the **first diverging
  event** (same-cycle events are canonicalised by
  :meth:`~repro.frontend.eventlog.Event.sort_key` first, so engine-
  internal emission order within a cycle never reads as a divergence);
* :func:`query_trace` — filter events by kind, source and cycle range.

Component buckets mirror the paper's division of the frontend
bottleneck: ``sn4l`` (sequential), ``dis`` (discontinuity), ``btb``
(BTB-miss events and pre-decode), any other tagged source under its own
name, and untagged engine events under ``engine``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from itertools import groupby, zip_longest
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..frontend.eventlog import Event
from .tracing import read_trace

#: Event kinds attributed to the BTB-prefetch component regardless of
#: their tagged source (pre-decode exists to feed the BTB buffer).
BTB_KINDS = frozenset(("btb_miss", "btb_rescue", "predecode"))

ENGINE_BUCKET = "engine"


def bucket_of(event: Event) -> str:
    """Attribution bucket of one event (sn4l / dis / btb / ... / engine)."""
    if event.kind in BTB_KINDS:
        return "btb"
    if event.source:
        return event.source
    return ENGINE_BUCKET


def _canonical_events(events: List[Event]) -> List[Event]:
    """Events with each same-cycle run sorted by the stable key."""
    out: List[Event] = []
    for _, group in groupby(events, key=lambda e: e.cycle):
        out.extend(sorted(group, key=Event.sort_key))
    return out


# -- summarize -------------------------------------------------------------

def summarize_trace(path) -> Dict[str, Any]:
    """Totals of the measured window of one trace file."""
    events, counts = read_trace(path)
    sources = Counter(e.source or ENGINE_BUCKET for e in events)
    buckets = Counter(bucket_of(e) for e in events)
    summary: Dict[str, Any] = {
        "path": str(path),
        "events": len(events),
        "kinds": dict(sorted(counts.items())),
        "sources": dict(sorted(sources.items())),
        "components": dict(sorted(buckets.items())),
    }
    if events:
        summary["cycle_first"] = events[0].cycle
        summary["cycle_last"] = events[-1].cycle
    return summary


def render_summary(summary: Dict[str, Any]) -> str:
    lines = [f"{summary['path']}: {summary['events']} measured events"]
    if "cycle_first" in summary:
        lines[0] += (f" (cycles {summary['cycle_first']}"
                     f"..{summary['cycle_last']})")
    for section in ("kinds", "sources", "components"):
        table = summary.get(section) or {}
        if not table:
            continue
        lines.append(f"  {section}:")
        for name, count in table.items():
            lines.append(f"    {name:<16s} {count:>9d}")
    return "\n".join(lines)


# -- query -----------------------------------------------------------------

def query_trace(path, kinds: Optional[Iterable[str]] = None,
                sources: Optional[Iterable[str]] = None,
                cycle_min: Optional[int] = None,
                cycle_max: Optional[int] = None,
                limit: Optional[int] = None) -> List[Event]:
    """Measured-window events matching every given filter."""
    kind_set = set(kinds) if kinds else None
    source_set = set(sources) if sources else None
    events, _ = read_trace(path)
    out: List[Event] = []
    for e in events:
        if kind_set is not None and e.kind not in kind_set:
            continue
        if source_set is not None and (e.source or ENGINE_BUCKET) \
                not in source_set:
            continue
        if cycle_min is not None and e.cycle < cycle_min:
            continue
        if cycle_max is not None and e.cycle > cycle_max:
            continue
        out.append(e)
        if limit is not None and len(out) >= limit:
            break
    return out


# -- diff ------------------------------------------------------------------

@dataclass
class TraceDiff:
    """Alignment of two traces: counter drift plus first divergence."""

    path_a: str
    path_b: str
    n_a: int = 0
    n_b: int = 0
    #: kind -> (count in a, count in b); differing kinds only.
    kind_drift: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: component bucket -> (count in a, count in b); differing only.
    component_drift: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: None when the traces are identical, else the aligned index plus
    #: both events at it (either side None past the shorter trace).
    first_divergence: Optional[Dict[str, Any]] = None

    @property
    def identical(self) -> bool:
        return self.first_divergence is None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path_a": self.path_a, "path_b": self.path_b,
            "events_a": self.n_a, "events_b": self.n_b,
            "identical": self.identical,
            "kind_drift": {k: list(v) for k, v in self.kind_drift.items()},
            "component_drift": {k: list(v)
                                for k, v in self.component_drift.items()},
            "first_divergence": self.first_divergence,
        }

    def render(self) -> str:
        lines = [f"a: {self.path_a} ({self.n_a} events)",
                 f"b: {self.path_b} ({self.n_b} events)"]
        if self.identical:
            lines.append("traces are identical (zero drift)")
            return "\n".join(lines)
        div = self.first_divergence
        lines.append(f"first divergence at aligned event #{div['index']}"
                     f" (cycle {div.get('cycle', '?')}):")
        lines.append(f"  a: {div.get('event_a') or '(end of trace)'}")
        lines.append(f"  b: {div.get('event_b') or '(end of trace)'}")
        if self.kind_drift:
            lines.append("counter drift by kind (a -> b):")
            for kind, (ca, cb) in sorted(self.kind_drift.items()):
                lines.append(f"  {kind:<16s} {ca:>9d} -> {cb:<9d} "
                             f"({cb - ca:+d})")
        if self.component_drift:
            lines.append("counter drift by component (a -> b):")
            for bucket, (ca, cb) in sorted(self.component_drift.items()):
                lines.append(f"  {bucket:<16s} {ca:>9d} -> {cb:<9d} "
                             f"({cb - ca:+d})")
        return "\n".join(lines)


def diff_traces(path_a, path_b) -> TraceDiff:
    """Align the measured windows of two traces and attribute the drift."""
    events_a, counts_a = read_trace(path_a)
    events_b, counts_b = read_trace(path_b)
    diff = TraceDiff(path_a=str(path_a), path_b=str(path_b),
                     n_a=len(events_a), n_b=len(events_b))

    for kind in sorted(set(counts_a) | set(counts_b)):
        ca, cb = counts_a.get(kind, 0), counts_b.get(kind, 0)
        if ca != cb:
            diff.kind_drift[kind] = (ca, cb)

    buckets_a = Counter(bucket_of(e) for e in events_a)
    buckets_b = Counter(bucket_of(e) for e in events_b)
    for bucket in sorted(set(buckets_a) | set(buckets_b)):
        ca, cb = buckets_a.get(bucket, 0), buckets_b.get(bucket, 0)
        if ca != cb:
            diff.component_drift[bucket] = (ca, cb)

    canon_a = _canonical_events(events_a)
    canon_b = _canonical_events(events_b)
    for index, (ea, eb) in enumerate(zip_longest(canon_a, canon_b)):
        if ea is not None and eb is not None \
                and ea.sort_key() == eb.sort_key():
            continue
        diff.first_divergence = {
            "index": index,
            "cycle": (ea or eb).cycle if (ea or eb) else None,
            "event_a": str(ea) if ea is not None else None,
            "event_b": str(eb) if eb is not None else None,
            "component_a": bucket_of(ea) if ea is not None else None,
            "component_b": bucket_of(eb) if eb is not None else None,
        }
        break
    return diff
