"""Statistical regression gate over the benchmark history.

``repro bench --check`` compares every freshly measured cell against
the latest stored baseline for the same cell (:func:`check_records`)
and produces one :class:`Verdict` each:

* **behaviour** — the deterministic counter digest changed.  The
  engine computed something different; no amount of wall-clock noise
  explains that, so it always fails the gate.
* **regression** — mean records/sec dropped by more than the tolerance
  *and* the two t-confidence intervals do not overlap.  Requiring both
  keeps the gate deterministic in the acceptance sense: back-to-back
  runs of the same build jitter within their intervals and pass, while
  a real slowdown (no overlap, beyond tolerance) fails.
* **pass / improved** — within tolerance, or faster beyond it.
* **no-baseline** — first measurement of this cell; recorded, not failed.

The interval machinery is the shared stdlib t-quantile code in
:mod:`repro.experiments.report` (scipy optional).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..experiments.report import SampleSummary, summarize_samples

#: Default relative slowdown tolerated before a cell can fail (10%).
DEFAULT_TOLERANCE = 0.10


def parse_tolerance(text) -> float:
    """Parse ``"10%"``, ``"0.1"`` or ``10`` into a fraction (0.10)."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        s = str(text).strip()
        if s.endswith("%"):
            return float(s[:-1]) / 100.0
        value = float(s)
    # A bare number above 1 reads as a percentage ("10" means 10%).
    return value / 100.0 if value > 1.0 else value


@dataclass
class Verdict:
    """Gate outcome for one benchmark cell."""

    cell: str
    workload: str
    scheme: str
    status: str                       # pass|improved|regression|behaviour|no-baseline
    current_rps: float
    baseline_rps: Optional[float] = None
    ratio: Optional[float] = None     # baseline/current (>1 = slower now)
    tolerance: float = DEFAULT_TOLERANCE
    ci_current: Optional[SampleSummary] = None
    ci_baseline: Optional[SampleSummary] = None
    ci_overlap: Optional[bool] = None
    baseline_rev: Optional[str] = None
    current_rev: Optional[str] = None
    drift: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "behaviour")

    def as_dict(self) -> Dict[str, Any]:
        d = {
            "cell": self.cell, "workload": self.workload,
            "scheme": self.scheme, "status": self.status,
            "current_rps": self.current_rps,
            "baseline_rps": self.baseline_rps,
            "ratio": self.ratio, "tolerance": self.tolerance,
            "ci_overlap": self.ci_overlap,
            "baseline_rev": self.baseline_rev,
            "current_rev": self.current_rev,
        }
        if self.ci_current is not None:
            d["ci_current"] = self.ci_current.as_dict()
        if self.ci_baseline is not None:
            d["ci_baseline"] = self.ci_baseline.as_dict()
        if self.drift:
            d["drift"] = dict(self.drift)
        return d


def _digest_drift(current: Dict[str, Any],
                  baseline: Dict[str, Any]) -> Dict[str, Any]:
    """Counters whose values differ: ``{name: [baseline, current]}``."""
    cur = current.get("digest") or {}
    base = baseline.get("digest") or {}
    drift = {}
    for name in sorted(set(cur) | set(base)):
        if cur.get(name) != base.get(name):
            drift[name] = [base.get(name), cur.get(name)]
    return drift


def check_record(current: Dict[str, Any],
                 baseline: Optional[Dict[str, Any]],
                 tolerance: float = DEFAULT_TOLERANCE,
                 confidence: float = 0.95) -> Verdict:
    """Gate one freshly measured cell against its stored baseline."""
    verdict = Verdict(
        cell=current.get("cell", "?"),
        workload=current.get("workload", "?"),
        scheme=current.get("scheme", "?"),
        status="no-baseline",
        current_rps=float(current.get("mean_records_per_sec", 0.0)),
        tolerance=tolerance,
        current_rev=current.get("git_rev"))
    if baseline is None:
        return verdict

    verdict.baseline_rev = baseline.get("git_rev")
    verdict.baseline_rps = float(baseline.get("mean_records_per_sec", 0.0))

    drift = _digest_drift(current, baseline)
    if drift:
        verdict.status = "behaviour"
        verdict.drift = drift
        return verdict

    cur = summarize_samples(current.get("records_per_sec") or
                            [verdict.current_rps], confidence)
    base = summarize_samples(baseline.get("records_per_sec") or
                             [verdict.baseline_rps], confidence)
    verdict.ci_current = cur
    verdict.ci_baseline = base
    verdict.ci_overlap = cur.overlaps(base)
    verdict.ratio = base.mean / cur.mean if cur.mean else float("inf")

    if verdict.ratio > 1.0 + tolerance and not verdict.ci_overlap:
        verdict.status = "regression"
    elif verdict.ratio < 1.0 - tolerance and not verdict.ci_overlap:
        verdict.status = "improved"
    else:
        verdict.status = "pass"
    return verdict


def check_records(records: Sequence[Dict[str, Any]],
                  history: Sequence[Dict[str, Any]],
                  tolerance: float = DEFAULT_TOLERANCE,
                  confidence: float = 0.95) -> List[Verdict]:
    """Gate every record against the latest matching history entry.

    ``history`` must be the state *before* the records were appended —
    ``repro bench --check`` loads it first, gates, then appends.
    """
    from .bench import latest_baseline
    return [check_record(r, latest_baseline(history, r),
                         tolerance=tolerance, confidence=confidence)
            for r in records]


def any_failed(verdicts: Sequence[Verdict]) -> bool:
    return any(v.failed for v in verdicts)


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """Per-scheme verdict table for the terminal."""
    lines = [f"{'workload':16s} {'scheme':22s} {'current':>10s} "
             f"{'baseline':>10s} {'slowdown':>9s} {'verdict':>11s}"]
    for v in verdicts:
        base = f"{v.baseline_rps:,.0f}" if v.baseline_rps else "-"
        ratio = f"{(v.ratio - 1.0):+8.1%}" if v.ratio else "        -"
        lines.append(f"{v.workload:16s} {v.scheme:22s} "
                     f"{v.current_rps:>10,.0f} {base:>10s} {ratio:>9s} "
                     f"{v.status:>11s}")
    failures = [v for v in verdicts if v.failed]
    for v in failures:
        if v.status == "behaviour":
            drifted = ", ".join(f"{k}: {a} -> {b}"
                                for k, (a, b) in list(v.drift.items())[:6])
            lines.append(f"  BEHAVIOUR {v.cell}: {drifted}")
        else:
            lines.append(
                f"  REGRESSION {v.cell}: {v.baseline_rps:,.0f} -> "
                f"{v.current_rps:,.0f} rec/s "
                f"({v.ratio - 1.0:+.1%} > {v.tolerance:.0%} tolerance, "
                f"CIs disjoint)")
    return "\n".join(lines)


def markdown_report(verdicts: Sequence[Verdict],
                    tolerance: float = DEFAULT_TOLERANCE,
                    title: str = "Benchmark regression gate") -> str:
    """CI-artifact markdown: summary, verdict table, failure details."""
    failed = [v for v in verdicts if v.failed]
    lines = [f"# {title}", ""]
    if failed:
        lines.append(f"**FAILED** — {len(failed)} of {len(verdicts)} "
                     f"cells regressed (tolerance {tolerance:.0%}).")
    else:
        lines.append(f"**PASSED** — {len(verdicts)} cells within "
                     f"{tolerance:.0%} tolerance.")
    lines += [
        "",
        "| workload | scheme | current rec/s | baseline rec/s | "
        "slowdown | CI overlap | verdict |",
        "|---|---|---:|---:|---:|---|---|",
    ]
    for v in verdicts:
        base = f"{v.baseline_rps:,.0f}" if v.baseline_rps else "—"
        ratio = f"{(v.ratio - 1.0):+.1%}" if v.ratio else "—"
        overlap = {True: "yes", False: "no", None: "—"}[v.ci_overlap]
        mark = "❌ " if v.failed else ""
        lines.append(f"| {v.workload} | {v.scheme} | "
                     f"{v.current_rps:,.0f} | {base} | {ratio} | "
                     f"{overlap} | {mark}{v.status} |")
    if failed:
        lines += ["", "## Failures", ""]
        for v in failed:
            lines.append(f"### `{v.cell}`")
            lines.append("")
            if v.status == "behaviour":
                lines.append("Deterministic counters changed "
                             f"(baseline rev `{v.baseline_rev}` → current "
                             f"rev `{v.current_rev}`):")
                lines.append("")
                lines.append("| counter | baseline | current |")
                lines.append("|---|---:|---:|")
                for name, (a, b) in v.drift.items():
                    lines.append(f"| {name} | {a} | {b} |")
            else:
                cur, base = v.ci_current, v.ci_baseline
                lines.append(
                    f"Throughput fell {v.ratio - 1.0:+.1%} "
                    f"(tolerance {v.tolerance:.0%}); "
                    f"current {cur.mean:,.0f} ± {cur.ci_half_width:,.0f} "
                    f"vs baseline {base.mean:,.0f} ± "
                    f"{base.ci_half_width:,.0f} rec/s "
                    f"({cur.confidence:.0%} CIs, non-overlapping).")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"
