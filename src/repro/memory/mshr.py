"""Miss-status holding registers: in-flight fill tracking.

The frontend uses MSHRs both for demand misses and prefetches.  A demand
access that finds its line in flight stalls only for the *remaining*
latency — the covered fraction is exactly what the paper's CMAL timeliness
metric (Fig. 4/13) measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class InFlight:
    """One outstanding fill."""

    line: int
    issue_cycle: int
    ready_cycle: int
    is_prefetch: bool

    @property
    def full_latency(self) -> int:
        return self.ready_cycle - self.issue_cycle

    def remaining(self, cycle: int) -> int:
        return max(0, self.ready_cycle - cycle)


class MshrFile:
    """A bounded set of outstanding fills keyed by line address."""

    def __init__(self, capacity: int = 32):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, InFlight] = {}
        self.prefetches_dropped_full = 0
        #: Earliest ``ready_cycle`` of any outstanding fill — a watermark
        #: letting :meth:`pop_ready` (called once per fetch record) skip
        #: the linear scan while nothing can be ready yet.  May go stale
        #: *low* after :meth:`remove` (costing one wasted scan), never
        #: stale high (which would delay fills).
        self._next_ready = float("inf")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: int) -> bool:
        return line in self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, line: int) -> Optional[InFlight]:
        return self._entries.get(line)

    def issue(self, line: int, issue_cycle: int, ready_cycle: int,
              is_prefetch: bool) -> Optional[InFlight]:
        """Allocate an entry; returns it, or ``None`` when a prefetch was
        dropped because the file is full (demands always allocate — a real
        core would stall the fetch unit instead, which costs the same
        cycles this model already charges)."""
        existing = self._entries.get(line)
        if existing is not None:
            # A demand arriving for an in-flight prefetch promotes it.
            if not is_prefetch:
                existing.is_prefetch = False
            return existing
        if self.full and is_prefetch:
            self.prefetches_dropped_full += 1
            return None
        entry = InFlight(line, issue_cycle, ready_cycle, is_prefetch)
        self._entries[line] = entry
        if ready_cycle < self._next_ready:
            self._next_ready = ready_cycle
        return entry

    def issue_prefetch_unchecked(self, line: int, issue_cycle: int,
                                 ready_cycle: int) -> bool:
        """Allocate a prefetch entry the caller has verified is absent.

        Fast-path variant of :meth:`issue` for drain loops that have
        already tested ``line not in mshr``: skips the existing-entry
        probe and returns a plain success flag.  Accounting matches
        :meth:`issue` exactly (a full file drops the prefetch and counts
        ``prefetches_dropped_full``).
        """
        if len(self._entries) >= self.capacity:
            self.prefetches_dropped_full += 1
            return False
        self._entries[line] = InFlight(line, issue_cycle, ready_cycle, True)
        if ready_cycle < self._next_ready:
            self._next_ready = ready_cycle
        return True

    def pop_ready(self, cycle: int) -> List[InFlight]:
        """Remove and return every fill whose data has arrived by ``cycle``."""
        if cycle < self._next_ready:
            return []
        entries = self._entries
        ready = [e for e in entries.values() if e.ready_cycle <= cycle]
        for e in ready:
            del entries[e.line]
        self._next_ready = min(
            (e.ready_cycle for e in entries.values()), default=float("inf"))
        return ready

    def remove(self, line: int) -> Optional[InFlight]:
        return self._entries.pop(line, None)
