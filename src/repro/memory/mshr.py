"""Miss-status holding registers: in-flight fill tracking.

The frontend uses MSHRs both for demand misses and prefetches.  A demand
access that finds its line in flight stalls only for the *remaining*
latency — the covered fraction is exactly what the paper's CMAL timeliness
metric (Fig. 4/13) measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class InFlight:
    """One outstanding fill."""

    line: int
    issue_cycle: int
    ready_cycle: int
    is_prefetch: bool

    @property
    def full_latency(self) -> int:
        return self.ready_cycle - self.issue_cycle

    def remaining(self, cycle: int) -> int:
        return max(0, self.ready_cycle - cycle)


class MshrFile:
    """A bounded set of outstanding fills keyed by line address."""

    def __init__(self, capacity: int = 32):
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[int, InFlight] = {}
        self.prefetches_dropped_full = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, line: int) -> bool:
        return line in self._entries

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, line: int) -> Optional[InFlight]:
        return self._entries.get(line)

    def issue(self, line: int, issue_cycle: int, ready_cycle: int,
              is_prefetch: bool) -> Optional[InFlight]:
        """Allocate an entry; returns it, or ``None`` when a prefetch was
        dropped because the file is full (demands always allocate — a real
        core would stall the fetch unit instead, which costs the same
        cycles this model already charges)."""
        existing = self._entries.get(line)
        if existing is not None:
            # A demand arriving for an in-flight prefetch promotes it.
            if not is_prefetch:
                existing.is_prefetch = False
            return existing
        if self.full and is_prefetch:
            self.prefetches_dropped_full += 1
            return None
        entry = InFlight(line, issue_cycle, ready_cycle, is_prefetch)
        self._entries[line] = entry
        return entry

    def pop_ready(self, cycle: int) -> List[InFlight]:
        """Remove and return every fill whose data has arrived by ``cycle``."""
        ready = [e for e in self._entries.values() if e.ready_cycle <= cycle]
        for e in ready:
            del self._entries[e.line]
        return ready

    def remove(self, line: int) -> Optional[InFlight]:
        return self._entries.pop(line, None)
