"""Latency and contention model for L1i fill requests.

The paper measures (Fig. 5) that an N8L prefetcher's useless prefetches
inflate the average LLC access latency by ~28% and L1i external bandwidth
by ~7.2x.  A flit-level NoC is unnecessary to reproduce that effect: what
matters is that every fetch/prefetch request leaving the L1i adds load, and
that the effective LLC round-trip grows with recent load.  This module
implements that as a sliding-window M/D/1-flavoured inflation factor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .noc import MeshNoc


@dataclass
class LatencyConfig:
    """Latency parameters, defaults from the paper's Table III."""

    llc_access: int = 18
    memory_access: int = 120          # 60 ns at 2 GHz
    l1_fill_overhead: int = 2         # fill pipeline into the L1i
    noc: MeshNoc = field(default_factory=MeshNoc)
    core_tile: int = 5                # an interior tile of the 4x4 mesh
    #: Contention shaping: latency multiplier saturates at
    #: ``1 + contention_gain`` when the window is fully busy.
    contention_gain: float = 2.4
    #: Convexity of the load -> latency curve.  All sixteen cores of the
    #: modelled CMP prefetch alike, so useless traffic compounds in the
    #: shared NoC/LLC: a quadratic curve charges aggressive prefetchers
    #: (N8L) disproportionately, which is what makes deep sequential
    #: prefetching *lose* timeliness in the paper's Fig. 4.
    contention_exponent: float = 2.0
    window: int = 256                 # cycles of request history considered
    #: Requests per cycle that count as "fully busy" for one L1i's slice
    #: of the NoC/LLC bandwidth.
    saturation_rate: float = 0.22

    @property
    def llc_round_trip(self) -> int:
        """Zero-load LLC round trip: NoC there and back + array access.

        Memoised on first access: the NoC average is a pure function of
        the (immutable) mesh geometry, and this property sits on the fill
        path of every single L1i miss.
        """
        cached = self.__dict__.get("_llc_round_trip")
        if cached is None:
            cached = int(round(self.noc.average_round_trip(self.core_tile))) \
                + self.llc_access
            self.__dict__["_llc_round_trip"] = cached
        return cached

    @property
    def memory_round_trip(self) -> int:
        cached = self.__dict__.get("_memory_round_trip")
        if cached is None:
            cached = self.llc_round_trip + self.memory_access
            self.__dict__["_memory_round_trip"] = cached
        return cached


class ContentionTracker:
    """Sliding-window request counter -> latency inflation factor."""

    def __init__(self, config: LatencyConfig):
        self.config = config
        self._times: deque = deque()
        self.total_requests = 0

    def record(self, cycle: int) -> None:
        self._times.append(cycle)
        self.total_requests += 1
        self._expire(cycle)

    def _expire(self, cycle: int) -> None:
        horizon = cycle - self.config.window
        times = self._times
        while times and times[0] <= horizon:
            times.popleft()

    def load(self, cycle: int) -> float:
        """Recent request rate normalised to the saturation rate, in [0, 1]."""
        self._expire(cycle)
        rate = len(self._times) / self.config.window
        return min(1.0, rate / self.config.saturation_rate)

    def inflation(self, cycle: int) -> float:
        load = self.load(cycle)
        return 1.0 + self.config.contention_gain * \
            load ** self.config.contention_exponent


class LatencyModel:
    """Computes fill latencies and tracks bandwidth/latency statistics."""

    def __init__(self, config: LatencyConfig = None):
        self.config = config or LatencyConfig()
        self.contention = ContentionTracker(self.config)
        self.llc_latency_sum = 0.0
        self.llc_latency_count = 0

    def request(self, cycle: int, llc_hit: bool = True) -> int:
        """Latency of one L1i fill request issued at ``cycle``.

        Every call counts as external bandwidth and adds contention load.
        """
        self.contention.record(cycle)
        base = (self.config.llc_round_trip if llc_hit
                else self.config.memory_round_trip)
        latency = int(round(base * self.contention.inflation(cycle))) + \
            self.config.l1_fill_overhead
        self.llc_latency_sum += latency
        self.llc_latency_count += 1
        return latency

    @property
    def requests(self) -> int:
        """External bandwidth usage: requests sent below the L1i."""
        return self.contention.total_requests

    @property
    def average_latency(self) -> float:
        if self.llc_latency_count == 0:
            return 0.0
        return self.llc_latency_sum / self.llc_latency_count
