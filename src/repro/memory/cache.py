"""Set-associative cache with LRU replacement and per-line metadata.

The L1i metadata the paper adds is carried directly on the line:

* ``is_prefetch`` — the 1-bit prefetch flag every prefetcher needs
  (set on prefetch fill, cleared on first demand hit, Section V-A);
* ``local_status`` — SN4L's 4-bit local prefetch status, a copy of the
  SeqTable bits for the four subsequent blocks, cached at fill time to
  avoid SeqTable lookups on every access;
* ``is_instruction`` — the DV-LLC mode bit (Section V-D).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional, Tuple

from ..isa import CACHE_BLOCK_SIZE


class CacheLine:
    """Metadata of one resident cache line."""

    __slots__ = ("addr", "is_prefetch", "local_status", "is_instruction",
                 "fill_latency")

    def __init__(self, addr: int, is_prefetch: bool = False,
                 is_instruction: bool = False):
        self.addr = addr
        self.is_prefetch = is_prefetch
        self.local_status = 0
        self.is_instruction = is_instruction
        self.fill_latency = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CacheLine({self.addr:#x}, pf={self.is_prefetch}, "
                f"ls={self.local_status:04b})")


class SetAssociativeCache:
    """A straightforward set-associative LRU cache keyed by line address.

    All addresses passed in are byte addresses; they are truncated to
    line granularity internally, so callers may pass any address within
    a line.
    """

    def __init__(self, size_bytes: int, assoc: int,
                 block_size: int = CACHE_BLOCK_SIZE, name: str = "cache"):
        if size_bytes <= 0 or assoc <= 0 or block_size <= 0:
            raise ValueError("cache geometry must be positive")
        n_lines = size_bytes // block_size
        if n_lines % assoc != 0:
            raise ValueError(
                f"{size_bytes} B / {block_size} B lines not divisible by "
                f"associativity {assoc}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.block_size = block_size
        self.n_sets = n_lines // assoc
        # Each set maps line-index -> CacheLine, in LRU order (first = LRU).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]

    # ------------------------------------------------------------------

    def _index(self, addr: int) -> Tuple[int, int]:
        line = addr // self.block_size
        return line % self.n_sets, line

    def set_capacity(self, set_idx: int) -> int:
        """Ways usable for blocks in this set (DV-LLC overrides this)."""
        return self.assoc

    # ------------------------------------------------------------------

    def lookup(self, addr: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line, updating LRU order unless ``touch=False``."""
        set_idx, line = self._index(addr)
        cset = self._sets[set_idx]
        entry = cset.get(line)
        if entry is not None and touch:
            cset.move_to_end(line)
        return entry

    def contains(self, addr: int) -> bool:
        set_idx, line = self._index(addr)
        return line in self._sets[set_idx]

    def insert(self, addr: int, is_prefetch: bool = False,
               is_instruction: bool = False
               ) -> Optional[CacheLine]:
        """Insert a line as MRU; returns the evicted line, if any.

        Re-inserting a resident line refreshes its LRU position and
        prefetch flag without eviction.
        """
        set_idx, line = self._index(addr)
        cset = self._sets[set_idx]
        existing = cset.get(line)
        if existing is not None:
            cset.move_to_end(line)
            existing.is_prefetch = is_prefetch
            existing.is_instruction = existing.is_instruction or is_instruction
            return None
        victim = None
        if len(cset) >= self.set_capacity(set_idx):
            _key, victim = cset.popitem(last=False)
        cset[line] = CacheLine(line * self.block_size,
                               is_prefetch=is_prefetch,
                               is_instruction=is_instruction)
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        set_idx, line = self._index(addr)
        return self._sets[set_idx].pop(line, None)

    def evict_lru(self, set_idx: int) -> Optional[CacheLine]:
        cset = self._sets[set_idx]
        if not cset:
            return None
        _key, victim = cset.popitem(last=False)
        return victim

    # ------------------------------------------------------------------

    def set_of(self, addr: int) -> int:
        return self._index(addr)[0]

    def lines_in_set(self, set_idx: int) -> List[CacheLine]:
        return list(self._sets[set_idx].values())

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def resident_lines(self) -> Iterator[CacheLine]:
        for cset in self._sets:
            yield from cset.values()

    def flush(self) -> None:
        for cset in self._sets:
            cset.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.name}, "
                f"{self.size_bytes // 1024} KB, {self.assoc}-way, "
                f"{self.n_sets} sets)")
