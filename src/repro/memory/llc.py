"""Last-level cache, including the paper's dynamically-virtualized variant.

``LastLevelCache`` is a plain set-associative LLC slice used to decide
whether an L1i fill is served by the LLC or by memory.

``DynamicallyVirtualizedLlc`` (DV-LLC, Section V-D) additionally stores
*branch footprints* (BFs) for the VL-ISA BTB prefetcher.  Per set, when at
least one resident block is an instruction block (tracked by the logical OR
of the per-block ``isInstruction`` bits), the LRU way switches from
block-holder to BF-holder: one way's worth of data (64 B) holds up to ten
tagged 3-byte footprints.  When the last instruction block leaves the set,
the way reverts to a block-holder.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from ..isa import CACHE_BLOCK_SIZE
from .cache import CacheLine, SetAssociativeCache

#: A 64-byte BF-holder way stores 3-byte footprints plus a tag each;
#: the paper computes room for ten fully-tagged footprints.
BF_SLOTS_PER_WAY = 10
#: Branch byte-offsets stored per footprint (Fig. 8: four is enough).
BF_BRANCHES = 4


class LastLevelCache(SetAssociativeCache):
    """An LLC slice with hit/miss accounting split by block type."""

    def __init__(self, size_bytes: int = 2 * 1024 * 1024, assoc: int = 16,
                 block_size: int = CACHE_BLOCK_SIZE, name: str = "llc"):
        super().__init__(size_bytes, assoc, block_size, name)
        self.instruction_hits = 0
        self.instruction_misses = 0
        self.data_hits = 0
        self.data_misses = 0

    def access(self, addr: int, is_instruction: bool = True) -> bool:
        """Look up ``addr``; on miss, fill it.  Returns hit/miss."""
        hit = self.lookup(addr) is not None
        if is_instruction:
            if hit:
                self.instruction_hits += 1
            else:
                self.instruction_misses += 1
        else:
            if hit:
                self.data_hits += 1
            else:
                self.data_misses += 1
        if not hit:
            self.fill(addr, is_instruction=is_instruction)
        return hit

    def fill(self, addr: int, is_instruction: bool = True) -> Optional[CacheLine]:
        return self.insert(addr, is_instruction=is_instruction)

    def hit_ratio(self, instruction: bool) -> float:
        if instruction:
            total = self.instruction_hits + self.instruction_misses
            return self.instruction_hits / total if total else 0.0
        total = self.data_hits + self.data_misses
        return self.data_hits / total if total else 0.0


class DynamicallyVirtualizedLlc(LastLevelCache):
    """DV-LLC: the LRU way doubles as a branch-footprint holder."""

    def __init__(self, size_bytes: int = 2 * 1024 * 1024, assoc: int = 16,
                 block_size: int = CACHE_BLOCK_SIZE, name: str = "dvllc",
                 bf_slots: int = BF_SLOTS_PER_WAY):
        super().__init__(size_bytes, assoc, block_size, name)
        self.bf_slots = bf_slots
        # set index -> OrderedDict(line -> byte-offset tuple), LRU order.
        self._footprints: Dict[int, OrderedDict] = {}
        self.footprint_hits = 0
        self.footprint_misses = 0
        self.footprint_evictions = 0

    # -- geometry ------------------------------------------------------

    def _bf_mode(self, set_idx: int) -> bool:
        """Logical OR of the isInstruction bits of the set's blocks."""
        return any(l.is_instruction for l in self.lines_in_set(set_idx))

    def set_capacity(self, set_idx: int) -> int:
        if self._bf_mode(set_idx):
            return self.assoc - 1
        return self.assoc

    def insert(self, addr: int, is_prefetch: bool = False,
               is_instruction: bool = False) -> Optional[CacheLine]:
        set_idx = self.set_of(addr)
        entering_bf_mode = is_instruction and not self._bf_mode(set_idx)
        victim = None
        if entering_bf_mode:
            # The LRU way becomes the BF holder: shrink the set so that
            # after the incoming block lands, at most assoc-1 ways hold
            # blocks.
            while len(self.lines_in_set(set_idx)) >= self.assoc - 1:
                evicted = self.evict_lru(set_idx)
                if evicted is None:
                    break
                victim = evicted
                self._on_block_evicted(set_idx, evicted)
        inserted_victim = super().insert(addr, is_prefetch=is_prefetch,
                                         is_instruction=is_instruction)
        if inserted_victim is not None:
            self._on_block_evicted(set_idx, inserted_victim)
            victim = inserted_victim
        return victim

    def invalidate(self, addr: int) -> Optional[CacheLine]:
        victim = super().invalidate(addr)
        if victim is not None:
            self._on_block_evicted(self.set_of(addr), victim)
        return victim

    def _on_block_evicted(self, set_idx: int, victim: CacheLine) -> None:
        fps = self._footprints.get(set_idx)
        if fps is not None:
            line = victim.addr // self.block_size
            if fps.pop(line, None) is not None:
                self.footprint_evictions += 1
        if victim.is_instruction and not self._bf_mode(set_idx):
            # Last instruction block left: the way reverts to block-holder
            # and any remaining footprints are lost.
            if self._footprints.pop(set_idx, None):
                pass

    # -- footprint storage ---------------------------------------------

    def store_footprint(self, addr: int,
                        offsets: Sequence[int]) -> bool:
        """Store up to :data:`BF_BRANCHES` branch byte-offsets for a block.

        Only possible while the block's set is in BF mode (i.e. the set
        holds at least one instruction block — which it does whenever the
        block itself is resident).  Returns False when the BF way is
        unavailable.
        """
        set_idx = self.set_of(addr)
        if not self._bf_mode(set_idx):
            return False
        fps = self._footprints.setdefault(set_idx, OrderedDict())
        line = addr // self.block_size
        if line in fps:
            fps.move_to_end(line)
        elif len(fps) >= self.bf_slots:
            fps.popitem(last=False)
            self.footprint_evictions += 1
        fps[line] = tuple(offsets[:BF_BRANCHES])
        return True

    def get_footprint(self, addr: int) -> Optional[Tuple[int, ...]]:
        set_idx = self.set_of(addr)
        fps = self._footprints.get(set_idx)
        line = addr // self.block_size
        found = None if fps is None else fps.get(line)
        if found is None:
            self.footprint_misses += 1
            return None
        fps.move_to_end(line)
        self.footprint_hits += 1
        return found

    def bf_ways_active(self) -> int:
        """How many sets currently sacrifice their LRU way to footprints."""
        return sum(1 for s in range(self.n_sets) if self._bf_mode(s))

    def storage_overhead_fraction(self) -> float:
        """Extra storage cost: one isInstruction bit per block."""
        bits_added = (self.size_bytes // self.block_size) * 1
        return bits_added / (self.size_bytes * 8)
