"""Memory hierarchy substrate: caches, LLC/DV-LLC, MSHRs, latency, NoC."""

from .cache import CacheLine, SetAssociativeCache
from .latency import ContentionTracker, LatencyConfig, LatencyModel
from .llc import (
    BF_BRANCHES,
    BF_SLOTS_PER_WAY,
    DynamicallyVirtualizedLlc,
    LastLevelCache,
)
from .mshr import InFlight, MshrFile
from .noc import MeshNoc

__all__ = [
    "CacheLine",
    "SetAssociativeCache",
    "LastLevelCache",
    "DynamicallyVirtualizedLlc",
    "BF_SLOTS_PER_WAY",
    "BF_BRANCHES",
    "MshrFile",
    "InFlight",
    "LatencyModel",
    "LatencyConfig",
    "ContentionTracker",
    "MeshNoc",
]
