"""Mesh network-on-chip latency model.

The paper's CMP is a 4x4 mesh of tiles (core + LLC slice + directory); each
hop costs a 2-stage router pipeline plus 1-cycle link traversal = 3 cycles
at zero load.  The frontend simulator is single-core, so the NoC reduces to
the average request/response hop latency from a core tile to the LLC slices,
plus a load-dependent component supplied by the contention model.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MeshNoc:
    """An ``n x n`` 2D mesh with XY dimension-order routing."""

    n: int = 4
    cycles_per_hop: int = 3

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("mesh dimension must be >= 1")

    def coords(self, tile: int):
        if not 0 <= tile < self.n * self.n:
            raise ValueError(f"tile {tile} outside {self.n}x{self.n} mesh")
        return divmod(tile, self.n)

    def hops(self, src: int, dst: int) -> int:
        sy, sx = self.coords(src)
        dy, dx = self.coords(dst)
        return abs(sy - dy) + abs(sx - dx)

    def latency(self, src: int, dst: int) -> int:
        return self.hops(src, dst) * self.cycles_per_hop

    def average_hops_from(self, src: int) -> float:
        total = sum(self.hops(src, dst) for dst in range(self.n * self.n))
        return total / (self.n * self.n)

    def average_round_trip(self, src: int = 0) -> float:
        """Mean request+response NoC cycles from ``src`` to a random slice.

        LLC slices are address-interleaved across all tiles, so the mean
        over destinations is the right expectation.
        """
        return 2.0 * self.average_hops_from(src) * self.cycles_per_hop
