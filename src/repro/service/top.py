"""``repro top``: a live text view of a running simulation service.

Polls ``GET /metricsz`` (Prometheus text, parsed back with
:func:`~repro.obs.metrics.parse_prometheus_text`) and ``GET /storez``
on an interval and renders the numbers an operator watches while a
sweep drains: queue depth and in-flight jobs, completion/failure/dedupe
counters, store hit and eviction rates, shard-occupancy skew, and job
latency percentiles derived from the histogram buckets with
:func:`~repro.obs.metrics.quantile_from_buckets`.

Everything here is a pure function over the two scraped payloads
(:func:`snapshot_top` fetches, :func:`render_top` formats) so the tests
can drive the renderer without a live socket; :func:`run_top` is the
thin polling loop the CLI wraps.
"""

from __future__ import annotations

import math
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Tuple

from ..obs.metrics import parse_prometheus_text, quantile_from_buckets
from .client import ServiceClient, ServiceError

#: Series name -> [(labels, value)] as parse_prometheus_text returns.
Parsed = Dict[str, List[Tuple[Dict[str, str], float]]]

#: The percentiles the latency rows report.
QUANTILES = (0.5, 0.95, 0.99)


def _total(parsed: Parsed, name: str) -> float:
    """Sum of one series across every label set (0.0 when absent)."""
    return sum(value for _labels, value in parsed.get(name, []))


def _bucket_pairs(parsed: Parsed, name: str
                  ) -> List[Tuple[float, float]]:
    """A histogram's ``(upper_bound, cumulative_count)`` pairs."""
    pairs: List[Tuple[float, float]] = []
    for labels, value in parsed.get(f"{name}_bucket", []):
        le = labels.get("le")
        if le is None:
            continue
        try:
            bound = math.inf if le == "+Inf" else float(le)
        except ValueError:
            continue
        pairs.append((bound, value))
    pairs.sort(key=lambda pair: pair[0])
    return pairs


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.0f}ms"
    return f"{value:.2f}s"


def _shard_skew(shards: Dict[str, Dict[str, Any]]) -> str:
    """One phrase summarising a kind's shard spread."""
    if not shards:
        return "0 shards"
    counts = [int(cell.get("count", 0)) for cell in shards.values()]
    nbytes = sum(int(cell.get("bytes", 0)) for cell in shards.values())
    return (f"{len(shards)} shards, max {max(counts)}/min {min(counts)} "
            f"entries, {nbytes / 1024:.1f} KiB")


def snapshot_top(client: ServiceClient) -> Dict[str, Any]:
    """Scrape one ``(metricsz, storez)`` pair into plain numbers."""
    parsed = parse_prometheus_text(client.metricsz())
    storez = client.storez()
    return build_snapshot(parsed, storez)


def build_snapshot(parsed: Parsed,
                   storez: Dict[str, Any]) -> Dict[str, Any]:
    """Fold the two scraped payloads into the rendered snapshot.

    Split from :func:`snapshot_top` so tests can feed canned payloads.
    """
    jobs: Dict[str, Any] = dict(storez.get("jobs", {}))
    store_info: Dict[str, Any] = dict(storez.get("store", {}))
    counters = dict(store_info.get("counters", {}))
    hits = float(counters.get("hits", _total(parsed, "repro_store_hits")))
    misses = float(counters.get("misses",
                                _total(parsed, "repro_store_misses")))
    looked = hits + misses
    latency: Dict[str, Optional[float]] = {}
    waits: Dict[str, Optional[float]] = {}
    for target, name in ((latency, "repro_job_latency_seconds"),
                         (waits, "repro_job_queue_wait_seconds")):
        pairs = _bucket_pairs(parsed, name)
        for q in QUANTILES:
            target[f"p{int(q * 100)}"] = \
                quantile_from_buckets(pairs, q) if pairs else None
        target["count"] = _total(parsed, f"{name}_count")
    overview = store_info.get("overview", {})
    shards = {kind: dict(overview.get(kind, {}).get("shards", {}))
              for kind in ("results", "traces")}
    return {
        "jobs": jobs,
        "queue_depth": _total(parsed, "repro_job_queue_depth"),
        "running": _total(parsed, "repro_jobs_running"),
        "inflight": _total(parsed, "repro_jobs_inflight"),
        "http_requests": _total(parsed, "repro_http_requests_total"),
        "spans": _total(parsed, "repro_spans_total"),
        "store": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / looked if looked else None,
            "evicted": float(counters.get(
                "evicted", _total(parsed, "repro_store_evicted"))),
            "corrupt": float(counters.get(
                "corrupt", _total(parsed, "repro_store_corrupt"))),
            "writes": float(counters.get(
                "writes", _total(parsed, "repro_store_writes"))),
        },
        "shards": shards,
        "latency": latency,
        "queue_wait": waits,
    }


def render_top(snap: Dict[str, Any], address: str = "") -> str:
    """Format one snapshot as the ``repro top`` frame."""
    jobs = snap["jobs"]
    store = snap["store"]
    ratio = store["hit_ratio"]
    lines = [
        f"repro top{'  ' + address if address else ''}",
        (f"jobs     queued {snap['queue_depth']:.0f}  "
         f"running {snap['running']:.0f}  "
         f"inflight {snap['inflight']:.0f}  "
         f"submitted {jobs.get('submitted', 0)}  "
         f"completed {jobs.get('completed', 0)}  "
         f"failed {jobs.get('failed', 0)}  "
         f"deduped {jobs.get('deduped', 0)}"),
        (f"http     requests {snap['http_requests']:.0f}  "
         f"spans {snap['spans']:.0f}"),
        (f"store    hits {store['hits']:.0f}  "
         f"misses {store['misses']:.0f}  "
         f"hit-ratio {'-' if ratio is None else f'{ratio:.1%}'}  "
         f"writes {store['writes']:.0f}  "
         f"evicted {store['evicted']:.0f}  "
         f"corrupt {store['corrupt']:.0f}"),
    ]
    for kind in ("results", "traces"):
        lines.append(f"shards   {kind:8s} {_shard_skew(snap['shards'][kind])}")
    for label, key in (("latency", "latency"),
                       ("q-wait", "queue_wait")):
        row = snap[key]
        lines.append(
            f"{label:8s} " + "  ".join(
                f"p{int(q * 100)} {_fmt_seconds(row[f'p{int(q * 100)}'])}"
                for q in QUANTILES)
            + f"  (n={row['count']:.0f})")
    return "\n".join(lines)


def run_top(host: str, port: int, interval: float = 2.0,
            iterations: Optional[int] = None,
            out: Optional[TextIO] = None) -> int:
    """Poll and render until interrupted (or ``iterations`` frames).

    Returns a process exit code: 1 when the very first scrape fails
    (nothing is listening), 0 otherwise.
    """
    stream = out if out is not None else sys.stdout
    client = ServiceClient(host, port)
    frame = 0
    while iterations is None or frame < iterations:
        try:
            snap = snapshot_top(client)
        except ServiceError as exc:
            print(f"repro top: {exc}", file=stream)
            return 1 if frame == 0 else 0
        if frame:
            print("", file=stream)
        print(render_top(snap, address=f"{host}:{port}"), file=stream)
        stream.flush()
        frame += 1
        if iterations is not None and frame >= iterations:
            break
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            break
    return 0
