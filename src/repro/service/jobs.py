"""The service's job queue: bounded, deduplicated, observable.

A :class:`JobQueue` owns a fixed pool of asyncio worker tasks draining
a bounded queue.  Simulation work itself is synchronous (the engine is
pure Python), so each worker pushes the execution into a thread via
``asyncio.to_thread`` and the event loop stays responsive for status
polls while simulations run.

Three properties the tests pin down:

* **Backpressure** — the queue is bounded; submitting to a full queue
  raises :class:`QueueFullError` (the server answers 429) instead of
  buffering unboundedly.
* **Cancellation** — a queued job can be cancelled; a running one
  cannot (simulations are not interruptible mid-trace) and the caller
  is told so.
* **Single-flight dedupe** — jobs carry a content fingerprint; when a
  job's fingerprint is already executing, the duplicate *awaits the
  leader's published result* instead of simulating again.  Two clients
  sweeping the same design space concurrently pay for each
  fingerprint-identical simulation exactly once, and both observe
  bit-identical results.

Every job appends lifecycle events (``queued``, ``started``, progress,
``done``/``failed``/``cancelled``) to its own JSONL stream under
``<cache root>/service/jobs/``, written through the same torn-write-safe
:func:`~repro.experiments.store.append_jsonl` as the bench history.
"""

from __future__ import annotations

import asyncio
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..experiments.store import append_jsonl, iter_jsonl
from ..obs.metrics import inc, observe
from ..obs.tracing import TRACER, TraceContext

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class QueueFullError(RuntimeError):
    """The bounded job queue is at capacity; retry later."""


@dataclass
class Job:
    """One submitted unit of work and its observable lifecycle."""

    id: str
    kind: str
    params: Dict[str, Any]
    fingerprint: str
    state: str = QUEUED
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: True when this job awaited another in-flight job's result
    #: instead of executing (cross-client single-flight dedupe).
    deduped: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    events_path: Optional[Path] = None
    #: The submitting request's trace context (the HTTP span); job
    #: spans — queue wait, the run itself — hang off it.
    trace: Optional[TraceContext] = None
    #: Span id of this job's ``job.run`` span (histogram exemplars).
    run_span_id: Optional[str] = None

    def as_dict(self, include_result: bool = True) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "params": dict(self.params),
            "fingerprint": self.fingerprint,
            "state": self.state,
            "deduped": self.deduped,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.trace is not None:
            info["trace_id"] = self.trace.trace_id
        if self.error is not None:
            info["error"] = self.error
        if include_result and self.result is not None:
            info["result"] = self.result
        return info


#: Executor signature: runs in a worker *thread*; ``emit`` appends a
#: progress event to the job's JSONL stream.
Executor = Callable[[Job, Callable[..., None]], Dict[str, Any]]


class JobQueue:
    """Bounded asyncio job queue with single-flight dedupe.

    All public methods except the worker loop are meant to be called
    from the event-loop thread (the HTTP handlers).  ``execute`` runs
    in a thread and must be thread-safe across concurrent jobs.
    """

    def __init__(self, execute: Executor, workers: int = 2,
                 queue_size: int = 64,
                 events_dir: Optional[Path] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._execute = execute
        self._workers = workers
        self._queue: "asyncio.Queue[str]" = asyncio.Queue(maxsize=queue_size)
        self._jobs: Dict[str, Job] = {}
        #: fingerprint -> future resolving to ("ok", result) | ("error",
        #: message).  Plain result tuples, not set_exception: a leader
        #: failure with no follower must not warn about an unretrieved
        #: future exception.
        self._inflight: Dict[str, "asyncio.Future[Tuple[str, Any]]"] = {}
        self._tasks: List["asyncio.Task[None]"] = []
        self._events_dir = events_dir
        self._seq = 0
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.deduped = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        for index in range(self._workers):
            self._tasks.append(loop.create_task(
                self._worker(), name=f"repro-job-worker-{index}"))

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks.clear()

    # -- submission / inspection ---------------------------------------

    def submit(self, kind: str, params: Dict[str, Any],
               fingerprint: str,
               trace: Optional[TraceContext] = None) -> Job:
        """Enqueue a job; raises :class:`QueueFullError` at capacity.

        ``trace``, when given, is the submitting request's span context
        (propagated from the client's ``X-Repro-Trace`` header): the
        job's queue-wait and run spans become its children.
        """
        self._seq += 1
        job = Job(id=f"job-{self._seq:06d}", kind=kind,
                  params=dict(params), fingerprint=fingerprint,
                  trace=trace)
        if self._events_dir is not None:
            job.events_path = self._events_dir / f"{job.id}.jsonl"
        try:
            self._queue.put_nowait(job.id)
        except asyncio.QueueFull:
            inc("repro_jobs_rejected_total")
            raise QueueFullError(
                f"job queue is full ({self._queue.maxsize} pending); "
                f"retry later") from None
        self._jobs[job.id] = job
        self.submitted += 1
        inc("repro_jobs_submitted_total")
        self._emit(job, "queued", kind=kind, fingerprint=fingerprint)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """Every known job, in submission order."""
        return list(self._jobs.values())

    def cancel(self, job_id: str) -> str:
        """Try to cancel a job; returns the resulting state.

        ``"cancelled"`` when the job was still queued, ``"missing"``
        for an unknown id, otherwise the job's current state (a running
        or finished job is not cancellable).
        """
        job = self._jobs.get(job_id)
        if job is None:
            return "missing"
        if job.state == QUEUED:
            job.state = CANCELLED
            job.finished_at = time.time()
            self.cancelled += 1
            inc("repro_jobs_cancelled_total")
            self._emit(job, "cancelled")
            return CANCELLED
        return job.state

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """The job's JSONL event stream, parsed (empty when unknown)."""
        job = self._jobs.get(job_id)
        if job is None or job.events_path is None:
            return []
        return list(iter_jsonl(job.events_path))

    def stats(self) -> Dict[str, int]:
        """Aggregate queue counters for ``/storez``."""
        states = {state: 0 for state in
                  (QUEUED, RUNNING, DONE, FAILED, CANCELLED)}
        for job in self._jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "deduped": self.deduped,
            "inflight": len(self._inflight),
            "capacity": self._queue.maxsize,
            **{f"state_{state}": count
               for state, count in sorted(states.items())},
        }

    # -- internals -----------------------------------------------------

    def _emit(self, job: Job, event: str, **fields: Any) -> None:
        """Append one lifecycle event to the job's JSONL stream."""
        if job.events_path is None:
            return
        record = {"ts": round(time.time(), 6), "job": job.id,
                  "event": event, **fields}
        try:
            append_jsonl(job.events_path, record)
        except OSError:
            pass                # events are observability, never fatal

    def _thread_emit(self, job: Job) -> Callable[..., None]:
        """The progress emitter handed to the executor thread."""
        def emit(event: str, **fields: Any) -> None:
            self._emit(job, event, **fields)
        return emit

    async def _worker(self) -> None:
        while True:
            job_id = await self._queue.get()
            try:
                job = self._jobs.get(job_id)
                if job is None or job.state != QUEUED:
                    continue            # cancelled while queued
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        job.started_at = time.time()
        queue_wait = max(0.0, job.started_at - job.submitted_at)
        # The queue-wait span is measured externally (submit to pickup)
        # rather than opened live: it ended the moment this line runs.
        TRACER.record_span("job.queue_wait", job.trace, queue_wait,
                           start_ts=job.submitted_at,
                           attrs={"job": job.id})
        observe("repro_job_queue_wait_seconds", queue_wait,
                exemplar=self._exemplar(job))
        leader_fut = self._inflight.get(job.fingerprint)
        if leader_fut is None:
            # Leader: execute, then publish to any waiting followers.
            loop = asyncio.get_running_loop()
            fut: "asyncio.Future[Tuple[str, Any]]" = loop.create_future()
            self._inflight[job.fingerprint] = fut
            self._emit(job, "started", role="leader")
            try:
                # The span's context variable rides into the executor
                # thread with asyncio.to_thread (it copies the caller's
                # context), which is how run_many and the engine see
                # this job as their parent span.
                with TRACER.span("job.run", parent=job.trace,
                                 attrs={"job": job.id,
                                        "kind": job.kind}) as run_span:
                    if run_span is not None:
                        job.run_span_id = run_span.span_id
                    result = await asyncio.to_thread(
                        self._execute, job, self._thread_emit(job))
            except Exception as exc:
                outcome: Tuple[str, Any] = (
                    "error", f"{type(exc).__name__}: {exc}")
                self._emit(job, "traceback",
                           text=traceback.format_exc(limit=8))
            else:
                outcome = ("ok", result)
            finally:
                self._inflight.pop(job.fingerprint, None)
            fut.set_result(outcome)
        else:
            # Follower: the same fingerprint is already simulating —
            # await the leader's published result instead of re-running.
            job.deduped = True
            self.deduped += 1
            inc("repro_jobs_deduped_total")
            self._emit(job, "started", role="follower")
            outcome = await leader_fut
        status, payload = outcome
        job.finished_at = time.time()
        if status == "ok":
            job.state = DONE
            job.result = payload
            self.completed += 1
            inc("repro_jobs_completed_total")
            self._emit(job, "done", deduped=job.deduped)
        else:
            job.state = FAILED
            job.error = str(payload)
            self.failed += 1
            inc("repro_jobs_failed_total")
            self._emit(job, "failed", error=job.error)
        observe("repro_job_latency_seconds",
                max(0.0, job.finished_at - job.submitted_at),
                exemplar=self._exemplar(job))
        if job.trace is not None:
            # Persist the whole trace next to the job event streams
            # (same best-effort contract as _emit: observability is
            # never allowed to fail the job it observed).
            TRACER.persist(job.trace.trace_id)

    @staticmethod
    def _exemplar(job: Job) -> Optional[Dict[str, str]]:
        """Span reference attached to this job's histogram samples."""
        if job.trace is None:
            return None
        return {"trace_id": job.trace.trace_id,
                "span_id": job.run_span_id or job.trace.span_id}
