"""Simulation-as-a-service: the ``repro serve`` HTTP/JSON API.

The CLI runs one simulation per process; this package runs them as a
*service*: a long-lived asyncio HTTP server exposing run/compare/bench
as queued jobs, backed by the parallel runner and the sharded persistent
store, so a fleet of clients sweeping the same design space pays for
each fingerprint-identical simulation exactly once.

* :mod:`repro.service.httpio` — a minimal HTTP/1.1 request/response
  layer over asyncio streams (JSON bodies only; no third-party deps);
* :mod:`repro.service.jobs` — the job queue: bounded backpressure,
  worker tasks, cancellation, per-job JSONL event streams, and
  cross-client in-flight dedupe (two concurrent submissions of the same
  fingerprint trigger exactly one simulation — the second awaits the
  first's published result);
* :mod:`repro.service.server` — :class:`ReproService`, the endpoint
  routing (``/jobs``, ``/storez``, ``/healthz``, …) and the job
  executors that fan out through
  :func:`repro.experiments.parallel.run_many`;
* :mod:`repro.service.client` — a small blocking client
  (submit / poll / wait / events / storez / metricsz) used by tests,
  CI and scripts; submissions open a trace propagated via the
  ``X-Repro-Trace`` header;
* :mod:`repro.service.top` — the ``repro top`` live view: scrape
  ``/metricsz`` + ``/storez``, render queue depth, cache hit rates,
  shard skew and latency percentiles.

Everything is standard library: the service must boot in the same
environment the simulator runs in.
"""

from .client import ServiceClient, ServiceError
from .jobs import Job, JobQueue, QueueFullError
from .server import ReproService, serve_in_thread
from .top import build_snapshot, render_top, run_top, snapshot_top

__all__ = [
    "Job",
    "JobQueue",
    "QueueFullError",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "serve_in_thread",
    "build_snapshot",
    "render_top",
    "run_top",
    "snapshot_top",
]
