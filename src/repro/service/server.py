"""The ``repro serve`` asyncio HTTP/JSON API.

Endpoints
---------
===========================  ==============================================
``GET  /healthz``            liveness probe
``GET  /metricsz``           Prometheus text exposition of the process
                             metrics registry (histogram exemplars link
                             samples to trace spans)
``GET  /storez``             persistent-store counters + inventory, job
                             queue stats, in-flight dedupe gauge
``GET  /schemes``            registered scheme names
``GET  /workloads``          workload names
``POST /jobs``               submit ``{"kind": "run"|"compare"|"bench",
                             "params": {...}}``; 202 with the job record,
                             429 when the queue is full
``GET  /jobs``               every job (without results)
``GET  /jobs/<id>``          one job, result included when finished
``GET  /jobs/<id>/events``   the job's JSONL lifecycle event stream
``DELETE /jobs/<id>``        cancel a *queued* job (409 once running)
===========================  ==============================================

Job parameters are normalised (defaults filled, names validated) before
fingerprinting, so two submissions that differ only in spelled-out
defaults share one fingerprint — and therefore one simulation, through
the queue's single-flight dedupe and the sharded persistent store.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..experiments import store as result_store
from ..experiments.parallel import run_many
from ..experiments.runner import scheme_names
from ..obs.bench import DIGEST_COUNTERS
from ..obs.metrics import REGISTRY, inc, render_metrics, set_gauge
from ..obs.tracing import TRACE_HEADER, TRACER, TraceContext
from ..workloads import workload_names
from .httpio import (
    ProtocolError,
    Request,
    TextBody,
    json_response,
    read_request,
    text_response,
)
from .jobs import Job, JobQueue, QueueFullError

#: Bounds for submitted trace lengths: a service shared by many clients
#: must not accept a request that pins a worker for hours.
MAX_RECORDS = 2_000_000

JOB_KINDS = ("run", "compare", "bench")


class BadRequest(ValueError):
    """Invalid job submission; reported to the client as a 400."""


def stats_digest(stats) -> Tuple[Dict[str, int], str]:
    """The behaviour digest and its hash for one run's statistics.

    Two clients receiving results for the same fingerprint can compare
    ``digest_sha`` for bit-identity without shipping every counter.
    """
    digest = {name: int(getattr(stats, name)) for name in DIGEST_COUNTERS}
    payload = json.dumps(digest, sort_keys=True, separators=(",", ":"))
    return digest, hashlib.sha256(payload.encode()).hexdigest()[:16]


# -- job parameter normalisation -------------------------------------------

def _norm_common(params: Dict[str, Any]) -> Dict[str, Any]:
    try:
        n_records = int(params.get("n_records", 30_000))
        scale = float(params.get("scale", 1.0))
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad n_records/scale: {exc}") from None
    if not 0 < n_records <= MAX_RECORDS:
        raise BadRequest(
            f"n_records must be in (0, {MAX_RECORDS}], got {n_records}")
    if scale <= 0:
        raise BadRequest(f"scale must be positive, got {scale}")
    jobs = params.get("jobs")
    return {"n_records": n_records, "scale": scale,
            "jobs": int(jobs) if jobs is not None else None}


def _norm_workload(params: Dict[str, Any]) -> str:
    workload = params.get("workload", "web_apache")
    if workload not in workload_names():
        raise BadRequest(f"unknown workload {workload!r}")
    return workload


def _norm_scheme(name: Any) -> str:
    if name not in scheme_names():
        raise BadRequest(f"unknown scheme {name!r}")
    return name


def normalise_params(kind: str, params: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a submission and fill defaults (fingerprint input)."""
    if not isinstance(params, dict):
        raise BadRequest("params must be a JSON object")
    if kind == "run":
        return {
            **_norm_common(params),
            "workload": _norm_workload(params),
            "scheme": _norm_scheme(params.get("scheme", "sn4l_dis_btb")),
            "baseline": bool(params.get("baseline", True)),
        }
    if kind == "compare":
        schemes = params.get("schemes",
                             ["n4l", "sn4l", "sn4l_dis", "sn4l_dis_btb"])
        if isinstance(schemes, str):
            schemes = [s for s in schemes.split(",") if s]
        if not schemes:
            raise BadRequest("compare needs at least one scheme")
        return {
            **_norm_common(params),
            "workload": _norm_workload(params),
            "schemes": [_norm_scheme(s) for s in schemes],
        }
    if kind == "bench":
        from ..obs.bench import MATRICES
        matrix = params.get("matrix", "small")
        if matrix not in MATRICES:
            raise BadRequest(f"unknown bench matrix {matrix!r}")
        try:
            repeats = int(params.get("repeats", 1))
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad repeats: {exc}") from None
        if not 0 < repeats <= 10:
            raise BadRequest(f"repeats must be in [1, 10], got {repeats}")
        return {"matrix": matrix, "repeats": repeats}
    raise BadRequest(
        f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}")


def job_fingerprint(kind: str, params: Dict[str, Any]) -> str:
    """Content fingerprint of a normalised job (code salt included)."""
    return result_store.fingerprint(
        {"kind": "service-job", "job_kind": kind, "params": params})


# -- job executors (run in worker threads) ---------------------------------

def _run_result(result, base=None) -> Dict[str, Any]:
    stats = result.stats
    digest, sha = stats_digest(stats)
    payload: Dict[str, Any] = {
        "workload": result.workload,
        "scheme": result.scheme,
        "summary": stats.summary(),
        "digest": digest,
        "digest_sha": sha,
        "ipc": stats.ipc,
        "cmal": stats.cmal,
        "accuracy": stats.prefetch_accuracy,
        "extra": dict(result.extra),
    }
    if base is not None:
        payload["speedup"] = stats.speedup_over(base.stats)
        payload["coverage"] = stats.coverage_over(base.stats)
        payload["fscr"] = stats.fscr_over(base.stats)
    return payload


def execute_job(job: Job, emit: Callable[..., None]) -> Dict[str, Any]:
    """Run one job to completion (worker thread).

    Fans out through :func:`run_many`, which serves warm fingerprints
    from the in-process memo or the sharded persistent store and seeds
    both for every other client of this service.
    """
    params = job.params

    def progress(result) -> None:
        emit("spec_done", workload=result.workload, scheme=result.scheme)

    if job.kind == "run":
        specs: List[Tuple[str, str]] = []
        if params["baseline"]:
            specs.append((params["workload"], "baseline"))
        specs.append((params["workload"], params["scheme"]))
        results = run_many(specs, jobs=params["jobs"], progress=progress,
                           n_records=params["n_records"],
                           scale=params["scale"])
        base = results[0] if params["baseline"] else None
        payload = _run_result(results[-1], base)
        payload.update(n_records=params["n_records"],
                       scale=params["scale"])
        return payload

    if job.kind == "compare":
        specs = [(params["workload"], s)
                 for s in ["baseline"] + list(params["schemes"])]
        results = run_many(specs, jobs=params["jobs"], progress=progress,
                           n_records=params["n_records"],
                           scale=params["scale"])
        base = results[0]
        return {
            "workload": params["workload"],
            "n_records": params["n_records"],
            "scale": params["scale"],
            "baseline": base.stats.summary(),
            "schemes": {result.scheme: _run_result(result, base)
                        for result in results[1:]},
        }

    if job.kind == "bench":
        from ..obs.bench import append_history, resolve_matrix, run_cell
        records = []
        for cell in resolve_matrix(params["matrix"]):
            record = run_cell(cell, repeats=params["repeats"])
            append_history(record)
            emit("cell_done", cell=record["cell"],
                 mean_records_per_sec=record["mean_records_per_sec"])
            records.append(record)
        return {"matrix": params["matrix"], "records": records}

    raise BadRequest(f"unknown job kind {job.kind!r}")


# -- the server -------------------------------------------------------------

class ReproService:
    """The long-running simulation service (one per process).

    >>> service = ReproService(port=0)        # doctest: +SKIP
    ... await service.start()
    ... host, port = service.address
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, queue_size: int = 64,
                 budget_bytes: Optional[int] = None,
                 execute: Optional[Callable] = None):
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_size = queue_size
        self.budget_bytes = budget_bytes
        self._execute = execute if execute is not None else execute_job
        self.queue: Optional[JobQueue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------

    def events_dir(self) -> Path:
        return result_store.cache_root() / "service" / "jobs"

    async def start(self) -> None:
        store = result_store.get_store()
        if store is not None and self.budget_bytes is not None:
            store.set_budget(self.budget_bytes)
        self.queue = JobQueue(self._execute, workers=self.workers,
                              queue_size=self.queue_size,
                              events_dir=self.events_dir())
        await self.queue.start()
        REGISTRY.add_collector(self._queue_collector)
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port)
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        REGISTRY.remove_collector(self._queue_collector)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.queue is not None:
            await self.queue.close()

    def _queue_collector(self) -> None:
        """Refresh the queue gauges before every ``/metricsz`` render."""
        queue = self.queue
        if queue is None:
            return
        stats = queue.stats()
        set_gauge("repro_job_queue_depth", float(stats["state_queued"]))
        set_gauge("repro_jobs_running", float(stats["state_running"]))
        set_gauge("repro_jobs_inflight", float(stats["inflight"]))

    # -- connection handling -------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(json_response(400, {"error": str(exc)}))
                return
            if request is None:
                return
            # A propagated trace context (the client's X-Repro-Trace
            # header) makes this request a child span of the caller's;
            # without the header the request is served untraced — the
            # *client* is the sampling decision point.
            ctx = TraceContext.from_header(
                request.headers.get(TRACE_HEADER.lower(), ""))
            if ctx is not None:
                with TRACER.span("http.request", parent=ctx,
                                 attrs={"method": request.method,
                                        "path": request.path}) as span:
                    status, payload = await self._dispatch(request)
                    if span is not None:
                        span.attrs["status"] = status
            else:
                status, payload = await self._dispatch(request)
            inc("repro_http_requests_total",
                labels={"method": request.method, "status": str(status)})
            if isinstance(payload, TextBody):
                writer.write(text_response(status, payload))
            else:
                writer.write(json_response(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -------------------------------------------------------

    async def _dispatch(self, request: Request) -> Tuple[int, Any]:
        """Route one request, mapping expected failures to statuses."""
        try:
            return await self._route(request)
        except BadRequest as exc:
            return 400, {"error": str(exc)}
        except QueueFullError as exc:
            return 429, {"error": str(exc)}
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        except Exception as exc:            # noqa: BLE001 - boundary
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    async def _route(self, request: Request) -> Tuple[int, Any]:
        # Runs on the event loop: anything that touches the disk (the
        # JSONL event streams, the store's counters and on-disk
        # overview, fingerprint hashing over params) is pushed to a
        # worker thread, while every queue mutation stays on the loop —
        # asyncio.Queue is not thread-safe.
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if method == "GET":
            if path == "/healthz":
                return 200, {"ok": True}
            if path == "/metricsz":
                # Pure in-memory render (collectors refresh gauges from
                # loop-owned state) — no to_thread needed.
                return 200, TextBody(render_metrics())
            if path == "/storez":
                return 200, await self._storez()
            if path == "/schemes":
                return 200, {"schemes": sorted(scheme_names())}
            if path == "/workloads":
                return 200, {"workloads": list(workload_names())}
            if path == "/jobs":
                assert self.queue is not None
                return 200, {"jobs": [j.as_dict(include_result=False)
                                      for j in self.queue.jobs()]}
            if len(parts) == 2 and parts[0] == "jobs":
                return self._job_status(parts[1])
            if len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "events":
                assert self.queue is not None
                queue = self.queue
                if queue.get(parts[1]) is None:
                    return 404, {"error": f"no such job {parts[1]!r}"}
                events = await asyncio.to_thread(queue.events, parts[1])
                return 200, {"job": parts[1], "events": events}
            return 404, {"error": f"no such endpoint {path!r}"}

        if method == "POST":
            if path == "/jobs":
                return await self._submit(request)
            return 404, {"error": f"no such endpoint {path!r}"}

        if method == "DELETE":
            if len(parts) == 2 and parts[0] == "jobs":
                return self._cancel(parts[1])
            return 404, {"error": f"no such endpoint {path!r}"}

        return 405, {"error": f"method {method} not allowed"}

    async def _submit(self, request: Request) -> Tuple[int, Any]:
        assert self.queue is not None
        body = request.json()
        if not isinstance(body, dict):
            raise BadRequest('body must be {"kind": ..., "params": {...}}')
        kind = body.get("kind")
        params = normalise_params(kind, body.get("params") or {})
        # The fingerprint folds a salt over the simulator sources into
        # the hash, which means reading files — not loop work.
        fingerprint = await asyncio.to_thread(job_fingerprint, kind, params)
        job = self.queue.submit(kind, params, fingerprint,
                                trace=TRACER.current())
        return 202, {"job": job.as_dict(include_result=False)}

    def _job_status(self, job_id: str) -> Tuple[int, Any]:
        assert self.queue is not None
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"no such job {job_id!r}"}
        return 200, {"job": job.as_dict()}

    def _cancel(self, job_id: str) -> Tuple[int, Any]:
        assert self.queue is not None
        outcome = self.queue.cancel(job_id)
        if outcome == "missing":
            return 404, {"error": f"no such job {job_id!r}"}
        if outcome == "cancelled":
            return 200, {"job": job_id, "state": "cancelled"}
        return 409, {"error": f"job {job_id} is {outcome}; only queued "
                              f"jobs can be cancelled", "state": outcome}

    @staticmethod
    def _store_info() -> Dict[str, Any]:
        """Store counters plus the on-disk overview; runs off-loop —
        ``overview()`` stats every cache entry."""
        from ..obs.telemetry import store_event_counts
        store = result_store.get_store()
        info: Dict[str, Any] = {
            "enabled": store is not None,
            "root": str(result_store.cache_root()),
        }
        if store is not None:
            info["counters"] = store.counters()
            info["overview"] = store.overview()
        info["events"] = store_event_counts()
        return info

    async def _storez(self) -> Dict[str, Any]:
        info = await asyncio.to_thread(self._store_info)
        assert self.queue is not None
        return {"store": info, "jobs": self.queue.stats()}


# -- embedding helpers ------------------------------------------------------

class ServiceHandle:
    """A service running on a background thread (tests, smoke drivers)."""

    def __init__(self, service: ReproService, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.service = service
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        assert self.service.address is not None
        return self.service.address

    def close(self, timeout: float = 10.0) -> None:
        async def shutdown() -> None:
            await self.service.close()
        future = asyncio.run_coroutine_threadsafe(shutdown(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_in_thread(timeout: float = 10.0, **kwargs) -> ServiceHandle:
    """Start a :class:`ReproService` on a daemon thread and wait for it.

    The caller's process keeps its main thread (pytest, a driver
    script); the service loop runs beside it.  Returns once the socket
    is bound, so ``handle.address`` is immediately connectable.
    """
    service = ReproService(**kwargs)
    started = threading.Event()
    failure: List[BaseException] = []
    loop = asyncio.new_event_loop()

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                await service.start()
            except BaseException as exc:   # noqa: BLE001 - surfaced below
                failure.append(exc)
                raise
            finally:
                started.set()

        try:
            loop.run_until_complete(boot())
            loop.run_forever()
        except BaseException:
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("repro service failed to start in time")
    if failure:
        raise RuntimeError(f"repro service failed to start: {failure[0]}")
    return ServiceHandle(service, loop, thread)
