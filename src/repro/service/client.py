"""A small blocking client for the ``repro serve`` API.

Used by the tests, the CI smoke job and scripts; one
``http.client.HTTPConnection`` per request because the server answers
``Connection: close``.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from ..obs.tracing import TRACE_HEADER, TRACER


class ServiceError(RuntimeError):
    """An error response (or transport failure) from the service."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Blocking JSON client: submit jobs, poll, read counters.

    >>> client = ServiceClient("127.0.0.1", 8787)     # doctest: +SKIP
    ... job_id = client.submit("run", workload="web_apache",
    ...                        scheme="sn4l_dis_btb")
    ... job = client.wait(job_id)
    ... job["result"]["speedup"]
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def request(self, method: str, path: str,
                payload: Optional[Dict[str, Any]] = None,
                headers: Optional[Dict[str, str]] = None,
                raw: bool = False) -> Any:
        body = None
        send_headers = dict(headers) if headers else {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            try:
                conn.request(method, path, body=body, headers=send_headers)
                response = conn.getresponse()
                raw_body = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"{method} {path} failed: {exc}") from exc
            if raw and response.status < 400:
                # Non-JSON endpoint (/metricsz): hand back the text.
                return raw_body.decode("utf-8", "replace")
            try:
                parsed = json.loads(raw_body.decode("utf-8")) \
                    if raw_body else None
            except ValueError as exc:
                raise ServiceError(
                    f"{method} {path}: non-JSON response "
                    f"({response.status})", response.status) from exc
            if response.status >= 400:
                detail = parsed.get("error",
                                    raw_body.decode("utf-8", "replace")) \
                    if isinstance(parsed, dict) else raw_body.decode(
                        "utf-8", "replace")
                raise ServiceError(f"{method} {path}: {response.status} "
                                   f"{detail}", response.status)
            return parsed
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def storez(self) -> Dict[str, Any]:
        return self.request("GET", "/storez")

    def metricsz(self) -> str:
        """The service's raw Prometheus text exposition."""
        return self.request("GET", "/metricsz", raw=True)

    def schemes(self) -> List[str]:
        return self.request("GET", "/schemes")["schemes"]

    def workloads(self) -> List[str]:
        return self.request("GET", "/workloads")["workloads"]

    def submit(self, kind: str, **params: Any) -> str:
        """Submit a job; returns its id (raises on 4xx/5xx)."""
        # The submission opens the trace: a deterministic root span
        # seeded from the request content, propagated to the service
        # via the X-Repro-Trace header.  When sampling is off (or this
        # call is already inside some other span) the span context does
        # the right thing — no span means no header, and the server
        # serves the request untraced.
        seed = json.dumps({"kind": kind, "params": params},
                          sort_keys=True, default=str)
        with TRACER.span("client.submit", seed=seed,
                         attrs={"kind": kind}) as span:
            headers = None
            if span is not None:
                headers = {TRACE_HEADER: span.context.to_header()}
            response = self.request("POST", "/jobs",
                                    {"kind": kind, "params": params},
                                    headers=headers)
            if span is not None:
                span.attrs["job"] = response["job"]["id"]
        return response["job"]["id"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self.request("GET", f"/jobs/{job_id}")["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/jobs")["jobs"]

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        return self.request("GET", f"/jobs/{job_id}/events")["events"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self.request("DELETE", f"/jobs/{job_id}")

    # -- polling -------------------------------------------------------

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServiceError` on timeout or a failed job.
        """
        from .jobs import TERMINAL_STATES
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                if job.get("trace_id"):
                    # Flush this client's spans (the client.submit
                    # root) into the same per-trace stream the service
                    # persisted its spans to; best-effort by contract.
                    TRACER.persist(job["trace_id"])
                if job["state"] == "failed":
                    raise ServiceError(
                        f"job {job_id} failed: {job.get('error')}")
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after "
                    f"{timeout:.0f}s")
            time.sleep(poll)

    def run_roundtrip(self, **params: Any) -> Tuple[str, Dict[str, Any]]:
        """Submit a run job and wait for it (id, finished job)."""
        job_id = self.submit("run", **params)
        return job_id, self.wait(job_id)
