"""Minimal HTTP/1.1 over asyncio streams (JSON in, JSON out).

The service speaks just enough HTTP for its JSON API: request line,
headers, optional ``Content-Length`` body, one response per connection
(``Connection: close``).  No third-party dependency — the container
that runs simulations has the standard library and nothing else — and
no chunked encoding, pipelining or TLS: clients that need those sit a
reverse proxy in front.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Refuse request bodies beyond this (a job submission is ~1 KiB).
MAX_BODY_BYTES = 8 << 20

#: Refuse unreasonably long request lines / header blocks.
MAX_LINE_BYTES = 64 << 10

_PHRASES = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
}


class ProtocolError(ValueError):
    """Malformed request: the connection is answered 400 and closed."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body parsed as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"request body is not JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Request]:
    """Parse one request from the stream; None on a clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None                 # client closed without a request
        raise ProtocolError("truncated request line") from exc
    except asyncio.LimitOverrunError as exc:
        raise ProtocolError("request line too long") from exc
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError,
                asyncio.LimitOverrunError) as exc:
            raise ProtocolError("truncated header block") from exc
        total += len(raw)
        if total > MAX_LINE_BYTES:
            raise ProtocolError("header block too large")
        text = raw.decode("latin-1").strip()
        if not text:
            break
        name, sep, value = text.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header {text!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise ProtocolError(
            f"bad Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"refusing body of {length} bytes")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("truncated request body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method=method.upper(), target=target,
                   path=split.path or "/", query=query,
                   headers=headers, body=body)


@dataclass
class TextBody:
    """A non-JSON payload a route can return (``/metricsz``).

    The router serialises ``TextBody`` results with
    :func:`text_response` instead of :func:`json_response`; everything
    else on the API stays JSON.
    """

    text: str
    content_type: str = "text/plain; version=0.0.4; charset=utf-8"


def _head(status: int, content_type: str, length: int) -> bytes:
    phrase = _PHRASES.get(status, "Unknown")
    return (f"HTTP/1.1 {status} {phrase}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {length}\r\n"
            f"Connection: close\r\n"
            f"\r\n").encode("latin-1")


def json_response(status: int, payload: Any) -> bytes:
    """Serialise one complete ``Connection: close`` JSON response."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"
    return _head(status, "application/json", len(body)) + body


def text_response(status: int, body: TextBody) -> bytes:
    """Serialise one complete plain-text response (Prometheus scrape)."""
    encoded = body.text.encode("utf-8")
    return _head(status, body.content_type, len(encoded)) + encoded
