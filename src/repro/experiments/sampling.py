"""SimFlex-style statistical sampling (paper Section VI-C).

The paper launches simulations from >100 checkpoints per workload and
reports means with 95% confidence and <4% intervals.  Here a "checkpoint"
is an independently-seeded trace sample of the same workload; this module
runs a scheme over several samples and reports the mean and a
t-distribution confidence interval for each metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from scipy import stats as scipy_stats

from ..frontend import FrontendConfig, FrontendSimulator, FrontendStats
from ..workloads import get_generator

from .runner import build_scheme


@dataclass
class SampledMetric:
    """Mean and confidence interval of one metric across samples."""

    name: str
    samples: List[float]
    confidence: float = 0.95

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def std_error(self) -> float:
        if self.n < 2:
            return 0.0
        mean = self.mean
        var = sum((x - mean) ** 2 for x in self.samples) / (self.n - 1)
        return math.sqrt(var / self.n)

    @property
    def ci_half_width(self) -> float:
        if self.n < 2:
            return 0.0
        t = scipy_stats.t.ppf(0.5 + self.confidence / 2, df=self.n - 1)
        return float(t) * self.std_error

    @property
    def relative_ci(self) -> float:
        """Half-width as a fraction of the mean (paper target: < 4%)."""
        mean = self.mean
        return self.ci_half_width / abs(mean) if mean else 0.0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (f"{self.name}: {self.mean:.4f} "
                f"± {self.ci_half_width:.4f} "
                f"({self.relative_ci:.1%} of mean, n={self.n})")


@dataclass
class SampledRun:
    workload: str
    scheme: str
    metrics: Dict[str, SampledMetric] = field(default_factory=dict)

    def __getitem__(self, name: str) -> SampledMetric:
        return self.metrics[name]


def _default_metrics(stats: FrontendStats,
                     baseline: FrontendStats) -> Dict[str, float]:
    return {
        "speedup": stats.speedup_over(baseline),
        "ipc": stats.ipc,
        "coverage": stats.coverage_over(baseline),
        "cmal": stats.cmal,
        "fscr": stats.fscr_over(baseline),
    }


def run_sampled(workload: str, scheme: str, n_samples: int = 5,
                n_records: int = 60_000, warmup: Optional[int] = None,
                scale: float = 1.0,
                metric_fn: Callable[[FrontendStats, FrontendStats],
                                    Dict[str, float]] = _default_metrics,
                confidence: float = 0.95) -> SampledRun:
    """Run ``scheme`` on ``n_samples`` independent trace samples.

    Each sample is a fresh walk of the same program (different request
    arrival order), like launching from a different checkpoint.  The
    baseline is re-simulated per sample so derived metrics compare runs
    of the *same* trace.
    """
    if n_samples < 2:
        raise ValueError("need at least two samples for an interval")
    if warmup is None:
        warmup = n_records // 3
    generator = get_generator(workload, scale=scale)
    collected: Dict[str, List[float]] = {}
    for sample in range(n_samples):
        trace = generator.generate(n_records, sample=sample)
        baseline = FrontendSimulator(
            trace, config=FrontendConfig(),
            program=generator.program).run(warmup=warmup)
        prefetcher, overrides = build_scheme(scheme)
        stats = FrontendSimulator(
            trace, config=FrontendConfig(**overrides),
            prefetcher=prefetcher,
            program=generator.program).run(warmup=warmup)
        for name, value in metric_fn(stats, baseline).items():
            collected.setdefault(name, []).append(value)

    run = SampledRun(workload=workload, scheme=scheme)
    for name, values in collected.items():
        run.metrics[name] = SampledMetric(name, values,
                                          confidence=confidence)
    return run


def render_sampled(run: SampledRun) -> str:
    lines = [f"{run.workload} / {run.scheme} "
             f"({next(iter(run.metrics.values())).n} samples)"]
    for metric in run.metrics.values():
        lines.append(f"  {metric.name:10s} {metric.mean:8.4f} "
                     f"± {metric.ci_half_width:.4f} "
                     f"({metric.relative_ci:5.1%})")
    return "\n".join(lines)
