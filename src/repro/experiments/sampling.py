"""SimFlex-style statistical sampling (paper Section VI-C).

The paper launches simulations from >100 checkpoints per workload and
reports means with 95% confidence and <4% intervals.  Here a "checkpoint"
is an independently-seeded trace sample of the same workload; this module
runs a scheme over several samples and reports the mean and a
t-distribution confidence interval for each metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..frontend import FrontendConfig, FrontendSimulator, FrontendStats
from ..workloads import get_generator

# The t-distribution machinery moved to repro.experiments.report so the
# benchmark regression gate can share it; the old private names remain
# as aliases for existing callers.
from .report import t_cdf as _t_cdf, t_ppf as _t_ppf
from .runner import build_scheme


@dataclass
class SampledMetric:
    """Mean and confidence interval of one metric across samples."""

    name: str
    samples: List[float]
    confidence: float = 0.95

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / self.n

    @property
    def std_error(self) -> float:
        if self.n < 2:
            return 0.0
        mean = self.mean
        var = sum((x - mean) ** 2 for x in self.samples) / (self.n - 1)
        return math.sqrt(var / self.n)

    @property
    def ci_half_width(self) -> float:
        if self.n < 2:
            return 0.0
        t = _t_ppf(0.5 + self.confidence / 2, df=self.n - 1)
        return t * self.std_error

    @property
    def relative_ci(self) -> float:
        """Half-width as a fraction of the mean (paper target: < 4%)."""
        mean = self.mean
        return self.ci_half_width / abs(mean) if mean else 0.0

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (f"{self.name}: {self.mean:.4f} "
                f"± {self.ci_half_width:.4f} "
                f"({self.relative_ci:.1%} of mean, n={self.n})")


@dataclass
class SampledRun:
    workload: str
    scheme: str
    metrics: Dict[str, SampledMetric] = field(default_factory=dict)

    def __getitem__(self, name: str) -> SampledMetric:
        return self.metrics[name]


def _default_metrics(stats: FrontendStats,
                     baseline: FrontendStats) -> Dict[str, float]:
    return {
        "speedup": stats.speedup_over(baseline),
        "ipc": stats.ipc,
        "coverage": stats.coverage_over(baseline),
        "cmal": stats.cmal,
        "fscr": stats.fscr_over(baseline),
    }


def _simulate_sample(payload: Tuple[str, str, int, int, float, int]
                     ) -> Tuple[FrontendStats, FrontendStats]:
    """One checkpoint: ``(scheme stats, baseline stats)`` for a sample.

    Module-level so the parallel runner can ship it to worker processes;
    both return values are plain counter dataclasses, so pickling them
    back is cheap and lossless.
    """
    workload, scheme, n_records, warmup, scale, sample = payload
    generator = get_generator(workload, scale=scale)
    trace = generator.generate(n_records, sample=sample)
    baseline = FrontendSimulator(
        trace, config=FrontendConfig(),
        program=generator.program).run(warmup=warmup)
    prefetcher, overrides = build_scheme(scheme)
    stats = FrontendSimulator(
        trace, config=FrontendConfig(**overrides),
        prefetcher=prefetcher,
        program=generator.program).run(warmup=warmup)
    return stats, baseline


def run_sampled(workload: str, scheme: str, n_samples: int = 5,
                n_records: int = 60_000, warmup: Optional[int] = None,
                scale: float = 1.0,
                metric_fn: Callable[[FrontendStats, FrontendStats],
                                    Dict[str, float]] = _default_metrics,
                confidence: float = 0.95,
                jobs: Optional[int] = None) -> SampledRun:
    """Run ``scheme`` on ``n_samples`` independent trace samples.

    Each sample is a fresh walk of the same program (different request
    arrival order), like launching from a different checkpoint.  The
    baseline is re-simulated per sample so derived metrics compare runs
    of the *same* trace.  Samples are independent, so ``jobs > 1`` fans
    them out to worker processes; the per-sample seeding makes the
    result identical regardless of the job count.
    """
    if n_samples < 2:
        raise ValueError("need at least two samples for an interval")
    if warmup is None:
        warmup = n_records // 3
    from .parallel import map_parallel
    payloads = [(workload, scheme, n_records, warmup, scale, sample)
                for sample in range(n_samples)]
    collected: Dict[str, List[float]] = {}
    for stats, baseline in map_parallel(_simulate_sample, payloads,
                                        jobs=jobs):
        for name, value in metric_fn(stats, baseline).items():
            collected.setdefault(name, []).append(value)

    run = SampledRun(workload=workload, scheme=scheme)
    for name, values in collected.items():
        run.metrics[name] = SampledMetric(name, values,
                                          confidence=confidence)
    return run


def render_sampled(run: SampledRun) -> str:
    lines = [f"{run.workload} / {run.scheme} "
             f"({next(iter(run.metrics.values())).n} samples)"]
    for metric in run.metrics.values():
        lines.append(f"  {metric.name:10s} {metric.mean:8.4f} "
                     f"± {metric.ci_half_width:.4f} "
                     f"({metric.relative_ci:5.1%})")
    return "\n".join(lines)
