"""Per-figure/table experiment drivers.

Each ``fig*`` / ``tab*`` function regenerates the data behind one figure or
table of the paper's evaluation and returns it as plain dictionaries
(workload -> value, or scheme -> value).  The benchmarks call these and
print rows shaped like the paper's; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analysis import (
    arithmetic_mean,
    comparison_table,
    discontinuity_branch_predictability,
    geometric_mean,
    next4_pattern_predictability,
    uncovered_branches_by_footprint_size,
    uncovered_footprints_by_slots,
)
from ..core import ProactivePrefetcher, Sn4lPrefetcher, dis_only
from ..memory import DynamicallyVirtualizedLlc, LastLevelCache
from ..prefetchers import ShotgunPrefetcher
from ..workloads import get_generator, get_trace, workload_names
from .runner import DEFAULT_RECORDS, DEFAULT_WARMUP, run_scheme

WorkloadList = Optional[Sequence[str]]


def _workloads(workloads: WorkloadList) -> List[str]:
    return list(workloads) if workloads is not None else workload_names()


def _prewarm(specs, n_records: int, jobs: Optional[int] = None) -> None:
    """Fan a figure's runs out to worker processes ahead of the serial
    loop below it; with an effective job count of 1 this is a no-op and
    the driver behaves exactly as before."""
    from .parallel import resolve_jobs, run_many
    if resolve_jobs(jobs) > 1:
        run_many(specs, jobs=jobs, n_records=n_records)


# ----------------------------------------------------------------------
# Section III — why not Shotgun


def fig01_footprint_miss_ratio(workloads: WorkloadList = None,
                               n_records: int = DEFAULT_RECORDS,
                               jobs: Optional[int] = None
                               ) -> Dict[str, float]:
    """Fig. 1: Shotgun's U-BTB footprint miss ratio per workload."""
    out = {}
    _prewarm([(w, "shotgun") for w in _workloads(workloads)], n_records, jobs)
    for w in _workloads(workloads):
        res = run_scheme(w, "shotgun", n_records=n_records)
        out[w] = res.extra["footprint_miss_ratio"]
    return out


def tab1_empty_ftq(workloads: WorkloadList = None,
                   n_records: int = DEFAULT_RECORDS,
                   jobs: Optional[int] = None) -> Dict[str, float]:
    """Table I: fraction of cycles stalled on an empty FTQ under Shotgun."""
    out = {}
    _prewarm([(w, "shotgun") for w in _workloads(workloads)], n_records, jobs)
    for w in _workloads(workloads):
        res = run_scheme(w, "shotgun", n_records=n_records)
        st = res.stats
        out[w] = st.empty_ftq_stall_cycles / st.total_cycles
    return out


# ----------------------------------------------------------------------
# Section IV — motivation


def fig02_sequential_fraction(workloads: WorkloadList = None,
                              n_records: int = DEFAULT_RECORDS,
                              jobs: Optional[int] = None
                              ) -> Dict[str, float]:
    """Fig. 2: fraction of baseline L1i misses that are sequential."""
    out = {}
    _prewarm([(w, "baseline") for w in _workloads(workloads)], n_records, jobs)
    for w in _workloads(workloads):
        st = run_scheme(w, "baseline", n_records=n_records).stats
        misses = st.demand_misses + st.demand_late_prefetch
        out[w] = st.seq_misses / misses if misses else 0.0
    return out


def fig03_nl_seq_coverage(workloads: WorkloadList = None,
                          n_records: int = DEFAULT_RECORDS,
                          jobs: Optional[int] = None
                          ) -> Dict[str, float]:
    """Fig. 3: NL prefetcher's *sequential* miss coverage."""
    out = {}
    _prewarm([(w, s) for w in _workloads(workloads)
              for s in ("baseline", "nl")], n_records, jobs)
    for w in _workloads(workloads):
        base = run_scheme(w, "baseline", n_records=n_records).stats
        nl = run_scheme(w, "nl", n_records=n_records).stats
        out[w] = nl.seq_coverage_over(base)
    return out


def fig04_cmal_nxl(workloads: WorkloadList = None,
                   n_records: int = DEFAULT_RECORDS,
                   jobs: Optional[int] = None) -> Dict[str, float]:
    """Fig. 4: average CMAL of NL / N2L / N4L / N8L."""
    out = {}
    _prewarm([(w, s) for w in _workloads(workloads)
              for s in ("nl", "n2l", "n4l", "n8l")], n_records, jobs)
    for scheme in ("nl", "n2l", "n4l", "n8l"):
        vals = [run_scheme(w, scheme, n_records=n_records).stats.cmal
                for w in _workloads(workloads)]
        out[scheme] = arithmetic_mean(vals)
    return out


def fig05_side_effects(workloads: WorkloadList = None,
                       n_records: int = DEFAULT_RECORDS,
                       jobs: Optional[int] = None
                       ) -> Dict[str, Dict[str, float]]:
    """Fig. 5: LLC latency and L1i external bandwidth of buffered NXL
    prefetchers, normalised to the no-prefetcher baseline."""
    out: Dict[str, Dict[str, float]] = {}
    names = _workloads(workloads)
    _prewarm([(w, s) for w in names
              for s in ("baseline", "nl_buf", "n2l_buf", "n4l_buf",
                        "n8l_buf")], n_records, jobs)
    base_lat = {}
    base_bw = {}
    for w in names:
        res = run_scheme(w, "baseline", n_records=n_records)
        base_lat[w] = res.extra["llc_avg_latency"]
        base_bw[w] = res.extra["external_requests"]
    for scheme in ("nl_buf", "n2l_buf", "n4l_buf", "n8l_buf"):
        lat, bw = [], []
        for w in names:
            res = run_scheme(w, scheme, n_records=n_records)
            lat.append(res.extra["llc_avg_latency"] / base_lat[w])
            bw.append(res.extra["external_requests"] / base_bw[w])
        out[scheme] = {
            "llc_latency": arithmetic_mean(lat),
            "bandwidth": arithmetic_mean(bw),
        }
    return out


def fig06_seq_predictability(workloads: WorkloadList = None,
                             n_records: int = DEFAULT_RECORDS
                             ) -> Dict[str, float]:
    """Fig. 6: stability of the next-4-block access pattern."""
    out = {}
    for w in _workloads(workloads):
        trace = get_trace(w, n_records=n_records)
        out[w] = next4_pattern_predictability(trace)
    return out


def fig07_dis_predictability(workloads: WorkloadList = None,
                             n_records: int = DEFAULT_RECORDS
                             ) -> Dict[str, float]:
    """Fig. 7: stability of the discontinuity-causing branch per block."""
    out = {}
    for w in _workloads(workloads):
        trace = get_trace(w, n_records=n_records)
        out[w] = discontinuity_branch_predictability(trace)
    return out


def fig08_bf_branches(workloads: WorkloadList = None,
                      max_branches: int = 6) -> Dict[int, float]:
    """Fig. 8: uncovered branches vs branches stored per footprint."""
    acc: Dict[int, List[float]] = {}
    for w in _workloads(workloads):
        program = get_generator(w).program
        for k, v in uncovered_branches_by_footprint_size(
                program, max_branches).items():
            acc.setdefault(k, []).append(v)
    return {k: arithmetic_mean(v) for k, v in sorted(acc.items())}


def fig09_bf_per_set(workloads: WorkloadList = None,
                     n_records: int = DEFAULT_RECORDS,
                     slots: Sequence[int] = (1, 2, 3, 4)) -> Dict[int, float]:
    """Fig. 9: uncovered branch footprints vs BF slots per LLC set."""
    acc: Dict[int, List[float]] = {}
    for w in _workloads(workloads):
        gen = get_generator(w)
        trace = get_trace(w, n_records=n_records)
        for k, v in uncovered_footprints_by_slots(trace, gen.program,
                                                  slots=slots).items():
            acc.setdefault(k, []).append(v)
    return {k: arithmetic_mean(v) for k, v in sorted(acc.items())}


# ----------------------------------------------------------------------
# Section VII — evaluation


def fig11_table_sizes(workloads: WorkloadList = None,
                      n_records: int = DEFAULT_RECORDS,
                      seq_sizes: Sequence[Optional[int]] = (
                          2048, 4096, 8192, 16 * 1024, 32 * 1024, None),
                      dis_sizes: Sequence[Optional[int]] = (
                          512, 1024, 2048, 4096, 8192, None),
                      jobs: Optional[int] = None,
                      ) -> Dict[str, Dict[str, float]]:
    """Fig. 11: miss coverage vs SeqTable size (SN4L) and DisTable size
    (SN4L+Dis).  ``None`` is the unlimited reference table."""
    names = _workloads(workloads)
    out: Dict[str, Dict[str, float]] = {"seqtable": {}, "distable": {}}
    # Factory-built sweep points cannot cross a process boundary; only
    # the shared baselines can be prewarmed.
    _prewarm([(w, "baseline") for w in names], n_records, jobs)

    for size in seq_sizes:
        covs = []
        for w in names:
            base = run_scheme(w, "baseline", n_records=n_records).stats
            res = run_scheme(
                w, "sn4l", n_records=n_records,
                prefetcher_factory=lambda s=size: Sn4lPrefetcher(
                    seqtable_entries=s),
                cache_key_extra=f"seq={size}")
            covs.append(res.stats.coverage_over(base))
        out["seqtable"][str(size)] = arithmetic_mean(covs)

    for size in dis_sizes:
        covs = []
        for w in names:
            base = run_scheme(w, "baseline", n_records=n_records).stats
            res = run_scheme(
                w, "sn4l_dis", n_records=n_records,
                prefetcher_factory=lambda s=size: ProactivePrefetcher(
                    enable_btb=False, distable_entries=s,
                    distable_tag_bits=None if s is None else 4),
                cache_key_extra=f"dis={size}")
            covs.append(res.stats.coverage_over(base))
        out["distable"][str(size)] = arithmetic_mean(covs)
    return out


def fig12_tagging(workloads: WorkloadList = None,
                  n_records: int = DEFAULT_RECORDS,
                  distable_entries: int = 512) -> Dict[str, float]:
    """Fig. 12: Dis overprediction under tagless / 4-bit partial / full
    tags (useless prefetches per issued prefetch).

    The paper's workloads have instruction footprints several times its
    4 K-entry DisTable; our synthetic programs are smaller, so the study
    uses a proportionally smaller table to recreate the same
    footprint-to-rows aliasing pressure.
    """
    out = {}
    for label, tag_bits in (("tagless", 0), ("partial_4bit", 4),
                            ("full_tag", None)):
        ratios = []
        for w in _workloads(workloads):
            res = run_scheme(
                w, "dis", n_records=n_records,
                prefetcher_factory=lambda t=tag_bits: dis_only(
                    distable_tag_bits=t,
                    distable_entries=distable_entries),
                cache_key_extra=f"tag={label}/{distable_entries}")
            st = res.stats
            done = st.prefetches_useful + st.prefetches_useless
            ratios.append(st.prefetches_useless / done if done else 0.0)
        out[label] = arithmetic_mean(ratios)
    return out


def fig13_timeliness(workloads: WorkloadList = None,
                     n_records: int = DEFAULT_RECORDS,
                     jobs: Optional[int] = None) -> Dict[str, float]:
    """Fig. 13: CMAL of N4L, SN4L, Dis and SN4L+Dis+BTB."""
    out = {}
    _prewarm([(w, s) for w in _workloads(workloads)
              for s in ("n4l", "sn4l", "dis", "sn4l_dis_btb")],
             n_records, jobs)
    for scheme in ("n4l", "sn4l", "dis", "sn4l_dis_btb"):
        vals = [run_scheme(w, scheme, n_records=n_records).stats.cmal
                for w in _workloads(workloads)]
        out[scheme] = arithmetic_mean(vals)
    return out


def fig14_lookups(workloads: WorkloadList = None,
                  n_records: int = DEFAULT_RECORDS,
                  jobs: Optional[int] = None) -> Dict[str, float]:
    """Fig. 14: L1i lookups normalised to the no-prefetcher baseline."""
    names = _workloads(workloads)
    out = {}
    _prewarm([(w, s) for w in names
              for s in ("baseline", "confluence", "shotgun",
                        "sn4l_dis_btb")], n_records, jobs)
    base = {w: run_scheme(w, "baseline", n_records=n_records
                          ).stats.cache_lookups for w in names}
    for scheme in ("confluence", "shotgun", "sn4l_dis_btb"):
        vals = [run_scheme(w, scheme, n_records=n_records
                           ).stats.cache_lookups / base[w] for w in names]
        out[scheme] = arithmetic_mean(vals)
    return out


def fig15_fscr(workloads: WorkloadList = None,
               n_records: int = DEFAULT_RECORDS,
               schemes: Sequence[str] = ("confluence", "shotgun",
                                         "sn4l_dis_btb"),
               jobs: Optional[int] = None,
               ) -> Dict[str, Dict[str, float]]:
    """Fig. 15: Frontend Stall Cycle Reduction per workload and scheme."""
    names = _workloads(workloads)
    out: Dict[str, Dict[str, float]] = {w: {} for w in names}
    _prewarm([(w, s) for w in names
              for s in ("baseline",) + tuple(schemes)], n_records, jobs)
    for w in names:
        base = run_scheme(w, "baseline", n_records=n_records).stats
        for scheme in schemes:
            st = run_scheme(w, scheme, n_records=n_records).stats
            out[w][scheme] = st.fscr_over(base)
    out["average"] = {
        s: arithmetic_mean([out[w][s] for w in names]) for s in schemes}
    return out


def fig16_speedup(workloads: WorkloadList = None,
                  n_records: int = DEFAULT_RECORDS,
                  schemes: Sequence[str] = ("confluence", "boomerang",
                                            "shotgun", "sn4l_dis_btb"),
                  jobs: Optional[int] = None,
                  ) -> Dict[str, Dict[str, float]]:
    """Fig. 16: speedup over the no-prefetcher baseline."""
    names = _workloads(workloads)
    out: Dict[str, Dict[str, float]] = {w: {} for w in names}
    _prewarm([(w, s) for w in names
              for s in ("baseline",) + tuple(schemes)], n_records, jobs)
    for w in names:
        base = run_scheme(w, "baseline", n_records=n_records).stats
        for scheme in schemes:
            st = run_scheme(w, scheme, n_records=n_records).stats
            out[w][scheme] = st.speedup_over(base)
    out["average"] = {
        s: geometric_mean([out[w][s] for w in names]) for s in schemes}
    return out


def fig17_breakdown(workloads: WorkloadList = None,
                    n_records: int = DEFAULT_RECORDS,
                    jobs: Optional[int] = None) -> Dict[str, float]:
    """Fig. 17: average speedup of N4L, SN4L, SN4L+Dis, SN4L+Dis+BTB and
    the perfect-frontend reference points."""
    names = _workloads(workloads)
    schemes = ("n4l", "sn4l", "sn4l_dis", "sn4l_dis_btb",
               "perfect_l1i", "perfect_l1i_btb")
    out = {}
    _prewarm([(w, s) for w in names
              for s in ("baseline",) + schemes], n_records, jobs)
    for scheme in schemes:
        vals = []
        for w in names:
            base = run_scheme(w, "baseline", n_records=n_records).stats
            st = run_scheme(w, scheme, n_records=n_records).stats
            vals.append(st.speedup_over(base))
        out[scheme] = geometric_mean(vals)
    return out


def fig18_btb_sweep(workloads: WorkloadList = None,
                    n_records: int = DEFAULT_RECORDS,
                    btb_sizes: Sequence[int] = (2048, 1024, 512, 256),
                    jobs: Optional[int] = None
                    ) -> Dict[int, float]:
    """Fig. 18: speedup of SN4L+Dis+BTB over Shotgun as the BTB shrinks.

    Shotgun's three structures scale proportionally with the budget
    (2048 -> 1536/128/512 per the paper's configuration)."""
    names = _workloads(workloads)
    out = {}
    # The "ours" side only varies config overrides, which pickle fine;
    # the scaled-Shotgun side is factory-built and stays serial.
    _prewarm([(w, "sn4l_dis_btb",
               {"config_overrides": {"btb_entries": size}})
              for w in names for size in btb_sizes], n_records, jobs)
    for size in btb_sizes:
        ratio_u = size * 1536 // 2048
        ratio_c = max(32, size * 128 // 2048)
        ratio_rib = max(64, size * 512 // 2048)
        ratios = []
        for w in names:
            ours = run_scheme(w, "sn4l_dis_btb", n_records=n_records,
                              config_overrides={"btb_entries": size})
            shotgun = run_scheme(
                w, "shotgun", n_records=n_records,
                prefetcher_factory=lambda u=ratio_u, c=ratio_c,
                r=ratio_rib: ShotgunPrefetcher(u_entries=u, c_entries=c,
                                               rib_entries=r),
                cache_key_extra=f"btb={size}")
            ratios.append(shotgun.cycles / ours.cycles)
        out[size] = geometric_mean(ratios)
    return out


def tab2_storage() -> Dict[str, Dict[str, object]]:
    """Table II: storage and structural comparison."""
    return comparison_table()


# ----------------------------------------------------------------------
# Section VII-J — DV-LLC effectiveness


def dvllc_experiment(workload: str = "web_apache",
                     n_records: int = DEFAULT_RECORDS,
                     data_blocks: int = 48 * 1024,
                     data_accesses_per_record: int = 2,
                     seed: int = 7) -> Dict[str, float]:
    """Section VII-J: DV-LLC vs conventional LLC hit ratios.

    Replays the workload's instruction stream against both LLC models
    while a synthetic Zipf-distributed data stream shares the cache, and
    compares instruction/data hit ratios.  The paper reports the
    instruction ratio unchanged and the data ratio dropping <= 0.1%.
    """
    gen = get_generator(workload)
    trace = get_trace(workload, n_records=n_records)
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, data_blocks + 1, dtype=float)
    weights = ranks ** -0.8
    weights /= weights.sum()
    data_base = 1 << 30
    data_stream = rng.choice(data_blocks, p=weights,
                             size=n_records * data_accesses_per_record)

    results = {}
    for label, cls in (("conventional", LastLevelCache),
                       ("dvllc", DynamicallyVirtualizedLlc)):
        llc = cls()
        di = 0
        for record in trace:
            llc.access(record.line, is_instruction=True)
            if label == "dvllc":
                offsets = gen.program.branch_byte_offsets(record.line)
                if offsets and llc.get_footprint(record.line) is None:
                    llc.store_footprint(record.line, offsets)
            for _ in range(data_accesses_per_record):
                addr = data_base + int(data_stream[di]) * 64
                di += 1
                llc.access(addr, is_instruction=False)
        results[f"{label}_instruction_hit"] = llc.hit_ratio(instruction=True)
        results[f"{label}_data_hit"] = llc.hit_ratio(instruction=False)
    results["data_hit_drop"] = (results["conventional_data_hit"] -
                                results["dvllc_data_hit"])
    results["instruction_hit_drop"] = (
        results["conventional_instruction_hit"] -
        results["dvllc_instruction_hit"])
    return results


def dvllc_timing_experiment(workload: str = "web_apache",
                            n_records: int = DEFAULT_RECORDS
                            ) -> Dict[str, float]:
    """Section VII-J, timing view: run the VL-ISA SN4L+Dis+BTB scheme
    with the modeled data side over a conventional LLC (footprints in
    dedicated storage is impossible, so BTB prefilling is off) versus the
    DV-LLC (footprints virtualized, BTB prefilling on), and report the
    end-to-end cost/benefit.
    """
    from ..core import sn4l_dis, sn4l_dis_btb
    from ..frontend import FrontendConfig, FrontendSimulator

    gen = get_generator(workload, variable_length=True)
    trace = get_trace(workload, n_records=n_records, variable_length=True)
    warmup = n_records // 3

    base = FrontendSimulator(
        trace, config=FrontendConfig(model_data=True),
        program=gen.program).run(warmup=warmup)
    # Conventional LLC: no place for footprints -> no VL BTB prefilling.
    plain = FrontendSimulator(
        trace, config=FrontendConfig(model_data=True),
        prefetcher=sn4l_dis(), program=gen.program).run(warmup=warmup)
    dv_sim = FrontendSimulator(
        trace, config=FrontendConfig(model_data=True, dv_llc=True),
        prefetcher=sn4l_dis_btb(variable_length=True),
        program=gen.program)
    dv = dv_sim.run(warmup=warmup)

    return {
        "speedup_without_btb_prefill": plain.speedup_over(base),
        "speedup_with_dvllc_btb_prefill": dv.speedup_over(base),
        "btb_misses_without": float(plain.btb_misses),
        "btb_misses_with": float(dv.btb_misses),
        "dvllc_data_hit": dv_sim.llc.hit_ratio(instruction=False),
        "footprint_hit_ratio": (
            dv_sim.llc.footprint_hits /
            max(1, dv_sim.llc.footprint_hits + dv_sim.llc.footprint_misses)),
    }
