"""Export experiment data as CSV / JSON for external plotting.

The figure drivers return plain nested dictionaries; this module
flattens them into tidy rows and writes standard formats, so the
regenerated figures can be re-plotted with any toolchain.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Union

PathLike = Union[str, Path]


def flatten(data: Mapping, value_name: str = "value") -> List[Dict]:
    """Flatten per-key or nested {row: {col: v}} data into tidy rows.

    ``{"a": 1.0}``              -> ``[{"key": "a", value_name: 1.0}]``
    ``{"a": {"x": 1.0}}``       -> ``[{"key": "a", "series": "x", ...}]``
    """
    rows: List[Dict] = []
    for key, value in data.items():
        if isinstance(value, Mapping):
            for col, inner in value.items():
                rows.append({"key": str(key), "series": str(col),
                             value_name: inner})
        else:
            rows.append({"key": str(key), value_name: value})
    return rows


def write_csv(data: Mapping, path: PathLike,
              value_name: str = "value") -> Path:
    """Write flattened figure data as CSV; returns the path."""
    path = Path(path)
    rows = flatten(data, value_name)
    if not rows:
        raise ValueError("nothing to export")
    fieldnames = list(rows[0].keys())
    for row in rows:
        for field in row:
            if field not in fieldnames:
                fieldnames.append(field)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_json(data: Mapping, path: PathLike, title: str = "") -> Path:
    """Write figure data as JSON with a small metadata header."""
    path = Path(path)
    payload = {
        "title": title,
        "data": {str(k): (dict(v) if isinstance(v, Mapping) else v)
                 for k, v in data.items()},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


def read_json(path: PathLike) -> Dict:
    with open(Path(path)) as fh:
        return json.load(fh)


def ascii_bar_chart(data: Mapping[str, float], title: str = "",
                    width: int = 40, fmt: str = "{:.3f}") -> str:
    """Horizontal ASCII bar chart of a {label: value} mapping."""
    if not data:
        raise ValueError("nothing to chart")
    top = max(abs(v) for v in data.values()) or 1.0
    lines = [title] if title else []
    label_width = max(len(str(k)) for k in data)
    for key, value in data.items():
        bar = "#" * max(0, round(abs(value) / top * width))
        lines.append(f"{str(key):{label_width}s} "
                     f"{fmt.format(value):>9s} |{bar}")
    return "\n".join(lines)
