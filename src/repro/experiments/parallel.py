"""Parallel experiment execution: fan (workload, scheme) runs out to workers.

Every figure/table driver reduces to a bag of independent
``run_scheme(workload, scheme, ...)`` simulations; this module runs such
a bag on a :class:`~concurrent.futures.ProcessPoolExecutor` and seeds the
in-process memo cache with the workers' slim results, so the serial
driver code that follows gets pure cache hits.

Results are **bit-identical to serial execution**: workers recompute the
same seeded traces and run the same deterministic engine — parallelism
only changes wall-clock, never a counter.  Workers share the persistent
store (:mod:`repro.experiments.store`), so a fan-out also warms the
on-disk cache for future processes.

Job-count resolution (first match wins): the explicit ``jobs=`` argument,
:func:`set_default_jobs` (the CLI's ``--jobs``), the ``REPRO_JOBS``
environment variable, else 1 (serial — no worker processes at all).

Only registered schemes plus picklable keyword arguments can cross the
process boundary; sweeps built on ``prefetcher_factory`` callables must
keep using :func:`~repro.experiments.runner.run_scheme` serially.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from . import runner
from .runner import RunResult, run_scheme
from ..obs.profile import PROFILER
from ..obs.tracing import TRACER, TraceContext

ENV_JOBS = "REPRO_JOBS"

_default_jobs: Optional[int] = None

#: (source, value) pairs already warned about (one warning per pair).
_warned_values = set()


def parse_count(value, *, source: str, floor: int = 1) -> Optional[int]:
    """Normalize a numeric knob from an env var or CLI flag.

    The one argument-normalization path for every worker/limit count:
    ``REPRO_JOBS``, the subcommands' ``--jobs`` flags and ``repro
    lint``'s all route through here, so an unparsable value warns
    *identically* everywhere — once per distinct (source, value) pair —
    and degrades to None (callers fall back to serial) instead of
    silently forcing serial execution or hard-exiting mid-parse.
    """
    try:
        return max(floor, int(str(value).strip()))
    except (TypeError, ValueError):
        key = (source, str(value))
        if key not in _warned_values:
            _warned_values.add(key)
            warnings.warn(
                f"ignoring invalid {source}={str(value)!r} (not an "
                f"integer); running serial",
                RuntimeWarning, stacklevel=3)
        return None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = unset)."""
    global _default_jobs
    _default_jobs = None if jobs is None else max(1, int(jobs))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count for a run (see module docstring)."""
    if jobs is not None:
        return max(1, int(jobs))
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get(ENV_JOBS, "")
    if env:
        parsed = parse_count(env, source=ENV_JOBS)
        if parsed is not None:
            return parsed
    return 1


#: A run request: ``(workload, scheme)`` or ``(workload, scheme, params)``
#: where ``params`` are extra ``run_scheme`` keyword arguments.
RunSpec = Tuple


def _normalise(spec: RunSpec, common: Dict) -> Tuple[str, str, Dict]:
    if len(spec) == 2:
        workload, scheme = spec
        params: Dict = {}
    elif len(spec) == 3:
        workload, scheme, params = spec
    else:
        raise ValueError(f"run spec must be (workload, scheme[, params]), "
                         f"got {spec!r}")
    merged = dict(common)
    merged.update(params or {})
    return workload, scheme, merged


#: The trace leg of a worker payload: ``(trace_id, parent_span_id,
#: worker_span_id)``, or None when the submitting side has no active
#: trace.  The *parent* pre-allocates the worker's span id (ids fold a
#: per-process counter, and the workers' counters all restart at zero —
#: two workers naming their own spans would collide).
TraceLeg = Optional[Tuple[str, str, str]]


def _worker(payload: Tuple[str, str, Dict, TraceLeg]
            ) -> Tuple[Tuple, RunResult, float, Dict, List[Dict]]:
    """Executed in a worker process: one slim simulation run.

    Returns the memo key, the result, the worker-side wall time, the
    worker's profiler snapshot and its trace-span snapshot for this
    task, so the parent can profile per-worker cost vs pool overhead
    *and* fold the worker's counters and spans into its own profiler
    and tracer.  Both are reset at task start because pool processes
    are reused across tasks — each snapshot must cover exactly one
    task.
    """
    workload, scheme, params, leg = payload
    PROFILER.reset()
    TRACER.reset()
    start = time.perf_counter()
    if leg is not None:
        trace_id, parent_span_id, worker_span_id = leg
        with TRACER.span("run_many.worker",
                         parent=TraceContext(trace_id, parent_span_id),
                         span_id=worker_span_id,
                         attrs={"workload": workload, "scheme": scheme}):
            result = run_scheme(workload, scheme, **params)
    else:
        result = run_scheme(workload, scheme, **params)
    elapsed = time.perf_counter() - start
    key = runner.cache_key(
        workload, scheme,
        n_records=params.get("n_records", runner.DEFAULT_RECORDS),
        warmup=params.get("warmup"),
        scale=params.get("scale", 1.0),
        variable_length=params.get("variable_length", False),
        config_overrides=params.get("config_overrides"),
        cache_key_extra=params.get("cache_key_extra"))
    return key, result, elapsed, PROFILER.snapshot(), TRACER.snapshot()


def run_many(specs: Iterable[RunSpec], jobs: Optional[int] = None,
             progress: Optional[Callable[[RunResult], None]] = None,
             **common) -> List[RunResult]:
    """Run every spec and return results in input order.

    ``common`` keyword arguments (e.g. ``n_records=...``) apply to every
    spec unless its own params override them.  With an effective job
    count of 1 this is exactly a loop over ``run_scheme``; with more, the
    unique specs are distributed over worker processes and the memo cache
    is seeded so later ``run_scheme`` calls in this process hit.

    ``progress``, when given, is called with each spec's result as it
    lands (input order serially; unique specs only, in completion
    order, under a pool) — the service's job event stream hangs off
    this hook.
    """
    normalised = [_normalise(s, common) for s in specs]
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(normalised) <= 1:
        results = []
        for w, s, p in normalised:
            result = run_scheme(w, s, **p)
            if progress is not None:
                progress(result)
            results.append(result)
        return results

    # Deduplicate: figure drivers re-request the baseline many times.
    unique: Dict[Tuple, Tuple[str, str, Dict]] = {}
    for w, s, p in normalised:
        key = runner.cache_key(
            w, s, n_records=p.get("n_records", runner.DEFAULT_RECORDS),
            warmup=p.get("warmup"), scale=p.get("scale", 1.0),
            variable_length=p.get("variable_length", False),
            config_overrides=p.get("config_overrides"),
            cache_key_extra=p.get("cache_key_extra"))
        unique.setdefault(key, (w, s, p))
    # Serve already-memoised keys locally; only miss keys hit the pool.
    todo = {k: v for k, v in unique.items() if k not in runner._CACHE}

    if todo:
        # Crossing the process boundary is the one explicit propagation
        # hop: the current context (the job.run span when running under
        # the service) travels inside each payload, with the worker's
        # span id pre-allocated here so sibling workers never collide.
        ctx = TRACER.current()
        payloads = []
        for w, s, p in todo.values():
            leg: TraceLeg = None
            if ctx is not None:
                leg = (ctx.trace_id, ctx.span_id,
                       TRACER.new_span_id(ctx.trace_id, ctx.span_id,
                                          "run_many.worker"))
            payloads.append((w, s, p, leg))
        pool_start = time.perf_counter()
        try:
            with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(payloads))) as pool:
                busy = 0.0
                for key, result, elapsed, snap, spans in pool.map(
                        _worker, payloads):
                    runner.seed_cache(key, result)
                    PROFILER.record("run_many.worker", elapsed)
                    PROFILER.merge(snap)
                    TRACER.merge(spans)
                    busy += elapsed
                    if progress is not None:
                        progress(result)
            wall = time.perf_counter() - pool_start
            PROFILER.record("run_many.pool", wall)
            # Wall time not covered by (perfectly parallel) worker work:
            # process spin-up, pickling, and queue wait.
            workers = min(n_jobs, len(payloads))
            PROFILER.record("run_many.pool_overhead",
                            max(0.0, wall - busy / workers))
            PROFILER.incr("run_many.worker_runs", len(payloads))
        except BrokenProcessPool:
            # Worker crashed (e.g. fork-hostile environment): degrade to
            # serial execution rather than failing the experiment.
            PROFILER.incr("run_many.broken_pools")
            for w, s, p, _leg in payloads:
                run_scheme(w, s, **p)

    return [run_scheme(w, s, **p) for w, s, p in normalised]


def map_parallel(fn: Callable, items: Sequence,
                 jobs: Optional[int] = None) -> List:
    """Order-preserving parallel map with serial fallback.

    ``fn`` must be a module-level (picklable) callable.  Used by the
    sampling and multicore setup paths to fan out trace generation and
    per-sample simulation.
    """
    items = list(items)
    n_jobs = resolve_jobs(jobs)
    if n_jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(items))) as pool:
            return list(pool.map(fn, items))
    except BrokenProcessPool:
        return [fn(item) for item in items]
