"""Experiment harness: scheme registry, cached runner, figure drivers."""

from . import export, figures, store
from .parallel import (
    map_parallel,
    parse_count,
    resolve_jobs,
    run_many,
    set_default_jobs,
)
from .sampling import SampledMetric, SampledRun, render_sampled, run_sampled
from .store import ResultStore, caching_enabled, get_store, reset_store
from .report import (
    render_matrix,
    render_per_scheme,
    render_per_workload,
    render_storage,
    render_sweep,
)
from .runner import (
    DEFAULT_RECORDS,
    DEFAULT_WARMUP,
    SCHEMES,
    RunResult,
    build_scheme,
    clear_cache,
    run_scheme,
    scheme_names,
)

__all__ = [
    "figures",
    "export",
    "store",
    "run_many",
    "map_parallel",
    "parse_count",
    "resolve_jobs",
    "set_default_jobs",
    "ResultStore",
    "get_store",
    "reset_store",
    "caching_enabled",
    "run_scheme",
    "build_scheme",
    "scheme_names",
    "RunResult",
    "SCHEMES",
    "DEFAULT_RECORDS",
    "DEFAULT_WARMUP",
    "clear_cache",
    "render_per_workload",
    "render_per_scheme",
    "render_matrix",
    "render_sweep",
    "render_storage",
    "run_sampled",
    "render_sampled",
    "SampledRun",
    "SampledMetric",
]
