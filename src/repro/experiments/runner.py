"""Experiment runner: named schemes, cached (workload x scheme) runs.

Every figure/table driver goes through :func:`run_scheme`, which memoises
results so that e.g. the baseline run of a workload is shared by every
figure that normalises against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..core import ProactivePrefetcher, Sn4lPrefetcher, dis_only, sn4l_dis, sn4l_dis_btb
from ..frontend import FrontendConfig, FrontendSimulator, FrontendStats
from ..prefetchers import (
    AdaptiveNxlPrefetcher,
    BoomerangPrefetcher,
    ConfluencePrefetcher,
    ConventionalDiscontinuityPrefetcher,
    FdipPrefetcher,
    NextLineOnMissPrefetcher,
    NextLineTaggedPrefetcher,
    NextXLinePrefetcher,
    PifPrefetcher,
    RdipPrefetcher,
    ShotgunPrefetcher,
    TifsPrefetcher,
)
from ..workloads import get_generator, get_trace

#: Default measurement window, mirroring the paper's warm-then-measure
#: sampling (Section VI-C).
DEFAULT_RECORDS = 150_000
DEFAULT_WARMUP = 50_000


@dataclass
class RunResult:
    """One simulation run plus scheme-side observables."""

    workload: str
    scheme: str
    stats: FrontendStats
    prefetcher: object = None
    simulator: FrontendSimulator = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles


SchemeFactory = Callable[[], Tuple[Optional[object], Dict]]

#: scheme name -> () -> (prefetcher or None, FrontendConfig overrides)
SCHEMES: Dict[str, SchemeFactory] = {
    "baseline": lambda: (None, {}),
    "nl": lambda: (NextXLinePrefetcher(1), {}),
    "n2l": lambda: (NextXLinePrefetcher(2), {}),
    "n4l": lambda: (NextXLinePrefetcher(4), {}),
    "n8l": lambda: (NextXLinePrefetcher(8), {}),
    "nl_buf": lambda: (NextXLinePrefetcher(1, use_buffer=True), {}),
    "n2l_buf": lambda: (NextXLinePrefetcher(2, use_buffer=True), {}),
    "n4l_buf": lambda: (NextXLinePrefetcher(4, use_buffer=True), {}),
    "n8l_buf": lambda: (NextXLinePrefetcher(8, use_buffer=True), {}),
    "sn4l": lambda: (Sn4lPrefetcher(), {}),
    "dis": lambda: (dis_only(), {}),
    "sn4l_dis": lambda: (sn4l_dis(), {}),
    "sn4l_dis_btb": lambda: (sn4l_dis_btb(), {}),
    "discontinuity": lambda: (ConventionalDiscontinuityPrefetcher(), {}),
    "nlmiss": lambda: (NextLineOnMissPrefetcher(), {}),
    "adaptive_nxl": lambda: (AdaptiveNxlPrefetcher(), {}),
    "nltagged": lambda: (NextLineTaggedPrefetcher(), {}),
    "tifs": lambda: (TifsPrefetcher(), {}),
    "pif": lambda: (PifPrefetcher(), {}),
    "rdip": lambda: (RdipPrefetcher(), {}),
    "fdip": lambda: (FdipPrefetcher(), {}),
    "confluence": lambda: (ConfluencePrefetcher(), {}),
    "boomerang": lambda: (BoomerangPrefetcher(), {}),
    "shotgun": lambda: (ShotgunPrefetcher(), {}),
    "perfect_l1i": lambda: (None, {"perfect_l1i": True}),
    "perfect_l1i_btb": lambda: (None, {"perfect_l1i": True,
                                       "perfect_btb": True}),
}


def scheme_names() -> Tuple[str, ...]:
    return tuple(SCHEMES)


def build_scheme(name: str):
    try:
        factory = SCHEMES[name]
    except KeyError:
        known = ", ".join(SCHEMES)
        raise KeyError(f"unknown scheme {name!r}; known: {known}") from None
    return factory()


_CACHE: Dict[Tuple, RunResult] = {}


def run_scheme(workload: str, scheme: str,
               n_records: int = DEFAULT_RECORDS,
               warmup: Optional[int] = None,
               scale: float = 1.0,
               variable_length: bool = False,
               config_overrides: Optional[Dict] = None,
               prefetcher_factory: Optional[Callable] = None,
               cache_key_extra: Optional[str] = None,
               use_cache: bool = True) -> RunResult:
    """Run one (workload, scheme) pair and return the result.

    ``prefetcher_factory`` overrides the registered factory (used by
    sweeps that vary a scheme parameter); pass ``cache_key_extra`` to
    keep such variants distinct in the cache.

    ``warmup=None`` warms on the first third of the trace (which equals
    :data:`DEFAULT_WARMUP` at the default trace length).
    """
    if warmup is None:
        warmup = n_records // 3
    overrides = dict(config_overrides or {})
    key = (workload, scheme, n_records, warmup, scale, variable_length,
           tuple(sorted(overrides.items())), cache_key_extra)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    if prefetcher_factory is not None:
        prefetcher, scheme_overrides = prefetcher_factory(), {}
        if isinstance(prefetcher, tuple):
            prefetcher, scheme_overrides = prefetcher
    else:
        prefetcher, scheme_overrides = build_scheme(scheme)
    merged = {**scheme_overrides, **overrides}

    generator = get_generator(workload, scale=scale,
                              variable_length=variable_length)
    trace = get_trace(workload, n_records=n_records, scale=scale,
                      variable_length=variable_length)
    config = FrontendConfig(**merged)
    sim = FrontendSimulator(trace, config=config, prefetcher=prefetcher,
                            program=generator.program)
    stats = sim.run(warmup=warmup)

    result = RunResult(workload=workload, scheme=scheme, stats=stats,
                       prefetcher=prefetcher, simulator=sim)
    result.extra["llc_avg_latency"] = sim.latency.average_latency
    result.extra["external_requests"] = float(sim.latency.requests)
    if hasattr(prefetcher, "footprint_miss_ratio"):
        result.extra["footprint_miss_ratio"] = prefetcher.footprint_miss_ratio
    if use_cache:
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()
