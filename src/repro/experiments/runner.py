"""Experiment runner: named schemes, cached (workload x scheme) runs.

Every figure/table driver goes through :func:`run_scheme`, which memoises
results so that e.g. the baseline run of a workload is shared by every
figure that normalises against it.

Two cache layers sit under :func:`run_scheme`:

* a bounded in-process memo (``_CACHE``) holding slim
  :class:`RunResult`\\ s — stats and scalar observables only, no live
  simulator, unless the caller opted into ``keep_simulator=True``;
* the persistent on-disk store (:mod:`repro.experiments.store`), keyed
  by a content fingerprint, which lets fresh processes (CLI runs, CI,
  parallel workers) skip simulation entirely.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from . import store as result_store
from ..obs.metrics import inc, observe
from ..obs.profile import PROFILER
from ..obs.tracing import TRACER

from ..core import ProactivePrefetcher, Sn4lPrefetcher, dis_only, sn4l_dis, sn4l_dis_btb
from ..frontend import FrontendConfig, FrontendSimulator, FrontendStats
from ..prefetchers import (
    AdaptiveNxlPrefetcher,
    BoomerangPrefetcher,
    ConfluencePrefetcher,
    ConventionalDiscontinuityPrefetcher,
    FdipPrefetcher,
    NextLineOnMissPrefetcher,
    NextLineTaggedPrefetcher,
    NextXLinePrefetcher,
    PifPrefetcher,
    RdipPrefetcher,
    ShotgunPrefetcher,
    TifsPrefetcher,
)
from ..workloads import get_generator, get_trace

#: Default measurement window, mirroring the paper's warm-then-measure
#: sampling (Section VI-C).
DEFAULT_RECORDS = 150_000
DEFAULT_WARMUP = 50_000


@dataclass
class RunResult:
    """One simulation run plus scheme-side observables.

    ``prefetcher`` and ``simulator`` are populated only for
    ``run_scheme(..., keep_simulator=True)`` callers; the default result
    is slim (stats + ``extra`` scalars) so it pickles cheaply across
    worker processes and does not pin simulator state in the cache.
    """

    workload: str
    scheme: str
    stats: FrontendStats
    prefetcher: object = None
    simulator: FrontendSimulator = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.total_cycles


SchemeFactory = Callable[[], Tuple[Optional[object], Dict]]

#: scheme name -> () -> (prefetcher or None, FrontendConfig overrides)
SCHEMES: Dict[str, SchemeFactory] = {
    "baseline": lambda: (None, {}),
    "nl": lambda: (NextXLinePrefetcher(1), {}),
    "n2l": lambda: (NextXLinePrefetcher(2), {}),
    "n4l": lambda: (NextXLinePrefetcher(4), {}),
    "n8l": lambda: (NextXLinePrefetcher(8), {}),
    "nl_buf": lambda: (NextXLinePrefetcher(1, use_buffer=True), {}),
    "n2l_buf": lambda: (NextXLinePrefetcher(2, use_buffer=True), {}),
    "n4l_buf": lambda: (NextXLinePrefetcher(4, use_buffer=True), {}),
    "n8l_buf": lambda: (NextXLinePrefetcher(8, use_buffer=True), {}),
    "sn4l": lambda: (Sn4lPrefetcher(), {}),
    "dis": lambda: (dis_only(), {}),
    "sn4l_dis": lambda: (sn4l_dis(), {}),
    "sn4l_dis_btb": lambda: (sn4l_dis_btb(), {}),
    "discontinuity": lambda: (ConventionalDiscontinuityPrefetcher(), {}),
    "nlmiss": lambda: (NextLineOnMissPrefetcher(), {}),
    "adaptive_nxl": lambda: (AdaptiveNxlPrefetcher(), {}),
    "nltagged": lambda: (NextLineTaggedPrefetcher(), {}),
    "tifs": lambda: (TifsPrefetcher(), {}),
    "pif": lambda: (PifPrefetcher(), {}),
    "rdip": lambda: (RdipPrefetcher(), {}),
    "fdip": lambda: (FdipPrefetcher(), {}),
    "confluence": lambda: (ConfluencePrefetcher(), {}),
    "boomerang": lambda: (BoomerangPrefetcher(), {}),
    "shotgun": lambda: (ShotgunPrefetcher(), {}),
    "perfect_l1i": lambda: (None, {"perfect_l1i": True}),
    "perfect_l1i_btb": lambda: (None, {"perfect_l1i": True,
                                       "perfect_btb": True}),
}


def scheme_names() -> Tuple[str, ...]:
    return tuple(SCHEMES)


def build_scheme(name: str):
    try:
        factory = SCHEMES[name]
    except KeyError:
        known = ", ".join(SCHEMES)
        raise KeyError(f"unknown scheme {name!r}; known: {known}") from None
    return factory()


#: Bounded LRU memo of slim results (heavier ``keep_simulator`` results
#: share the same bound, which is what keeps live simulators from
#: accumulating — the pre-bound cache pinned every one forever).
_CACHE: "OrderedDict[Tuple, RunResult]" = OrderedDict()
_CACHE_MAX = 256

#: Simulations actually executed by this process (cache misses); tests
#: use this to prove a warm persistent cache skips simulation.
simulations_run = 0


def _fingerprint(workload: str, scheme: str, n_records: int, warmup: int,
                 scale: float, variable_length: bool,
                 overrides: Dict, cache_key_extra: Optional[str]) -> str:
    """Content fingerprint of one run for the persistent store."""
    from ..workloads import get_profile
    return result_store.fingerprint({
        "kind": "run_scheme",
        "profile": get_profile(workload),
        "scheme": scheme,
        "n_records": n_records,
        "warmup": warmup,
        "scale": scale,
        "variable_length": variable_length,
        "overrides": overrides,
        "cache_key_extra": cache_key_extra,
    })


def _build_manifest(fp: str, workload: str, scheme: str, n_records: int,
                    warmup: int, scale: float, variable_length: bool,
                    overrides: Dict, cache_key_extra: Optional[str],
                    duration_s: float, stats, extra: Dict) -> Dict:
    """Machine-readable record of one run, written next to its result."""
    return {
        "fingerprint": fp,
        "workload": workload,
        "scheme": scheme,
        "n_records": n_records,
        "warmup": warmup,
        "scale": scale,
        "variable_length": variable_length,
        "config_overrides": dict(overrides),
        "cache_key_extra": cache_key_extra,
        "duration_s": round(duration_s, 4),
        "written_at": time.time(),
        "code_salt": result_store.code_salt(),
        "store_version": result_store.STORE_VERSION,
        "summary": stats.summary(),
        "extra": dict(extra),
    }


def _memoise(key: Tuple, result: RunResult) -> None:
    _CACHE[key] = result
    _CACHE.move_to_end(key)
    while len(_CACHE) > _CACHE_MAX:
        _CACHE.popitem(last=False)


def seed_cache(key: Tuple, result: RunResult) -> None:
    """Install an externally computed result (parallel workers)."""
    _memoise(key, result)


def cache_key(workload: str, scheme: str,
              n_records: int = DEFAULT_RECORDS,
              warmup: Optional[int] = None,
              scale: float = 1.0,
              variable_length: bool = False,
              config_overrides: Optional[Dict] = None,
              cache_key_extra: Optional[str] = None) -> Tuple:
    """The memo key :func:`run_scheme` uses for these arguments."""
    if warmup is None:
        warmup = n_records // 3
    overrides = dict(config_overrides or {})
    return (workload, scheme, n_records, warmup, scale, variable_length,
            tuple(sorted(overrides.items())), cache_key_extra)


def run_scheme(workload: str, scheme: str,
               n_records: int = DEFAULT_RECORDS,
               warmup: Optional[int] = None,
               scale: float = 1.0,
               variable_length: bool = False,
               config_overrides: Optional[Dict] = None,
               prefetcher_factory: Optional[Callable] = None,
               cache_key_extra: Optional[str] = None,
               use_cache: bool = True,
               keep_simulator: bool = False,
               persistent: Optional[bool] = None) -> RunResult:
    """Run one (workload, scheme) pair and return the result.

    ``prefetcher_factory`` overrides the registered factory (used by
    sweeps that vary a scheme parameter); pass ``cache_key_extra`` to
    keep such variants distinct in the cache.

    ``warmup=None`` warms on the first third of the trace (which equals
    :data:`DEFAULT_WARMUP` at the default trace length).

    ``keep_simulator=True`` returns (and memoises) the live
    :class:`FrontendSimulator`/prefetcher pair for callers that inspect
    scheme-side state; the default result is slim.  ``persistent``
    controls the on-disk store (None = honour ``REPRO_CACHE_DISABLE``).
    """
    global simulations_run
    if warmup is None:
        warmup = n_records // 3
    overrides = dict(config_overrides or {})
    key = (workload, scheme, n_records, warmup, scale, variable_length,
           tuple(sorted(overrides.items())), cache_key_extra)
    if use_cache and key in _CACHE:
        cached = _CACHE[key]
        if cached.simulator is not None or not keep_simulator:
            _CACHE.move_to_end(key)
            PROFILER.incr("run_scheme.memo_hits")
            return cached

    # Persistent layer.  Factory-built variants are only fingerprintable
    # when the caller tagged them (the factory itself cannot be hashed).
    store = None
    fp = None
    if persistent is not False and use_cache and \
            (prefetcher_factory is None or cache_key_extra is not None):
        store = result_store.get_store() if persistent is None \
            else result_store.ResultStore()
        if store is not None:
            fp = _fingerprint(workload, scheme, n_records, warmup, scale,
                              variable_length, overrides, cache_key_extra)
            if not keep_simulator:
                loaded = store.load_result(fp)
                if loaded is not None:
                    stats, extra = loaded
                    result = RunResult(workload=workload, scheme=scheme,
                                       stats=stats, extra=extra)
                    _memoise(key, result)
                    PROFILER.incr("run_scheme.store_hits")
                    return result

    if prefetcher_factory is not None:
        prefetcher, scheme_overrides = prefetcher_factory(), {}
        if isinstance(prefetcher, tuple):
            prefetcher, scheme_overrides = prefetcher
    else:
        prefetcher, scheme_overrides = build_scheme(scheme)
    merged = {**scheme_overrides, **overrides}

    with PROFILER.span("run_scheme.trace"):
        generator = get_generator(workload, scale=scale,
                                  variable_length=variable_length)
        trace = get_trace(workload, n_records=n_records, scale=scale,
                          variable_length=variable_length)
    config = FrontendConfig(**merged)
    sim = FrontendSimulator(trace, config=config, prefetcher=prefetcher,
                            program=generator.program)
    simulations_run += 1
    PROFILER.incr("run_scheme.simulations")
    sim_start = time.perf_counter()
    # The innermost span of a service trace (client -> http -> queue ->
    # worker -> engine); standalone CLI runs start their own root here.
    with TRACER.span("engine.run_scheme",
                     seed=f"{workload}|{scheme}|{n_records}|{scale}",
                     attrs={"workload": workload,
                            "scheme": scheme}) as eng_span:
        stats = sim.run(warmup=warmup)
    sim_elapsed = time.perf_counter() - sim_start
    PROFILER.record("run_scheme.simulate", sim_elapsed)
    inc("repro_runs_total")
    inc("repro_records_simulated_total", float(n_records))
    observe("repro_run_seconds", sim_elapsed,
            exemplar=({"trace_id": eng_span.trace_id,
                       "span_id": eng_span.span_id}
                      if eng_span is not None else None))

    result = RunResult(workload=workload, scheme=scheme, stats=stats)
    result.extra["llc_avg_latency"] = sim.latency.average_latency
    result.extra["external_requests"] = float(sim.latency.requests)
    if hasattr(prefetcher, "footprint_miss_ratio"):
        result.extra["footprint_miss_ratio"] = prefetcher.footprint_miss_ratio
    if store is not None and fp is not None:
        try:
            store.save_result(fp, stats, result.extra)
            store.save_manifest(fp, _build_manifest(
                fp, workload, scheme, n_records, warmup, scale,
                variable_length, overrides, cache_key_extra,
                sim_elapsed, stats, result.extra))
        except OSError:
            pass        # read-only cache dir: persistence is best-effort
    if keep_simulator:
        result.prefetcher = prefetcher
        result.simulator = sim
    if use_cache:
        _memoise(key, result)
    return result


def clear_cache() -> None:
    _CACHE.clear()
