"""Plain-text rendering of experiment results, shaped like the paper's
figures (one row per workload / scheme / sweep point) — plus the shared
statistics helpers (Student-t quantiles, confidence intervals) used by
the sampling layer and the benchmark regression gate."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from ..workloads import DISPLAY_NAMES


# ---------------------------------------------------------------------------
# Statistics helpers (shared by repro.experiments.sampling and
# repro.obs.regress).  Pure stdlib: scipy is consulted when importable,
# with an exact integer-df fallback otherwise.
# ---------------------------------------------------------------------------

def t_cdf(t: float, df: int) -> float:
    """Student-t CDF for integer ``df`` via the elementary closed form
    (Abramowitz & Stegun 26.7.3/26.7.4) — exact, no special functions."""
    theta = math.atan2(t, math.sqrt(df))
    cos2 = math.cos(theta) ** 2
    if df % 2 == 1:
        total, term = 0.0, math.cos(theta)
        for j in range(1, (df - 1) // 2 + 1):
            total += term
            term *= cos2 * (2 * j) / (2 * j + 1)
        a = (theta + math.sin(theta) * total) * 2.0 / math.pi
    else:
        total, term = 0.0, 1.0
        for j in range((df - 2) // 2 + 1):
            total += term
            term *= cos2 * (2 * j + 1) / (2 * j + 2)
        a = math.sin(theta) * total
    return 0.5 * (1.0 + a)


def t_ppf(q: float, df: int) -> float:
    """Student-t quantile; scipy when available, else a stdlib fallback
    that bisects the exact integer-df CDF above."""
    try:
        from scipy import stats as scipy_stats
    except ImportError:
        pass
    else:
        return float(scipy_stats.t.ppf(q, df=df))
    if q == 0.5:
        return 0.0
    if q < 0.5:
        return -t_ppf(1.0 - q, df)
    hi = 1.0
    while t_cdf(hi, df) < q:
        hi *= 2.0
    lo = 0.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < q:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class SampleSummary:
    """Mean and t-distribution confidence interval of one sample set."""

    n: int
    mean: float
    std_error: float
    ci_half_width: float
    confidence: float

    @property
    def lo(self) -> float:
        return self.mean - self.ci_half_width

    @property
    def hi(self) -> float:
        return self.mean + self.ci_half_width

    def overlaps(self, other: "SampleSummary") -> bool:
        """Whether the two confidence intervals intersect."""
        return self.lo <= other.hi and other.lo <= self.hi

    def as_dict(self) -> Dict[str, float]:
        return {"n": float(self.n), "mean": self.mean,
                "std_error": self.std_error,
                "ci_half_width": self.ci_half_width,
                "lo": self.lo, "hi": self.hi,
                "confidence": self.confidence}


def summarize_samples(values: Sequence[float],
                      confidence: float = 0.95) -> SampleSummary:
    """Mean ± t-interval of ``values`` (half-width 0 for n < 2)."""
    values = list(values)
    if not values:
        raise ValueError("need at least one sample")
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return SampleSummary(n, mean, 0.0, 0.0, confidence)
    var = sum((x - mean) ** 2 for x in values) / (n - 1)
    std_error = math.sqrt(var / n)
    half = t_ppf(0.5 + confidence / 2, df=n - 1) * std_error
    return SampleSummary(n, mean, std_error, half, confidence)


def _label(key: str) -> str:
    return DISPLAY_NAMES.get(key, key)


def render_per_workload(title: str, data: Mapping[str, float],
                        fmt: str = "{:.1%}") -> str:
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        lines.append(f"{_label(key):18s} {fmt.format(value)}")
    return "\n".join(lines)


def render_per_scheme(title: str, data: Mapping[str, float],
                      fmt: str = "{:.3f}") -> str:
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        lines.append(f"{key:16s} {fmt.format(value)}")
    return "\n".join(lines)


def render_matrix(title: str, data: Mapping[str, Mapping[str, float]],
                  fmt: str = "{:.3f}") -> str:
    """Render {row: {column: value}} with aligned columns."""
    rows = list(data)
    cols: list = []
    for r in rows:
        for c in data[r]:
            if c not in cols:
                cols.append(c)
    lines = [title, "-" * len(title)]
    header = f"{'':18s} " + " ".join(f"{c:>14s}" for c in cols)
    lines.append(header)
    for r in rows:
        cells = " ".join(
            f"{fmt.format(data[r][c]):>14s}" if c in data[r] else " " * 14
            for c in cols)
        lines.append(f"{_label(r):18s} {cells}")
    return "\n".join(lines)


def render_sweep(title: str, data: Mapping, x_name: str = "x",
                 fmt: str = "{:.3f}") -> str:
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        lines.append(f"{x_name}={key!s:>8s}  {fmt.format(value)}")
    return "\n".join(lines)


def render_storage(table: Dict[str, Dict[str, object]]) -> str:
    lines = ["Table II: storage & structure comparison",
             "-" * 42]
    for scheme, row in table.items():
        kb = row["storage_bytes"] / 1024
        scal = row["scalability_bytes"]
        scal_txt = f"{scal / 1024:.0f} KB" if scal else "-"
        lines.append(
            f"{scheme:14s} storage={kb:6.1f} KB  "
            f"btb_mod={'yes' if row['btb_modification'] else 'no':3s}  "
            f"l1i_buf={'yes' if row['instruction_prefetch_buffer'] else 'no':3s}  "
            f"scaling={scal_txt:8s} search={row['search_complexity']}"
        )
    return "\n".join(lines)
