"""Plain-text rendering of experiment results, shaped like the paper's
figures (one row per workload / scheme / sweep point)."""

from __future__ import annotations

from typing import Dict, Mapping

from ..workloads import DISPLAY_NAMES


def _label(key: str) -> str:
    return DISPLAY_NAMES.get(key, key)


def render_per_workload(title: str, data: Mapping[str, float],
                        fmt: str = "{:.1%}") -> str:
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        lines.append(f"{_label(key):18s} {fmt.format(value)}")
    return "\n".join(lines)


def render_per_scheme(title: str, data: Mapping[str, float],
                      fmt: str = "{:.3f}") -> str:
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        lines.append(f"{key:16s} {fmt.format(value)}")
    return "\n".join(lines)


def render_matrix(title: str, data: Mapping[str, Mapping[str, float]],
                  fmt: str = "{:.3f}") -> str:
    """Render {row: {column: value}} with aligned columns."""
    rows = list(data)
    cols: list = []
    for r in rows:
        for c in data[r]:
            if c not in cols:
                cols.append(c)
    lines = [title, "-" * len(title)]
    header = f"{'':18s} " + " ".join(f"{c:>14s}" for c in cols)
    lines.append(header)
    for r in rows:
        cells = " ".join(
            f"{fmt.format(data[r][c]):>14s}" if c in data[r] else " " * 14
            for c in cols)
        lines.append(f"{_label(r):18s} {cells}")
    return "\n".join(lines)


def render_sweep(title: str, data: Mapping, x_name: str = "x",
                 fmt: str = "{:.3f}") -> str:
    lines = [title, "-" * len(title)]
    for key, value in data.items():
        lines.append(f"{x_name}={key!s:>8s}  {fmt.format(value)}")
    return "\n".join(lines)


def render_storage(table: Dict[str, Dict[str, object]]) -> str:
    lines = ["Table II: storage & structure comparison",
             "-" * 42]
    for scheme, row in table.items():
        kb = row["storage_bytes"] / 1024
        scal = row["scalability_bytes"]
        scal_txt = f"{scal / 1024:.0f} KB" if scal else "-"
        lines.append(
            f"{scheme:14s} storage={kb:6.1f} KB  "
            f"btb_mod={'yes' if row['btb_modification'] else 'no':3s}  "
            f"l1i_buf={'yes' if row['instruction_prefetch_buffer'] else 'no':3s}  "
            f"scaling={scal_txt:8s} search={row['search_complexity']}"
        )
    return "\n".join(lines)
