"""Golden-number regression guards.

The calibration that makes the reproduction track the paper (workload
profiles, latency parameters, backend damping) is spread across many
constants; an innocent change can silently break the headline shapes.
This module pins the headline relations to *tolerance bands* — wide
enough to survive legitimate refactors, tight enough to catch calibration
regressions — and checks a quick run against them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .runner import run_scheme


@dataclass(frozen=True)
class GoldenBand:
    """A metric pinned to [lo, hi]."""

    name: str
    lo: float
    hi: float

    def check(self, value: float) -> str:
        if self.lo <= value <= self.hi:
            return ""
        return (f"{self.name}: {value:.4f} outside "
                f"[{self.lo:.4f}, {self.hi:.4f}]")


#: Headline bands at the standard quick-check size (45 K records,
#: web_apache + oltp_db_a).  Derived from the full-scale report in
#: EXPERIMENTS.md with generous margins.
GOLDEN_BANDS: Tuple[GoldenBand, ...] = (
    GoldenBand("web_apache.baseline.mpki", 25.0, 75.0),
    GoldenBand("web_apache.baseline.seq_fraction", 0.60, 0.92),
    GoldenBand("web_apache.sn4l_dis_btb.speedup", 1.15, 1.50),
    GoldenBand("web_apache.sn4l_dis_btb.cmal", 0.80, 0.99),
    GoldenBand("web_apache.ours_over_shotgun", 0.98, 1.20),
    GoldenBand("oltp_db_a.ours_over_shotgun", 1.01, 1.25),
    GoldenBand("oltp_db_a.shotgun.footprint_miss_ratio", 0.10, 0.45),
)


def measure_goldens(n_records: int = 45_000) -> Dict[str, float]:
    """Run the quick checks and return the measured golden metrics."""
    out: Dict[str, float] = {}
    for w in ("web_apache", "oltp_db_a"):
        base = run_scheme(w, "baseline", n_records=n_records)
        ours = run_scheme(w, "sn4l_dis_btb", n_records=n_records)
        shotgun = run_scheme(w, "shotgun", n_records=n_records)
        st = base.stats
        misses = st.demand_misses + st.demand_late_prefetch
        if w == "web_apache":
            out[f"{w}.baseline.mpki"] = misses / st.instructions * 1000
            out[f"{w}.baseline.seq_fraction"] = \
                st.seq_misses / misses if misses else 0.0
            out[f"{w}.sn4l_dis_btb.speedup"] = \
                ours.stats.speedup_over(base.stats)
            out[f"{w}.sn4l_dis_btb.cmal"] = ours.stats.cmal
        out[f"{w}.ours_over_shotgun"] = \
            shotgun.stats.total_cycles / ours.stats.total_cycles
        if w == "oltp_db_a":
            out[f"{w}.shotgun.footprint_miss_ratio"] = \
                shotgun.extra["footprint_miss_ratio"]
    return out


def check_goldens(n_records: int = 45_000) -> List[str]:
    """Returns a list of violations (empty = calibration intact)."""
    measured = measure_goldens(n_records)
    violations = []
    for band in GOLDEN_BANDS:
        problem = band.check(measured[band.name])
        if problem:
            violations.append(problem)
    return violations
