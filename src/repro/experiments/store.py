"""Persistent result + trace store for experiment runs.

The in-process memo cache in :mod:`repro.experiments.runner` only lives
for one interpreter; every fresh invocation of the figure drivers (CLI,
CI, ``examples/reproduce_paper.py``) used to pay the full pure-Python
simulation cost again.  This module adds an on-disk layer:

* **Results** — one small JSON file per (workload, scheme, config)
  fingerprint holding the :class:`~repro.frontend.stats.FrontendStats`
  counters plus the runner's ``extra`` observables.
* **Traces** — compressed ``.npz`` archives written through
  :mod:`repro.workloads.serialize`, so regenerating a workload's fetch
  trace is a load instead of a CFG walk.

Location: ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.
Set ``REPRO_CACHE_DISABLE=1`` to bypass the store entirely.

Keys are content fingerprints: a SHA-256 over the canonical JSON of every
input that can change the result (workload profile parameters, scheme
name, config overrides, trace length, warmup, seed/sample, …) plus a
*code salt* hashing the ``repro`` package sources — any code change
invalidates every cached entry, which keeps "stale cache" bugs
structurally impossible at the cost of a cold start per code edit.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from ..frontend.stats import FrontendStats

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"

#: Bump to invalidate every stored entry regardless of the code salt.
STORE_VERSION = 1

_CODE_SALT: Optional[str] = None


def cache_root() -> Path:
    """Directory the store lives in (not created until first write)."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def caching_enabled() -> bool:
    """Persistent caching is on unless explicitly disabled."""
    return os.environ.get(ENV_CACHE_DISABLE, "") not in ("1", "true", "yes")


def code_salt() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Fingerprints include this salt, so editing any module under the
    package invalidates all persisted results and traces.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        package_dir = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for source in sorted(package_dir.rglob("*.py")):
            digest.update(str(source.relative_to(package_dir)).encode())
            digest.update(source.read_bytes())
        digest.update(str(STORE_VERSION).encode())
        _CODE_SALT = digest.hexdigest()[:16]
    return _CODE_SALT


def _canonical(value: Any) -> Any:
    """Reduce fingerprint parts to canonical JSON-encodable values."""
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                **_canonical(asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                        key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint(parts: Dict[str, Any]) -> str:
    """Content fingerprint of a run: SHA-256 of canonical JSON + salt."""
    payload = json.dumps({"salt": code_salt(), **_canonical(parts)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class ResultStore:
    """On-disk store of simulation results and fetch traces.

    Concurrent-safe for the parallel runner: writers publish with an
    atomic rename, readers treat any unreadable entry as a miss.
    """

    def __init__(self, root: Optional[Path] = None):
        self._root = Path(root) if root is not None else None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Entries that existed but failed to parse (a corrupt read is
        #: also counted as a miss — callers just re-simulate).
        self.corrupt = 0
        #: Entries removed by :meth:`clear`.
        self.invalidations = 0

    @property
    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    # -- results -------------------------------------------------------

    def result_path(self, fp: str) -> Path:
        return self.root / "results" / f"{fp}.json"

    def load_result(self, fp: str
                    ) -> Optional[Tuple[FrontendStats, Dict[str, float]]]:
        """Return ``(stats, extra)`` for a fingerprint, or None on miss."""
        path = self.result_path(fp)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            stats = FrontendStats(**payload["stats"])
            extra = dict(payload["extra"])
        except (ValueError, KeyError, TypeError):
            # Truncated/garbage entry (e.g. a torn concurrent write):
            # indistinguishable from a miss for the caller, but tracked.
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return stats, extra

    def save_result(self, fp: str, stats: FrontendStats,
                    extra: Dict[str, float]) -> Path:
        path = self.result_path(fp)
        payload = {"version": STORE_VERSION, "stats": asdict(stats),
                   "extra": dict(extra)}
        _atomic_write(path, json.dumps(payload).encode())
        self.writes += 1
        return path

    # -- run manifests -------------------------------------------------

    def manifest_path(self, fp: str) -> Path:
        return self.root / "results" / f"{fp}.manifest.json"

    def save_manifest(self, fp: str, manifest: Dict[str, Any]) -> Path:
        """Write the machine-readable run manifest next to a result."""
        path = self.manifest_path(fp)
        _atomic_write(path, json.dumps(manifest, sort_keys=True,
                                       indent=1).encode())
        return path

    def load_manifest(self, fp: str) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.manifest_path(fp).read_text())
        except (OSError, ValueError):
            return None

    def iter_manifests(self):
        """Yield every readable run manifest (unordered)."""
        folder = self.root / "results"
        try:
            entries = sorted(folder.glob("*.manifest.json"))
        except OSError:
            return
        for path in entries:
            try:
                yield json.loads(path.read_text())
            except (OSError, ValueError):
                continue

    # -- traces --------------------------------------------------------

    def trace_path(self, fp: str) -> Path:
        return self.root / "traces" / f"{fp}.npz"

    def load_trace(self, fp: str):
        from ..workloads.serialize import load_trace
        path = self.trace_path(fp)
        if not path.exists():
            self.misses += 1
            return None
        try:
            trace = load_trace(path)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def save_trace(self, fp: str, trace) -> Path:
        from ..workloads.serialize import save_trace
        path = self.trace_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        # np.savez appends ".npz" to other suffixes, so keep it on the tmp.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name, suffix=".tmp.npz")
        os.close(fd)
        try:
            save_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed.

        Safe against concurrent modification: entries that vanish
        between listing and unlinking (or a directory removed wholesale
        by another process) are simply skipped.
        """
        removed = 0
        for sub in ("results", "traces"):
            folder = self.root / sub
            if not folder.is_dir():
                continue
            try:
                entries = list(folder.iterdir())
            except OSError:
                continue        # directory vanished mid-listing
            for entry in entries:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass        # entry vanished first: same outcome
        self.invalidations += removed
        return removed

    def reset_counters(self) -> None:
        self.hits = self.misses = self.writes = 0
        self.corrupt = self.invalidations = 0

    def counters(self) -> Dict[str, int]:
        """Session counters: hit/miss/corrupt/write/invalidation."""
        return {"hits": self.hits, "misses": self.misses,
                "corrupt": self.corrupt, "writes": self.writes,
                "invalidations": self.invalidations}

    def overview(self) -> Dict[str, Any]:
        """On-disk inventory: entry counts and byte totals per kind."""
        info: Dict[str, Any] = {"root": str(self.root)}
        for kind, pattern in (("results", "*.json"),
                              ("manifests", "*.manifest.json"),
                              ("traces", "*.npz")):
            sub = "traces" if kind == "traces" else "results"
            folder = self.root / sub
            count = size = 0
            if folder.is_dir():
                for path in folder.glob(pattern):
                    if kind == "results" and path.name.endswith(
                            ".manifest.json"):
                        continue
                    try:
                        size += path.stat().st_size
                        count += 1
                    except OSError:
                        continue
            info[kind] = {"count": count, "bytes": size}
        return info


# -- benchmark history ------------------------------------------------------
#
# ``repro bench`` appends one JSON line per measured matrix cell to an
# append-only history under the cache root.  Unlike results/traces the
# history is *not* keyed by the code salt — the whole point is comparing
# measurements across code revisions — so it lives in its own
# subdirectory and survives code edits.

def bench_dir() -> Path:
    """Directory the benchmark history lives in."""
    return cache_root() / "bench"


def bench_history_path() -> Path:
    """The append-only JSONL benchmark history file."""
    return bench_dir() / "history.jsonl"


def append_jsonl(path: Path, record: Dict[str, Any]) -> Path:
    """Append one JSON object as a line to ``path`` (created on demand).

    A single ``write`` of one newline-terminated line: concurrent
    appenders may interleave *lines* but never bytes within a line on
    POSIX, and readers skip any line that fails to parse.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True,
                      separators=(",", ":")) + "\n"
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
    return path


def iter_jsonl(path: Path):
    """Yield parsed records from a JSONL file, skipping corrupt lines."""
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue        # torn concurrent append: skip the line
            if isinstance(record, dict):
                yield record


_STORE: Optional[ResultStore] = None


def get_store() -> Optional[ResultStore]:
    """Process-wide store singleton, or None when caching is disabled."""
    global _STORE
    if not caching_enabled():
        return None
    if _STORE is None or _STORE.root != cache_root():
        _STORE = ResultStore()
    return _STORE


def reset_store() -> None:
    """Drop the singleton (tests re-point ``REPRO_CACHE_DIR``)."""
    global _STORE
    _STORE = None
