"""Persistent, sharded result + trace store for experiment runs.

The in-process memo cache in :mod:`repro.experiments.runner` only lives
for one interpreter; every fresh invocation of the figure drivers (CLI,
CI, ``examples/reproduce_paper.py``) used to pay the full pure-Python
simulation cost again.  This module adds an on-disk layer:

* **Results** — one small JSON file per (workload, scheme, config)
  fingerprint holding the :class:`~repro.frontend.stats.FrontendStats`
  counters plus the runner's ``extra`` observables.
* **Traces** — compressed ``.npz`` archives written through
  :mod:`repro.workloads.serialize`, so regenerating a workload's fetch
  trace is a load instead of a CFG walk.

Location: ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.
Set ``REPRO_CACHE_DISABLE=1`` to bypass the store entirely.

Keys are content fingerprints: a SHA-256 over the canonical JSON of every
input that can change the result (workload profile parameters, scheme
name, config overrides, trace length, warmup, seed/sample, …) plus a
*code salt* hashing the ``repro`` package sources — any code change
invalidates every cached entry, which keeps "stale cache" bugs
structurally impossible at the cost of a cold start per code edit.

Layout
------
Entries are *sharded* by the first two hex characters of the
fingerprint — ``results/ab/<fp>.json``, ``traces/ab/<fp>.npz`` — so a
fleet of clients sweeping a design space never piles tens of thousands
of files into one directory.  Flat pre-shard entries are still read
transparently and migrated into their shard on first access.

Eviction
--------
With a byte budget configured (``$REPRO_CACHE_BUDGET``, e.g. ``512m``,
or :meth:`ResultStore.set_budget`) the store evicts least-recently-used
entries — LRU by file access time, a result and its manifest as one
unit — after each write until the on-disk total fits the budget.
Unbudgeted stores never evict (the code salt already bounds staleness).

The store is shared by concurrent *processes* (parallel runner workers,
``repro serve`` clients) and, within the service, concurrent *threads*:
writers publish with an atomic rename, readers treat unreadable entries
as misses, and session counters are lock-protected.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
import warnings
import zipfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..frontend.stats import FrontendStats

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"
ENV_CACHE_BUDGET = "REPRO_CACHE_BUDGET"

#: Bump to invalidate every stored entry regardless of the code salt.
#: 2: sharded directory layout (old flat entries remain readable).
STORE_VERSION = 2

_CODE_SALT: Optional[str] = None

#: Budget strings already warned about (one warning per distinct value).
_warned_budgets = set()


def cache_root() -> Path:
    """Directory the store lives in (not created until first write)."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def caching_enabled() -> bool:
    """Persistent caching is on unless explicitly disabled."""
    return os.environ.get(ENV_CACHE_DISABLE, "") not in ("1", "true", "yes")


_BUDGET_UNITS = {"": 1, "b": 1, "k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_byte_budget(value) -> Optional[int]:
    """Parse a byte budget: an int, or a string like ``"512m"``.

    Suffixes ``k``/``m``/``g`` (case-insensitive, optional trailing
    ``b``) scale by binary powers.  Unparsable values warn once per
    distinct value and return None (no budget), mirroring how invalid
    ``REPRO_JOBS`` degrades to serial instead of crashing.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return max(0, int(value))
    text = str(value).strip().lower()
    if not text:
        return None
    match = re.fullmatch(r"(\d+(?:\.\d+)?)\s*([kmg]?)b?", text)
    if match is None:
        if text not in _warned_budgets:
            _warned_budgets.add(text)
            warnings.warn(
                f"ignoring invalid cache byte budget {value!r} "
                f"(use e.g. 1073741824, '512m' or '2g'); no eviction",
                RuntimeWarning, stacklevel=2)
        return None
    return int(float(match.group(1)) * _BUDGET_UNITS[match.group(2)])


def env_byte_budget() -> Optional[int]:
    """The byte budget configured via ``$REPRO_CACHE_BUDGET``, if any."""
    return parse_byte_budget(os.environ.get(ENV_CACHE_BUDGET))


def code_salt() -> str:
    """Hash of every ``repro`` source file (memoised per process).

    Fingerprints include this salt, so editing any module under the
    package invalidates all persisted results and traces.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        package_dir = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for source in sorted(package_dir.rglob("*.py")):
            digest.update(str(source.relative_to(package_dir)).encode())
            digest.update(source.read_bytes())
        digest.update(str(STORE_VERSION).encode())
        _CODE_SALT = digest.hexdigest()[:16]
    return _CODE_SALT


#: Default ``object.__repr__``-style reprs (and function/method reprs)
#: embed a per-process memory address: hashing one would silently split
#: fingerprint-identical runs into distinct cache keys across processes.
_ADDRESS_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


def _canonical(value: Any) -> Any:
    """Reduce fingerprint parts to canonical JSON-encodable values.

    Unknown object types are encoded as their type name plus their
    canonicalised instance fields — stable across processes — and
    anything that would only be distinguishable by memory address
    raises :class:`TypeError` instead of silently poisoning the key.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {"__dataclass__": type(value).__name__,
                **_canonical(asdict(value))}
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items(),
                                                        key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    cls = type(value)
    type_name = f"{cls.__module__}.{cls.__qualname__}"
    if cls.__repr__ is not object.__repr__:
        text = repr(value)
        if _ADDRESS_REPR.search(text):
            raise TypeError(
                f"cannot fingerprint {type_name}: repr() embeds a "
                f"per-process memory address ({text!r})")
        return {"__repr__": type_name, "value": text}
    fields = getattr(value, "__dict__", None)
    if fields:
        return {"__object__": type_name, **_canonical(dict(fields))}
    raise TypeError(
        f"cannot fingerprint {type_name}: no stable repr and no "
        f"instance fields (the default object repr is per-process)")


def fingerprint(parts: Dict[str, Any]) -> str:
    """Content fingerprint of a run: SHA-256 of canonical JSON + salt."""
    payload = json.dumps({"salt": code_salt(), **_canonical(parts)},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def shard_of(fp: str) -> str:
    """The two-character shard directory a fingerprint lives in."""
    return fp[:2] if len(fp) >= 2 else "00"


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _notify(kind: str, **fields) -> None:
    """Forward a store lifecycle event to the telemetry listeners.

    Imported lazily: :mod:`repro.obs` depends on this module, so the
    hookup must happen at call time, and a store must keep working even
    if the observability layer is unimportable.
    """
    try:
        from ..obs.telemetry import store_event
    except ImportError:                      # pragma: no cover - bootstrap
        return
    store_event(kind, **fields)


#: Exceptions that mean "entry exists but is garbage" for .npz traces:
#: truncated archives raise BadZipFile/EOFError, header corruption
#: surfaces as KeyError/ValueError from the column reads.
_TRACE_CORRUPTION = (OSError, ValueError, KeyError, EOFError,
                     zipfile.BadZipFile)


class ResultStore:
    """On-disk store of simulation results and fetch traces.

    Concurrent-safe for the parallel runner and the async service:
    writers publish with an atomic rename, readers treat any unreadable
    entry as a miss, and session counters are guarded by a lock (the
    service shares one store across request-handler threads).
    """

    def __init__(self, root: Optional[Path] = None,
                 budget_bytes: Optional[int] = None):
        self._root = Path(root) if root is not None else None
        self._budget = budget_bytes
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Entries that existed but failed to parse (a corrupt read is
        #: also counted as a miss — callers just re-simulate).
        self.corrupt = 0
        #: Entries removed by :meth:`clear`.
        self.invalidations = 0
        #: Entries removed by the LRU byte-budget policy.
        self.evicted = 0
        #: Flat legacy entries moved into their shard on access.
        self.migrated = 0

    @property
    def root(self) -> Path:
        return self._root if self._root is not None else cache_root()

    def _bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + n)

    # -- byte budget ---------------------------------------------------

    def byte_budget(self) -> Optional[int]:
        """Effective eviction budget: explicit, else the environment."""
        return self._budget if self._budget is not None else env_byte_budget()

    def set_budget(self, budget_bytes: Optional[int]) -> None:
        """Pin the eviction budget (overrides ``$REPRO_CACHE_BUDGET``)."""
        self._budget = budget_bytes

    # -- layout --------------------------------------------------------

    def result_path(self, fp: str) -> Path:
        return self.root / "results" / shard_of(fp) / f"{fp}.json"

    def manifest_path(self, fp: str) -> Path:
        return self.root / "results" / shard_of(fp) / f"{fp}.manifest.json"

    def trace_path(self, fp: str) -> Path:
        return self.root / "traces" / shard_of(fp) / f"{fp}.npz"

    def lint_path(self, fp: str) -> Path:
        return self.root / "lint" / shard_of(fp) / f"{fp}.json"

    def _legacy_path(self, sharded: Path) -> Path:
        """Where the same entry lived before the sharded layout."""
        return sharded.parent.parent / sharded.name

    def _migrate(self, legacy: Path, sharded: Path) -> bool:
        """Move a flat entry into its shard (best-effort, counted)."""
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, sharded)
        except OSError:
            return False
        self._bump("migrated")
        return True

    def _iter_files(self, sub: str, pattern: str) -> Iterator[Path]:
        """Every entry file of one kind, flat legacy and sharded alike."""
        folder = self.root / sub
        try:
            flat = sorted(folder.glob(pattern))
            sharded = sorted(folder.glob(f"*/{pattern}"))
        except OSError:
            return
        for path in flat:
            if path.is_file():
                yield path
        for path in sharded:
            if path.is_file():
                yield path

    # -- results -------------------------------------------------------

    def _read_entry_text(self, fp: str) -> Optional[str]:
        """Raw bytes of a result entry, migrating flat legacy files.

        Returns None when the entry is absent under both layouts; any
        other OSError is re-raised for the caller to classify.
        """
        path = self.result_path(fp)
        try:
            return path.read_text()
        except FileNotFoundError:
            pass
        legacy = self._legacy_path(path)
        try:
            text = legacy.read_text()
        except FileNotFoundError:
            return None
        self._migrate(legacy, path)
        return text

    def load_result(self, fp: str
                    ) -> Optional[Tuple[FrontendStats, Dict[str, float]]]:
        """Return ``(stats, extra)`` for a fingerprint, or None on miss."""
        try:
            text = self._read_entry_text(fp)
        except OSError:
            self._bump("misses")
            return None
        if text is None:
            self._bump("misses")
            return None
        try:
            payload = json.loads(text)
            stats = FrontendStats(**payload["stats"])
            extra = dict(payload["extra"])
        except (ValueError, KeyError, TypeError):
            # Truncated/garbage entry (e.g. a torn concurrent write):
            # indistinguishable from a miss for the caller, but tracked.
            self._bump("corrupt")
            self._bump("misses")
            _notify("corrupt", entry="result", fingerprint=fp)
            return None
        self._bump("hits")
        return stats, extra

    def save_result(self, fp: str, stats: FrontendStats,
                    extra: Dict[str, float]) -> Path:
        path = self.result_path(fp)
        payload = {"version": STORE_VERSION, "stats": asdict(stats),
                   "extra": dict(extra)}
        _atomic_write(path, json.dumps(payload).encode())
        self._bump("writes")
        self._maybe_evict(protect=(path, self.manifest_path(fp)))
        return path

    # -- run manifests -------------------------------------------------

    def save_manifest(self, fp: str, manifest: Dict[str, Any]) -> Path:
        """Write the machine-readable run manifest next to a result."""
        path = self.manifest_path(fp)
        _atomic_write(path, json.dumps(manifest, sort_keys=True,
                                       indent=1).encode())
        return path

    def load_manifest(self, fp: str) -> Optional[Dict[str, Any]]:
        path = self.manifest_path(fp)
        for candidate in (path, self._legacy_path(path)):
            try:
                return json.loads(candidate.read_text())
            except (OSError, ValueError):
                continue
        return None

    def iter_manifests(self):
        """Yield every readable run manifest (unordered)."""
        for path in self._iter_files("results", "*.manifest.json"):
            try:
                yield json.loads(path.read_text())
            except (OSError, ValueError):
                continue

    # -- lint file summaries -------------------------------------------

    def load_lint(self, fp: str) -> Optional[Dict[str, Any]]:
        """Cached per-file lint payload (findings + facts + suppressions).

        Keys are content fingerprints salted with the rule-pack version
        (:func:`repro.lint.cache.file_key`), so the entry can only match
        when both the file bytes and the lint implementation are
        unchanged — same hit/miss/corrupt accounting as results.
        """
        try:
            text = self.lint_path(fp).read_text()
        except FileNotFoundError:
            self._bump("misses")
            return None
        except OSError:
            self._bump("misses")
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("lint entry is not an object")
        except ValueError:
            self._bump("corrupt")
            self._bump("misses")
            _notify("corrupt", entry="lint", fingerprint=fp)
            return None
        self._bump("hits")
        return payload

    def save_lint(self, fp: str, payload: Dict[str, Any]) -> Path:
        path = self.lint_path(fp)
        _atomic_write(path, json.dumps(
            payload, sort_keys=True, separators=(",", ":")).encode())
        self._bump("writes")
        self._maybe_evict(protect=(path,))
        return path

    # -- traces --------------------------------------------------------

    def load_trace(self, fp: str):
        from ..workloads.serialize import load_trace
        path = self.trace_path(fp)
        legacy = self._legacy_path(path)
        # No exists() probe: open both candidates and classify the
        # failure, so a file vanishing between check and use (TOCTOU)
        # reads as the plain miss it is.
        for candidate in (path, legacy):
            try:
                trace = load_trace(candidate)
            except FileNotFoundError:
                continue
            except _TRACE_CORRUPTION:
                # The entry exists but failed to parse: corrupt, not a
                # plain miss — same accounting as load_result.
                self._bump("corrupt")
                self._bump("misses")
                _notify("corrupt", entry="trace", fingerprint=fp)
                return None
            if candidate is legacy:
                self._migrate(legacy, path)
            self._bump("hits")
            return trace
        self._bump("misses")
        return None

    def save_trace(self, fp: str, trace) -> Path:
        from ..workloads.serialize import save_trace
        path = self.trace_path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        # np.savez appends ".npz" to other suffixes, so keep it on the tmp.
        fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                                   prefix=path.name, suffix=".tmp.npz")
        os.close(fd)
        try:
            save_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._bump("writes")
        self._maybe_evict(protect=(path,))
        return path

    # -- eviction ------------------------------------------------------

    def _entries(self) -> List[Tuple[float, int, Tuple[Path, ...]]]:
        """Evictable units: ``(atime, bytes, paths)`` per entry.

        A result and its manifest form one unit (evicting a result
        without its manifest would strand an unreadable orphan); traces
        stand alone.  Entries that vanish mid-scan are skipped.
        """
        units: List[Tuple[float, int, Tuple[Path, ...]]] = []
        for path in self._iter_files("results", "*.json"):
            if path.name.endswith(".manifest.json"):
                continue
            try:
                st = path.stat()
            except OSError:
                continue
            size = st.st_size
            group = [path]
            manifest = path.with_name(
                path.name[:-len(".json")] + ".manifest.json")
            try:
                size += manifest.stat().st_size
                group.append(manifest)
            except OSError:
                pass
            units.append((st.st_atime, size, tuple(group)))
        for sub, pattern in (("traces", "*.npz"), ("lint", "*.json")):
            for path in self._iter_files(sub, pattern):
                try:
                    st = path.stat()
                except OSError:
                    continue
                units.append((st.st_atime, st.st_size, (path,)))
        return units

    def evict(self, budget_bytes: Optional[int] = None,
              protect: Sequence[Path] = ()) -> int:
        """Remove least-recently-used entries until under the budget.

        Returns the number of entries (result+manifest units or traces)
        removed.  ``protect`` paths — typically the entry that was just
        written — are never evicted, so a budget smaller than one entry
        cannot evict the write it is trying to make room for.
        """
        budget = budget_bytes if budget_bytes is not None \
            else self.byte_budget()
        if budget is None:
            return 0
        units = self._entries()
        total = sum(size for _, size, _ in units)
        if total <= budget:
            return 0
        protected = {Path(p) for p in protect}
        removed = 0
        freed = 0
        for _, size, group in sorted(units, key=lambda u: u[0]):
            if total - freed <= budget:
                break
            if any(path in protected for path in group):
                continue
            gone = False
            for path in group:
                try:
                    path.unlink()
                    gone = True
                except OSError:
                    pass        # another process evicted it first
            if gone:
                freed += size
                removed += 1
        if removed:
            self._bump("evicted", removed)
            _notify("evict", entries=removed, freed_bytes=freed,
                    budget_bytes=budget)
        return removed

    def _maybe_evict(self, protect: Sequence[Path] = ()) -> None:
        if self.byte_budget() is not None:
            self.evict(protect=protect)

    # -- maintenance ---------------------------------------------------

    def clear(self) -> int:
        """Delete every stored entry; returns the number removed.

        Safe against concurrent modification: entries that vanish
        between listing and unlinking (or a directory removed wholesale
        by another process) are simply skipped.  Emptied shard
        directories are pruned best-effort.
        """
        removed = 0
        for sub in ("results", "traces", "lint"):
            folder = self.root / sub
            if not folder.is_dir():
                continue
            try:
                entries = list(folder.iterdir())
            except OSError:
                continue        # directory vanished mid-listing
            shards: List[Path] = []
            for entry in entries:
                if entry.is_dir():
                    shards.append(entry)
                    try:
                        files = list(entry.iterdir())
                    except OSError:
                        continue
                    for path in files:
                        try:
                            path.unlink()
                            removed += 1
                        except OSError:
                            pass        # entry vanished first
                else:
                    try:
                        entry.unlink()
                        removed += 1
                    except OSError:
                        pass            # entry vanished first: same outcome
            for shard in shards:
                try:
                    shard.rmdir()
                except OSError:
                    pass                # non-empty or already gone
        self._bump("invalidations", removed)
        return removed

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = self.misses = self.writes = 0
            self.corrupt = self.invalidations = 0
            self.evicted = self.migrated = 0

    def adopt_counters(self, other: "ResultStore") -> None:
        """Carry another store's session counters into this one.

        Used when the process-wide singleton is re-pointed at a new
        cache directory: the session totals keep accumulating instead
        of silently resetting to zero.
        """
        theirs = other.counters()
        with self._lock:
            for name, value in sorted(theirs.items()):
                setattr(self, name, getattr(self, name) + value)

    def counters(self) -> Dict[str, int]:
        """Session counters: hit/miss/corrupt/write/evict/..."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses,
                    "corrupt": self.corrupt, "writes": self.writes,
                    "invalidations": self.invalidations,
                    "evicted": self.evicted, "migrated": self.migrated}

    def overview(self) -> Dict[str, Any]:
        """On-disk inventory: entry counts and byte totals per kind.

        Each kind also reports per-shard occupancy (``shards``: shard
        directory -> ``{"count", "bytes"}``; flat legacy entries count
        under ``"-"``) — the surface ``repro stats``, ``/storez`` and
        ``repro top`` use to show how evenly the fingerprint space is
        spreading across shard directories.
        """
        info: Dict[str, Any] = {"root": str(self.root)}
        for kind, sub, pattern in (("results", "results", "*.json"),
                                   ("manifests", "results",
                                    "*.manifest.json"),
                                   ("traces", "traces", "*.npz"),
                                   ("lint", "lint", "*.json")):
            count = size = 0
            shards: Dict[str, Dict[str, int]] = {}
            for path in self._iter_files(sub, pattern):
                if kind == "results" and path.name.endswith(
                        ".manifest.json"):
                    continue
                try:
                    nbytes = path.stat().st_size
                except OSError:
                    continue
                size += nbytes
                count += 1
                shard = path.parent.name if path.parent.name != sub \
                    else "-"
                cell = shards.setdefault(shard,
                                         {"count": 0, "bytes": 0})
                cell["count"] += 1
                cell["bytes"] += nbytes
            info[kind] = {"count": count, "bytes": size,
                          "shards": dict(sorted(shards.items()))}
        info["budget_bytes"] = self.byte_budget()
        return info


# -- benchmark history ------------------------------------------------------
#
# ``repro bench`` appends one JSON line per measured matrix cell to an
# append-only history under the cache root.  Unlike results/traces the
# history is *not* keyed by the code salt — the whole point is comparing
# measurements across code revisions — so it lives in its own
# subdirectory and survives code edits.

def bench_dir() -> Path:
    """Directory the benchmark history lives in."""
    return cache_root() / "bench"


def bench_history_path() -> Path:
    """The append-only JSONL benchmark history file."""
    return bench_dir() / "history.jsonl"


def append_jsonl(path: Path, record: Dict[str, Any]) -> Path:
    """Append one JSON object as a line to ``path`` (created on demand).

    The encoded line goes out as a single ``os.write`` on an
    ``O_APPEND`` descriptor: the kernel serialises appends to a regular
    file per write call, so concurrent appenders may interleave *lines*
    but never bytes within a line.  (A buffered text-mode ``write`` has
    no such guarantee — lines longer than the stdio buffer are flushed
    in chunks and tear under concurrency.)  Readers skip any line that
    fails to parse.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    data = (json.dumps(record, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o666)
    try:
        view = memoryview(data)
        while view:             # a partial write of a regular file is
            view = view[os.write(fd, view):]    # possible only on e.g.
    finally:                                    # ENOSPC; never silent
        os.close(fd)
    return path


def iter_jsonl(path: Path):
    """Yield parsed records from a JSONL file, skipping corrupt lines."""
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                record = json.loads(raw)
            except ValueError:
                continue        # torn concurrent append: skip the line
            if isinstance(record, dict):
                yield record


_STORE: Optional[ResultStore] = None


def get_store() -> Optional[ResultStore]:
    """Process-wide store singleton, or None when caching is disabled.

    The singleton's root is pinned at creation; when ``REPRO_CACHE_DIR``
    changes mid-process the store is re-pointed at the new directory,
    the session counters carry over, and a ``repoint`` telemetry event
    records the move (they used to silently reset to zero).
    """
    global _STORE
    if not caching_enabled():
        return None
    root = cache_root()
    if _STORE is None:
        _STORE = ResultStore(root)
    elif _STORE.root != root:
        old = _STORE
        _STORE = ResultStore(root)
        _STORE.adopt_counters(old)
        _notify("repoint", old_root=str(old.root), new_root=str(root),
                carried=old.counters())
    return _STORE


def reset_store() -> None:
    """Drop the singleton (tests re-point ``REPRO_CACHE_DIR``)."""
    global _STORE
    _STORE = None
