"""Struct-of-arrays (SoA) views of fetch traces for the vectorized engine.

The generic engine loop walks a list of :class:`FetchRecord` objects and
pays an attribute lookup for every field it touches, every record, every
run.  The vectorized engine core instead consumes a :class:`RecordBatch`:
parallel arrays of the per-record fields, plus derived per-run arrays
(cache-set indices, delivery cycles, branch positions) computed once for
the whole trace — as numpy ufunc sweeps when numpy is importable, as
plain list comprehensions otherwise.

numpy is an accelerator, never a requirement, for this module: set
``REPRO_NO_NUMPY=1`` (or pass ``use_numpy=False``) to force the pure
python fallback, which produces bit-identical arrays.  CI runs the test
suite in both modes.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

_np = None
if not os.environ.get("REPRO_NO_NUMPY"):
    try:
        import numpy as _np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - numpy is baked into CI images
        _np = None

#: True when the numpy acceleration is active (import succeeded and
#: ``REPRO_NO_NUMPY`` is unset).  Tests flip behaviour per call through
#: ``use_numpy=`` instead of mutating this.
HAVE_NUMPY = _np is not None


class EngineView:
    """Per-run arrays the vectorized engine span loop indexes.

    All fields are plain python lists of plain python ints/bools — list
    indexing beats both attribute access on ``__slots__`` records and
    numpy scalar extraction inside a hot python loop.  numpy is used to
    *derive* the arrays, not to hold them.
    """

    __slots__ = ("lines", "keys", "set_idx", "n_instr", "delivery",
                 "kinds", "taken", "branch_positions")

    def __init__(self, lines: List[int], keys: List[int],
                 set_idx: List[int], n_instr: List[int],
                 delivery: List[int], kinds: List[int], taken: List[bool],
                 branch_positions: List[int]):
        self.lines = lines
        self.keys = keys
        self.set_idx = set_idx
        self.n_instr = n_instr
        self.delivery = delivery
        self.kinds = kinds
        self.taken = taken
        #: Sorted indices of branch-terminated records; the engine steps
        #: region-at-a-time between consecutive entries.
        self.branch_positions = branch_positions


class RecordBatch:
    """SoA snapshot of a fetch-record sequence.

    The snapshot is taken eagerly at construction: later mutation of the
    source records (e.g. ``mark_sequential``) does not leak into a batch
    already built, which is why the engine builds one per ``run()``.
    """

    __slots__ = ("n", "lines", "n_instr", "kinds", "taken")

    def __init__(self, lines: List[int], n_instr: List[int],
                 kinds: List[int], taken: List[bool]):
        self.n = len(lines)
        self.lines = lines
        self.n_instr = n_instr
        self.kinds = kinds
        self.taken = taken

    @classmethod
    def from_records(cls, records: Sequence) -> "RecordBatch":
        return cls([r.line for r in records],
                   [r.n_instr for r in records],
                   [int(r.branch_kind) for r in records],
                   [r.taken for r in records])

    def engine_view(self, block_size: int, n_sets: int, width: int,
                    use_numpy: Optional[bool] = None) -> EngineView:
        """Derive the per-run arrays for one cache geometry / fetch width.

        ``use_numpy=None`` follows module availability; ``False`` forces
        the pure-python fallback (``True`` with numpy missing raises).
        """
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        if use_numpy and _np is None:
            raise RuntimeError("numpy requested but not importable "
                               "(REPRO_NO_NUMPY set or numpy missing)")
        if use_numpy:
            lines = _np.asarray(self.lines, dtype=_np.int64)
            keys = lines // block_size
            set_idx = keys % n_sets
            n_instr = _np.asarray(self.n_instr, dtype=_np.int64)
            delivery = -(-n_instr // width)
            kinds = _np.asarray(self.kinds, dtype=_np.int64)
            branch_positions = _np.flatnonzero(kinds).tolist()
            return EngineView(self.lines, keys.tolist(), set_idx.tolist(),
                              self.n_instr, delivery.tolist(), self.kinds,
                              self.taken, branch_positions)
        keys = [line // block_size for line in self.lines]
        return EngineView(self.lines, keys,
                          [k % n_sets for k in keys],
                          self.n_instr,
                          [-(-n // width) for n in self.n_instr],
                          self.kinds, self.taken,
                          [i for i, k in enumerate(self.kinds) if k])


def engine_view(records: Sequence, block_size: int, n_sets: int,
                width: int, use_numpy: Optional[bool] = None) -> EngineView:
    """One-shot helper: snapshot ``records`` and derive the run arrays."""
    return RecordBatch.from_records(records).engine_view(
        block_size, n_sets, width, use_numpy=use_numpy)
