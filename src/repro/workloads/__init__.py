"""Synthetic server workloads: profiles, trace records, and trace generation."""

from .profiles import (
    ALL_PROFILES,
    DISPLAY_NAMES,
    MEDIA_STREAMING,
    OLTP_DB_A,
    OLTP_DB_B,
    PROFILES_BY_NAME,
    WEB_APACHE,
    WEB_FRONTEND,
    WEB_SEARCH,
    WEB_ZEUS,
    WalkParams,
    WorkloadProfile,
    get_profile,
    workload_names,
)
from .serialize import load_trace, save_trace
from .soa import HAVE_NUMPY, EngineView, RecordBatch, engine_view
from .trace import NO_ADDR, FetchRecord, Trace, mark_sequential
from .tracegen import TraceGenerator, clear_cache, get_generator, get_trace

__all__ = [
    "WorkloadProfile",
    "WalkParams",
    "ALL_PROFILES",
    "PROFILES_BY_NAME",
    "DISPLAY_NAMES",
    "MEDIA_STREAMING",
    "OLTP_DB_A",
    "OLTP_DB_B",
    "WEB_APACHE",
    "WEB_ZEUS",
    "WEB_FRONTEND",
    "WEB_SEARCH",
    "workload_names",
    "get_profile",
    "FetchRecord",
    "Trace",
    "NO_ADDR",
    "mark_sequential",
    "TraceGenerator",
    "get_generator",
    "get_trace",
    "clear_cache",
    "save_trace",
    "load_trace",
    "RecordBatch",
    "EngineView",
    "engine_view",
    "HAVE_NUMPY",
]
