"""Dynamic fetch-trace records.

The frontend simulator is trace-driven at *cache-line visit* granularity:
one record per contiguous run of instructions a basic-block visit executes
inside one cache line.  This is the natural granularity for instruction
prefetching — every L1i access, miss classification (sequential vs
discontinuity) and BTB event is expressible on it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..isa import CACHE_BLOCK_SIZE, BranchKind

NO_ADDR = -1


class FetchRecord:
    """One visit to (part of) a cache line by the fetch stream.

    ``branch_kind`` is ``BranchKind.NOT_BRANCH`` unless this span ends with
    the basic block's terminator.  ``taken`` tells whether that terminator
    actually transferred control in this dynamic instance; ``branch_target``
    is the dynamic target pc when taken (calls: callee entry, returns: the
    return site, conditionals: the encoded target).
    """

    __slots__ = ("line", "first_pc", "n_instr", "seq",
                 "branch_pc", "branch_kind", "branch_target", "branch_size",
                 "taken", "ctx_switch")

    def __init__(self, line: int, first_pc: int, n_instr: int, seq: bool,
                 branch_pc: int = NO_ADDR,
                 branch_kind: BranchKind = BranchKind.NOT_BRANCH,
                 branch_target: int = NO_ADDR, branch_size: int = 0,
                 taken: bool = False, ctx_switch: bool = False):
        self.line = line
        self.first_pc = first_pc
        self.n_instr = n_instr
        self.seq = seq
        self.branch_pc = branch_pc
        self.branch_kind = branch_kind
        self.branch_target = branch_target
        self.branch_size = branch_size
        self.taken = taken
        #: First record after a request context switch: an asynchronous
        #: control transfer no branch-prediction-directed runahead can
        #: anticipate.
        self.ctx_switch = ctx_switch

    @property
    def has_branch(self) -> bool:
        return self.branch_kind is not BranchKind.NOT_BRANCH

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        b = (f" {self.branch_kind.name}@{self.branch_pc:#x}"
             f"->{self.branch_target:#x} taken={self.taken}"
             if self.has_branch else "")
        return (f"FetchRecord(line={self.line:#x}, pc={self.first_pc:#x}, "
                f"n={self.n_instr}, seq={self.seq}{b})")


class Trace:
    """A finished fetch trace plus cheap aggregate statistics."""

    def __init__(self, records: List[FetchRecord], name: str = ""):
        self.records = records
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    @property
    def n_instructions(self) -> int:
        return sum(r.n_instr for r in self.records)

    @property
    def n_branches(self) -> int:
        return sum(1 for r in self.records if r.has_branch)

    def unique_lines(self) -> int:
        return len({r.line for r in self.records})

    def footprint_bytes(self) -> int:
        return self.unique_lines() * CACHE_BLOCK_SIZE


def mark_sequential(records: Iterable[FetchRecord]) -> None:
    """Recompute each record's ``seq`` flag from the line sequence."""
    prev: Optional[int] = None
    for r in records:
        r.seq = prev is not None and r.line == prev + CACHE_BLOCK_SIZE
        prev = r.line
