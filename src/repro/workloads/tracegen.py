"""Trace generation: walk a synthetic program like a server request loop.

The walker repeatedly picks a request-handler function (Zipf-popular),
executes it to completion with a call stack, and emits one
:class:`~repro.workloads.trace.FetchRecord` per cache-line span the fetch
stream touches.  Branch outcomes are sampled from the per-edge
probabilities fixed at CFG-generation time, which is what makes block
successor patterns *stable* — the property SN4L's predictor (Fig. 6) and
Dis's single-dominant-branch observation (Fig. 7) rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cfg import BasicBlock, ControlFlowGraph, Program, generate_cfg, layout_program
from ..isa import BranchKind
from .profiles import WorkloadProfile, get_profile
from .trace import NO_ADDR, FetchRecord, Trace


class TraceGenerator:
    """Builds the program for a profile and walks it into traces."""

    def __init__(self, profile: WorkloadProfile, scale: float = 1.0,
                 variable_length: bool = False):
        self.profile = profile.scaled(scale) if scale != 1.0 else profile
        self.cfg: ControlFlowGraph = generate_cfg(self.profile.cfg,
                                                  seed=self.profile.seed)
        self.program: Program = layout_program(self.cfg,
                                               variable_length=variable_length,
                                               seed=self.profile.seed)
        walk = self.profile.walk
        n_handlers = min(walk.n_handlers, len(self.cfg.functions))
        ranks = np.arange(1, n_handlers + 1, dtype=float)
        weights = ranks ** (-walk.zipf_s)
        self._handler_weights = weights / weights.sum()
        self._handlers = list(range(n_handlers))
        # Fallthrough-block cache: bid -> next BasicBlock (or None).
        self._fallthrough: Dict[int, Optional[BasicBlock]] = {}

    def _fall(self, blk: BasicBlock) -> Optional[BasicBlock]:
        nxt = self._fallthrough.get(blk.bid, _MISSING)
        if nxt is _MISSING:
            nxt = self.cfg.fallthrough_of(blk)
            self._fallthrough[blk.bid] = nxt
        return nxt

    def _pick_handler(self, rng: np.random.Generator,
                      phase: int = 0) -> BasicBlock:
        if phase:
            # Rotate the popularity ranking: yesterday's hot handlers
            # cool down, colder ones heat up.
            handlers = np.roll(self._handlers, phase)
        else:
            handlers = self._handlers
        fid = int(rng.choice(handlers, p=self._handler_weights))
        return self.cfg.function(fid).entry

    def _resolve(self, blk: BasicBlock, stack: List[BasicBlock],
                 rng: np.random.Generator, budget_spent: bool = False
                 ) -> Tuple[bool, int, Optional[BasicBlock]]:
        """Dynamic outcome of a block's terminator.

        Returns ``(taken, dynamic_target_pc, next_block)``; ``next_block``
        is ``None`` when the request ended (handler returned with an empty
        stack) — the caller then starts a new request.
        """
        term = blk.terminator
        max_depth = self.profile.walk.max_call_depth
        if term is None:
            nxt = self._fall(blk)
            assert nxt is not None, "CFG validation guarantees a fallthrough"
            return False, NO_ADDR, nxt

        kind = term.kind
        if kind is BranchKind.COND:
            taken = bool(rng.random() < term.taken_prob)
            target = self.cfg.block(term.taken_succ)
            if taken:
                return True, target.addr, target
            nxt = self._fall(blk)
            assert nxt is not None
            # Static target is reported even when not taken so the
            # frontend can model wrong-path fetch after a misprediction.
            return False, target.addr, nxt

        if kind is BranchKind.JUMP:
            target = self.cfg.block(term.taken_succ)
            return True, target.addr, target

        if kind in (BranchKind.CALL, BranchKind.INDIRECT):
            if kind is BranchKind.CALL:
                callee_fid = term.callee
            else:
                fids = [c for c, _ in term.indirect_callees]
                probs = np.array([p for _, p in term.indirect_callees])
                probs = probs / probs.sum()
                callee_fid = int(rng.choice(fids, p=probs))
            ret_to = self._fall(blk)
            assert ret_to is not None, "calls always have a return site"
            if len(stack) >= max_depth or budget_spent:
                # Depth/budget guard: skip the call, fall through.
                return False, NO_ADDR, ret_to
            stack.append(ret_to)
            entry = self.cfg.function(callee_fid).entry
            return True, entry.addr, entry

        assert kind is BranchKind.RETURN
        if stack:
            ret_to = stack.pop()
            return True, ret_to.addr, ret_to
        return True, NO_ADDR, None  # request finished

    def generate(self, n_records: int, sample: int = 0) -> Trace:
        """Walk the program until ``n_records`` fetch records are emitted.

        ``n_contexts`` concurrent requests are interleaved, switching
        after a geometric number of records — the connection-multiplexed
        instruction stream a server core actually fetches.  The first
        record after a switch carries ``ctx_switch=True``.
        """
        if n_records <= 0:
            raise ValueError("n_records must be positive")
        walk = self.profile.walk
        rng = np.random.default_rng(self.profile.seed * 7919 + 13 * sample + 1)
        records: List[FetchRecord] = []
        prev_line = None
        line_size = 64
        budget = walk.request_max_records

        n_ctx = max(1, walk.n_contexts)
        contexts = [_RequestContext(self._pick_handler(rng))
                    for _ in range(n_ctx)]
        active = 0
        switch_p = 1.0 / max(1, walk.switch_mean_records)
        switch_left = int(rng.geometric(switch_p))
        pending_switch = False

        while len(records) < n_records:
            ctx = contexts[active]
            blk = ctx.cur
            taken, target_pc, nxt = self._resolve(
                blk, ctx.stack, rng,
                budget_spent=ctx.request_records >= budget)
            if nxt is None:
                # Request done; the handler's return "targets" the next one.
                phase = (len(records) // walk.phase_shift_records
                         if walk.phase_shift_records else 0)
                ctx.cur = self._pick_handler(rng, phase=phase)
                target_pc = ctx.cur.addr
                ctx.request_records = 0
            else:
                ctx.cur = nxt
            term = blk.terminator
            branch = blk.branch
            spans = self.program.spans_of(blk.bid)
            for i, span in enumerate(spans):
                rec = FetchRecord(
                    line=span.line_base,
                    first_pc=span.first_pc,
                    n_instr=span.n_instr,
                    seq=(prev_line is not None
                         and span.line_base == prev_line + line_size),
                    ctx_switch=pending_switch and i == 0,
                )
                pending_switch = pending_switch and i != 0
                if i == len(spans) - 1 and term is not None and branch is not None:
                    rec.branch_pc = branch.pc
                    rec.branch_kind = term.kind
                    rec.branch_size = branch.size
                    rec.taken = taken
                    rec.branch_target = target_pc
                records.append(rec)
                prev_line = span.line_base
            ctx.request_records += len(spans)
            switch_left -= len(spans)
            if switch_left <= 0 and n_ctx > 1:
                nxt_active = int(rng.integers(0, n_ctx - 1))
                if nxt_active >= active:
                    nxt_active += 1
                active = nxt_active
                switch_left = int(rng.geometric(switch_p))
                pending_switch = True
        return Trace(records[:n_records], name=self.profile.name)


class _RequestContext:
    """One in-flight request: its current block and call stack."""

    __slots__ = ("cur", "stack", "request_records")

    def __init__(self, entry: BasicBlock):
        self.cur = entry
        self.stack: List[BasicBlock] = []
        self.request_records = 0


_MISSING = object()

# ----------------------------------------------------------------------
# Workload cache: experiments across figures share programs and traces.

_GENERATORS: Dict[Tuple[str, float, bool], TraceGenerator] = {}
_TRACES: Dict[Tuple[str, float, bool, int, int], Trace] = {}


def get_generator(name: str, scale: float = 1.0,
                  variable_length: bool = False) -> TraceGenerator:
    """Memoised :class:`TraceGenerator` for a named workload."""
    key = (name, scale, variable_length)
    gen = _GENERATORS.get(key)
    if gen is None:
        gen = TraceGenerator(get_profile(name), scale=scale,
                             variable_length=variable_length)
        _GENERATORS[key] = gen
    return gen


def _trace_store_and_key(name: str, n_records: int, scale: float,
                         variable_length: bool, sample: int):
    """Persistent-store handle + fingerprint for one trace (or None)."""
    # Imported lazily: workloads must not depend on experiments at
    # module-import time.
    from ..experiments import store as result_store
    store = result_store.get_store()
    if store is None:
        return None, None
    fp = result_store.fingerprint({
        "kind": "trace",
        "profile": get_profile(name),
        "n_records": n_records,
        "scale": scale,
        "variable_length": variable_length,
        "sample": sample,
    })
    return store, fp


def get_trace(name: str, n_records: int = 200_000, scale: float = 1.0,
              variable_length: bool = False, sample: int = 0) -> Trace:
    """Memoised trace for a named workload.

    Misses fall through to the persistent store (``REPRO_CACHE_DIR``)
    before the CFG walk regenerates the trace; round-tripping through
    :mod:`repro.workloads.serialize` is lossless, so cached and freshly
    generated traces are interchangeable.
    """
    key = (name, scale, variable_length, n_records, sample)
    trace = _TRACES.get(key)
    if trace is None:
        store, fp = _trace_store_and_key(name, n_records, scale,
                                         variable_length, sample)
        if store is not None:
            trace = store.load_trace(fp)
        if trace is None:
            trace = get_generator(name, scale, variable_length).generate(
                n_records, sample=sample)
            if store is not None:
                try:
                    store.save_trace(fp, trace)
                except OSError:
                    pass    # read-only cache dir: persistence is best-effort
        _TRACES[key] = trace
    return trace


def clear_cache() -> None:
    """Drop memoised generators and traces (tests use this)."""
    _GENERATORS.clear()
    _TRACES.clear()
