"""Dynamic workload validation.

The synthetic workloads stand in for the paper's commercial server
workloads, so their *dynamic* behaviour must stay inside server-like
envelopes: large active instruction footprints, high L1i MPKI under a
32 KB cache, mostly-sequential misses, realistic branch rates.  This
module measures a trace (plus a functional L1i) against those envelopes;
the test suite runs it over every profile so a profile regression is
caught immediately.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List

from ..isa import CACHE_BLOCK_SIZE
from .trace import Trace


@dataclass
class WorkloadEnvelope:
    """Acceptable ranges for one workload's dynamic behaviour."""

    min_footprint_kb: float = 48.0
    min_mpki: float = 3.0
    max_mpki: float = 120.0
    seq_fraction_range: tuple = (0.5, 0.95)
    branch_rate_range: tuple = (0.05, 0.40)
    taken_fraction_range: tuple = (0.3, 0.9)


@dataclass
class WorkloadReport:
    """Measured dynamic characteristics plus envelope violations."""

    name: str
    footprint_kb: float
    mpki: float
    seq_fraction: float
    branch_rate: float
    taken_fraction: float
    ctx_switch_rate: float
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS: " + "; ".join(
            self.violations)
        return (f"{self.name}: footprint {self.footprint_kb:.0f} KB, "
                f"MPKI {self.mpki:.1f}, seq {self.seq_fraction:.0%}, "
                f"branches {self.branch_rate:.0%}, "
                f"taken {self.taken_fraction:.0%} — {status}")


def measure_workload(trace: Trace, l1i_size: int = 32 * 1024,
                     l1i_assoc: int = 8,
                     skip: int = 0) -> WorkloadReport:
    """Replay ``trace`` through a functional L1i and measure it.

    ``skip`` warm records are excluded from miss statistics (cold-start
    suppression), mirroring how the timing runs measure.
    """
    n_sets = l1i_size // CACHE_BLOCK_SIZE // l1i_assoc
    sets: List[OrderedDict] = [OrderedDict() for _ in range(n_sets)]
    misses = 0
    seq_misses = 0
    instructions = 0
    branches = 0
    taken = 0
    switches = 0
    for i, rec in enumerate(trace):
        counted = i >= skip
        if counted:
            instructions += rec.n_instr
            if rec.has_branch:
                branches += 1
                taken += int(rec.taken)
            switches += int(rec.ctx_switch)
        block = rec.line // CACHE_BLOCK_SIZE
        cset = sets[block % n_sets]
        if block in cset:
            cset.move_to_end(block)
        else:
            if counted:
                misses += 1
                seq_misses += int(rec.seq)
            if len(cset) >= l1i_assoc:
                cset.popitem(last=False)
            cset[block] = True

    n_counted = max(1, len(trace) - skip)
    return WorkloadReport(
        name=trace.name,
        footprint_kb=trace.footprint_bytes() / 1024,
        mpki=misses / max(1, instructions) * 1000,
        seq_fraction=seq_misses / misses if misses else 0.0,
        branch_rate=branches / max(1, instructions),
        taken_fraction=taken / branches if branches else 0.0,
        ctx_switch_rate=switches / n_counted,
    )


def validate_workload(trace: Trace,
                      envelope: WorkloadEnvelope = WorkloadEnvelope(),
                      skip: int = 0) -> WorkloadReport:
    """Measure and check a workload trace against an envelope."""
    report = measure_workload(trace, skip=skip)
    v = report.violations
    if report.footprint_kb < envelope.min_footprint_kb:
        v.append(f"footprint {report.footprint_kb:.0f} KB "
                 f"< {envelope.min_footprint_kb:.0f} KB")
    if not envelope.min_mpki <= report.mpki <= envelope.max_mpki:
        v.append(f"MPKI {report.mpki:.1f} outside "
                 f"[{envelope.min_mpki}, {envelope.max_mpki}]")
    lo, hi = envelope.seq_fraction_range
    if report.mpki > 0 and not lo <= report.seq_fraction <= hi:
        v.append(f"sequential fraction {report.seq_fraction:.2f} "
                 f"outside [{lo}, {hi}]")
    lo, hi = envelope.branch_rate_range
    if not lo <= report.branch_rate <= hi:
        v.append(f"branch rate {report.branch_rate:.2f} outside [{lo}, {hi}]")
    lo, hi = envelope.taken_fraction_range
    if not lo <= report.taken_fraction <= hi:
        v.append(f"taken fraction {report.taken_fraction:.2f} "
                 f"outside [{lo}, {hi}]")
    return report
