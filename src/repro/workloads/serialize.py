"""Trace serialization: save/load fetch traces as compact ``.npz`` files.

Generating a full-length trace costs a few seconds; storing it lets
experiment scripts and external tools (or other simulators) reuse the
exact same dynamic stream.  The format is a plain numpy archive with one
int64 column per FetchRecord field plus a metadata header.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..isa import BranchKind
from .trace import FetchRecord, Trace

FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write ``trace`` to ``path`` (``.npz``, compressed)."""
    n = len(trace)
    line = np.empty(n, dtype=np.int64)
    first_pc = np.empty(n, dtype=np.int64)
    n_instr = np.empty(n, dtype=np.int32)
    branch_pc = np.empty(n, dtype=np.int64)
    branch_kind = np.empty(n, dtype=np.int8)
    branch_target = np.empty(n, dtype=np.int64)
    branch_size = np.empty(n, dtype=np.int16)
    flags = np.empty(n, dtype=np.uint8)   # bit0 seq, bit1 taken, bit2 ctx
    for i, r in enumerate(trace):
        line[i] = r.line
        first_pc[i] = r.first_pc
        n_instr[i] = r.n_instr
        branch_pc[i] = r.branch_pc
        branch_kind[i] = int(r.branch_kind)
        branch_target[i] = r.branch_target
        branch_size[i] = r.branch_size
        flags[i] = (int(r.seq) | (int(r.taken) << 1) |
                    (int(r.ctx_switch) << 2))
    np.savez_compressed(
        Path(path),
        version=np.int64(FORMAT_VERSION),
        # UTF-8 bytes, not a numpy str_: numpy's fixed-width unicode
        # storage strips trailing NULs, which would corrupt exotic names.
        name=np.frombuffer(trace.name.encode("utf-8"), dtype=np.uint8),
        line=line, first_pc=first_pc, n_instr=n_instr,
        branch_pc=branch_pc, branch_kind=branch_kind,
        branch_target=branch_target, branch_size=branch_size,
        flags=flags)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {version} "
                f"(expected {FORMAT_VERSION})")
        raw_name = data["name"]
        if raw_name.dtype.kind == "u":      # current format: UTF-8 bytes
            name = raw_name.tobytes().decode("utf-8")
        else:                               # older archives: numpy str_
            name = str(raw_name)
        line = data["line"]
        first_pc = data["first_pc"]
        n_instr = data["n_instr"]
        branch_pc = data["branch_pc"]
        branch_kind = data["branch_kind"]
        branch_target = data["branch_target"]
        branch_size = data["branch_size"]
        flags = data["flags"]
        records = [
            FetchRecord(
                line=int(line[i]), first_pc=int(first_pc[i]),
                n_instr=int(n_instr[i]), seq=bool(flags[i] & 1),
                branch_pc=int(branch_pc[i]),
                branch_kind=BranchKind(int(branch_kind[i])),
                branch_target=int(branch_target[i]),
                branch_size=int(branch_size[i]),
                taken=bool(flags[i] & 2),
                ctx_switch=bool(flags[i] & 4))
            for i in range(len(line))
        ]
    return Trace(records, name=name)
