"""Per-workload profiles standing in for the paper's Table IV workloads.

The paper evaluates seven commercial server workloads under Flexus
full-system simulation.  Those workloads are unavailable, so each profile
parameterises the synthetic CFG generator and trace walker to match the
qualitative placement the paper reports for its counterpart:

* **OLTP DB A (Oracle)** — the largest instruction footprint and the highest
  Shotgun U-BTB footprint miss ratio (Fig. 1); SN4L+Dis+BTB beats Shotgun by
  the largest margin there (Fig. 16).
* **OLTP DB B (DB2)** — large code base but a hotter, loopier active set;
  the lowest empty-FTQ stall fraction under Shotgun (Table I).
* **Web (Apache / Zeus)** — mid-to-large footprints, call-heavy request
  handling.
* **Media Streaming** — long sequential runs of streaming/packetising code;
  the most frontend-bound workload (50% speedup potential in Fig. 16).
* **Web Frontend** — the smallest active footprint; least speedup (7%).
* **Web Search** — moderate footprint, index-walk loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..cfg import CfgParams


@dataclass(frozen=True)
class WalkParams:
    """How the request loop walks the program."""

    #: Number of top-level request-handler functions.
    n_handlers: int = 32
    #: Zipf exponent for handler popularity (higher = hotter).
    zipf_s: float = 1.3
    #: Call-stack depth cap; deeper calls are skipped (documented guard).
    max_call_depth: int = 256
    #: Work budget per request, in fetch records.  Once exceeded the
    #: walker stops descending into calls so the request winds down —
    #: server handlers do bounded work, and without this bound the call
    #: tree of a handler (branching factor > 1) would swallow the trace.
    request_max_records: int = 2000
    #: Concurrent request contexts interleaved on the core (connection
    #: multiplexing / worker threads).  One context reproduces a strictly
    #: serial request loop.
    n_contexts: int = 3
    #: Mean records between context switches (geometric).
    switch_mean_records: int = 48
    #: Records between workload *phases*.  At each phase boundary the
    #: handler popularity ranking is rotated, drifting the hot code set —
    #: the behaviour that ages cached metadata (SeqTable bits, temporal
    #: histories, BTB contents).  0 disables phases.
    phase_shift_records: int = 0


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything needed to synthesise one named workload."""

    name: str
    cfg: CfgParams
    walk: WalkParams = field(default_factory=WalkParams)
    seed: int = 0

    def scaled(self, scale: float) -> "WorkloadProfile":
        """Shrink/grow the program footprint (used by fast tests)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        n = max(8, int(self.cfg.n_functions * scale))
        handlers = max(2, min(int(self.walk.n_handlers * scale) or 2, n // 2))
        return replace(
            self,
            cfg=replace(self.cfg, n_functions=n),
            walk=replace(self.walk, n_handlers=handlers),
        )


def _profile(name: str, seed: int, *, n_functions: int,
             n_handlers: int, zipf_s: float, request_max_records: int = 2000,
             **cfg_kwargs) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        cfg=CfgParams(n_functions=n_functions, **cfg_kwargs),
        walk=WalkParams(n_handlers=n_handlers, zipf_s=zipf_s,
                        request_max_records=request_max_records),
        seed=seed,
    )


MEDIA_STREAMING = _profile(
    "media_streaming", seed=101,
    n_functions=3600, n_handlers=72, zipf_s=1.0,
    request_max_records=1200,
    avg_segments=5.0, avg_block_instr=12.0, p_diamond=0.16, p_loop=0.10,
    p_call=0.30, p_error_check=0.12, loop_mean_iters=12.0,
)

OLTP_DB_A = _profile(
    "oltp_db_a", seed=102,
    n_functions=4500, n_handlers=112, zipf_s=0.95,
    request_max_records=800,
    avg_segments=4.0, avg_block_instr=6.0, p_call=0.48,
    p_error_check=0.16, p_indirect=0.08,
)

OLTP_DB_B = _profile(
    "oltp_db_b", seed=103,
    n_functions=2800, n_handlers=56, zipf_s=1.15,
    request_max_records=1500,
    avg_segments=4.5, avg_block_instr=7.0, p_loop=0.14, p_call=0.40,
)

WEB_APACHE = _profile(
    "web_apache", seed=104,
    n_functions=3400, n_handlers=80, zipf_s=1.05,
    request_max_records=1200,
    avg_segments=4.5, avg_block_instr=6.5, p_call=0.45, p_error_check=0.15,
)

WEB_ZEUS = _profile(
    "web_zeus", seed=105,
    n_functions=3000, n_handlers=72, zipf_s=1.1,
    request_max_records=1400,
    avg_segments=4.5, avg_block_instr=7.0, p_call=0.42, p_error_check=0.14,
)

WEB_FRONTEND = _profile(
    "web_frontend", seed=106,
    n_functions=900, n_handlers=20, zipf_s=1.35,
    avg_segments=5.0, avg_block_instr=8.0, p_call=0.38, p_loop=0.12,
)

WEB_SEARCH = _profile(
    "web_search", seed=107,
    n_functions=2800, n_handlers=64, zipf_s=1.15,
    request_max_records=1400,
    avg_segments=5.0, avg_block_instr=8.0, p_loop=0.12, p_call=0.38,
)

#: The seven evaluated workloads, in the paper's reporting order.
ALL_PROFILES: Tuple[WorkloadProfile, ...] = (
    MEDIA_STREAMING,
    OLTP_DB_A,
    OLTP_DB_B,
    WEB_APACHE,
    WEB_ZEUS,
    WEB_FRONTEND,
    WEB_SEARCH,
)

PROFILES_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in ALL_PROFILES}

#: Human-readable names used in the paper's figures.
DISPLAY_NAMES: Dict[str, str] = {
    "media_streaming": "Media Streaming",
    "oltp_db_a": "OLTP (DB A)",
    "oltp_db_b": "OLTP (DB B)",
    "web_apache": "Web (Apache)",
    "web_zeus": "Web (Zeus)",
    "web_frontend": "Web Frontend",
    "web_search": "Web Search",
}


def workload_names() -> List[str]:
    return [p.name for p in ALL_PROFILES]


def get_profile(name: str) -> WorkloadProfile:
    try:
        return PROFILES_BY_NAME[name]
    except KeyError:
        known = ", ".join(PROFILES_BY_NAME)
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
