"""repro — reproduction of "Divide and Conquer Frontend Bottleneck" (ISCA 2020).

The package implements the paper's SN4L+Dis+BTB frontend prefetcher, the
baselines it is compared against (NXL family, conventional discontinuity,
Confluence/SHIFT, Boomerang, Shotgun), and the full substrate they run on:
a synthetic ISA with a real byte-level pre-decoder, synthetic server
workloads generated from control-flow graphs, a memory hierarchy with a
dynamically-virtualized LLC, BTB organisations, and a trace-driven
cycle-approximate frontend simulator.

Quickstart::

    from repro import get_trace
    from repro.experiments import run_scheme

    result = run_scheme("web_apache", "sn4l_dis_btb")
    print(result.speedup)
"""

__version__ = "1.0.0"

from .workloads import get_trace, workload_names  # noqa: F401

__all__ = ["get_trace", "workload_names", "__version__"]
