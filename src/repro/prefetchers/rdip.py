"""RDIP: return-address-stack directed instruction prefetching.

Kolli et al. (MICRO'13), cited by the paper as prior work [18].  The key
observation: a program's instruction working set is strongly predicted by
its *call-stack context*.  RDIP summarises the top of the return address
stack into a signature, associates the L1i misses observed under each
signature with it, and prefetches that miss set whenever the signature
recurs (i.e. on every call and return).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List

from ..isa import BranchKind
from .base import Prefetcher


class SignatureTable:
    """Signature -> bounded set of miss lines, LRU over signatures."""

    def __init__(self, n_signatures: int = 2048, lines_per_entry: int = 12):
        if n_signatures <= 0 or lines_per_entry <= 0:
            raise ValueError("table geometry must be positive")
        self.n_signatures = n_signatures
        self.lines_per_entry = lines_per_entry
        self._table: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def lookup(self, signature: int) -> List[int]:
        entry = self._table.get(signature)
        if entry is None:
            self.misses += 1
            return []
        self._table.move_to_end(signature)
        self.hits += 1
        return list(entry)

    def train(self, signature: int, line: int) -> None:
        entry = self._table.get(signature)
        if entry is None:
            if len(self._table) >= self.n_signatures:
                self._table.popitem(last=False)
            entry = OrderedDict()
            self._table[signature] = entry
        else:
            self._table.move_to_end(signature)
        if line in entry:
            entry.move_to_end(line)
            return
        if len(entry) >= self.lines_per_entry:
            entry.popitem(last=False)
        entry[line] = True

    def storage_bytes(self) -> int:
        # signature tag (~20b) + lines_per_entry pointers (~26b each)
        bits = self.n_signatures * (20 + self.lines_per_entry * 26)
        return bits // 8


class RdipPrefetcher(Prefetcher):
    """RAS-directed prefetching: signature = hash of the top RAS frames."""

    name = "rdip"

    def __init__(self, n_signatures: int = 2048, lines_per_entry: int = 12,
                 ras_frames: int = 4):
        super().__init__()
        if ras_frames < 1:
            raise ValueError("need at least one RAS frame in the signature")
        self.table = SignatureTable(n_signatures, lines_per_entry)
        self.ras_frames = ras_frames
        self._shadow_ras: List[int] = []
        self._signature = 0
        self.trigger_events = 0

    # ------------------------------------------------------------------

    def _compute_signature(self) -> int:
        sig = 0
        for i, ret in enumerate(self._shadow_ras[-self.ras_frames:]):
            sig ^= (ret >> 2) * (0x9E3779B1 + i * 2)
        return sig & 0xFFFFFFFF

    def _trigger(self) -> None:
        """Call-stack context changed: prefetch the signature's miss set."""
        self._signature = self._compute_signature()
        self.trigger_events += 1
        for line in self.table.lookup(self._signature):
            self.sim.issue_prefetch(line)

    # ------------------------------------------------------------------

    def on_branch_retire(self, record, cycle) -> None:
        kind = record.branch_kind
        if kind in (BranchKind.CALL, BranchKind.INDIRECT) and record.taken:
            self._shadow_ras.append(record.branch_pc + record.branch_size)
            if len(self._shadow_ras) > 64:
                self._shadow_ras.pop(0)
            self._trigger()
        elif kind is BranchKind.RETURN and record.taken:
            if self._shadow_ras:
                self._shadow_ras.pop()
            self._trigger()

    def on_demand(self, index, record, outcome, cycle) -> None:
        if outcome != "hit":
            self.table.train(self._signature, record.line)

    def storage_bytes(self) -> int:
        return self.table.storage_bytes()
