"""Shared machinery of BTB-directed (fetch-directed) prefetchers.

Boomerang and Shotgun drive prefetching from a *runahead* of the branch
prediction unit: basic blocks are discovered ahead of the fetch stream via
the BTB and pushed into the FTQ, and their cache blocks are prefetched.
Two things gate the runahead, and both are modelled here:

* **BTB misses** — the runahead cannot proceed past a branch it does not
  know; it must fetch the enclosing block, pre-decode it, fill the BTB and
  only then continue.  While the runahead is blocked the FTQ drains, so
  demand stalls during this window are attributed to *empty FTQ*
  (Table I) via ``sim.runahead_blocked_until``.
* **Branch mispredictions** — the runahead follows the predicted path; on
  a (deterministic pseudo-random) misprediction it is squashed and only
  resumes once the demand stream catches up with the divergence point.

The runahead follows the recorded future path of the trace, which models
a branch predictor that is correct except for the sampled mispredictions —
the standard trace-driven approximation for fetch-directed prefetching.
"""

from __future__ import annotations

from typing import Optional

from ..isa import block_base
from .base import Prefetcher

#: Knuth multiplicative hash for deterministic "random" mispredictions.
_HASH_MULT = 2654435761


def pseudo_random(pc: int, salt: int) -> float:
    """Deterministic value in [0, 1) derived from a branch instance."""
    h = (pc * _HASH_MULT + salt * 40503) & 0xFFFFFFFF
    return ((h >> 8) & 0xFFFF) / 65536.0


class RunaheadPrefetcher(Prefetcher):
    """Base class: window management, blocking, and resync."""

    def __init__(self, window: int = 32, mispredict_rate: float = 0.04,
                 predecode_latency: int = 3, advance_per_access: int = 3):
        super().__init__()
        if window <= 0:
            raise ValueError("FTQ window must be positive")
        if advance_per_access <= 0:
            raise ValueError("runahead must be able to advance")
        self.window = window
        self.mispredict_rate = mispredict_rate
        self.predecode_latency = predecode_latency
        #: BPU bandwidth: basic blocks discovered per demand access.  The
        #: branch prediction unit produces about one basic block per
        #: cycle while fetch consumes one per ~2.5 cycles, so the lead
        #: over the demand stream builds a few blocks at a time — and is
        #: lost wholesale on every squash or BTB-miss stall.
        self.advance_per_access = advance_per_access
        self._ra_idx = 0
        self._blocked_until = 0
        self._resync_idx: Optional[int] = None
        self.runahead_btb_misses = 0
        self.runahead_resyncs = 0

    # -- scheme hook --------------------------------------------------------

    def process_runahead(self, index: int, record) -> bool:
        """Handle one runahead record; return False to stop advancing
        (blocked or resynced)."""
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------------

    def block_on_fill(self, addr: int, cycle: int) -> None:
        """Reactive prefill: stall the runahead until the block holding
        ``addr`` is available and pre-decoded."""
        self.runahead_btb_misses += 1
        line = block_base(addr)
        sim = self.sim
        if sim.l1i.contains(line) or (
                sim.l1_prefetch_buffer is not None
                and sim.l1_prefetch_buffer.contains(line)):
            ready = cycle
        else:
            inflight = sim.mshr.get(line)
            if inflight is None:
                sim.issue_prefetch(line)
                inflight = sim.mshr.get(line)
            ready = inflight.ready_cycle if inflight is not None else cycle
        self._blocked_until = max(self._blocked_until,
                                  ready + self.predecode_latency)
        sim.runahead_blocked_until = max(sim.runahead_blocked_until,
                                         self._blocked_until)

    def sample_mispredict(self, record, index: int) -> bool:
        """Would the core's direction predictor send the runahead down the
        wrong path at this branch?

        The runahead shares the demand predictor's state (that is the
        decoupled-frontend design); its accuracy on this branch *is* the
        probability the runahead survives it.  ``mispredict_rate`` adds a
        floor for divergence sources the model folds together (predictor
        state drift between runahead and demand time, wrong-path damage).
        """
        if self.sim.predictor.predict(record.branch_pc) != record.taken:
            return True
        return pseudo_random(record.branch_pc, index) < self.mispredict_rate

    def resync(self, index: int) -> None:
        """Runahead squashed: resume when demand reaches this point."""
        self.runahead_resyncs += 1
        self._resync_idx = index

    # -- driver ----------------------------------------------------------------

    def on_demand(self, index, record, outcome, cycle) -> None:
        sim = self.sim
        if self._ra_idx <= index:
            self._ra_idx = index + 1
        if self._resync_idx is not None:
            if index < self._resync_idx:
                return
            self._resync_idx = None
        if cycle < self._blocked_until:
            sim.runahead_blocked_until = max(sim.runahead_blocked_until,
                                             self._blocked_until)
            return
        trace = sim.trace
        horizon = min(index + self.window, len(trace),
                      self._ra_idx + self.advance_per_access)
        while self._ra_idx < horizon:
            i = self._ra_idx
            record = trace[i]
            if record.ctx_switch and i > index:
                # An asynchronous request switch: no branch predictor can
                # see past it.  Hold here until demand catches up.
                break
            self._ra_idx += 1
            if not self.process_runahead(i, record):
                break
