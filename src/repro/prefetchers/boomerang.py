"""Boomerang: metadata-free BTB-directed instruction and BTB prefetching.

Boomerang (Kumar et al., HPCA'17; paper Section II-B) runs the branch
prediction unit ahead of fetch using a basic-block-oriented BTB, prefetches
the discovered instruction blocks, and on a BTB miss fetches/prefetches the
enclosing block and *pre-decodes* it to recreate the missing entry
(reactive BTB prefill).  Its weakness — every BTB miss stalls the entire
runahead — is what Shotgun and the paper's proposal attack.
"""

from __future__ import annotations

from ..frontend.engine import HIT
from ..isa import BranchKind, block_base
from .runahead import RunaheadPrefetcher


class BoomerangPrefetcher(RunaheadPrefetcher):
    """BTB-directed runahead with reactive pre-decode BTB prefill."""

    name = "boomerang"

    def __init__(self, window: int = 32, mispredict_rate: float = 0.04,
                 predecode_latency: int = 3):
        super().__init__(window, mispredict_rate, predecode_latency)
        self.predecode_fills = 0

    def process_runahead(self, index: int, record) -> bool:
        sim = self.sim
        sim.issue_prefetch(record.line)

        if not record.has_branch:
            return True

        if record.branch_kind is BranchKind.RETURN:
            # Returns resolve through the RAS; no BTB needed.
            return True

        entry = sim.btb.peek(record.branch_pc)
        if entry is None:
            # BTB miss: the runahead stops, the enclosing block is
            # fetched and pre-decoded, and its branches fill the BTB.
            self.block_on_fill(record.branch_pc, sim.cycle)
            self._prefill_from_block(record)
            return False

        if record.branch_kind is BranchKind.COND \
                and self.sample_mispredict(record, index):
            self.resync(index)
            return False
        if record.branch_kind is BranchKind.INDIRECT \
                and entry.target != record.branch_target:
            self.resync(index)
            return False
        return True

    def _prefill_from_block(self, record) -> None:
        """Pre-decode the branch's block and insert every branch whose
        target is encoded in the instruction (calls/jumps/conditionals)."""
        sim = self.sim
        result = sim.predecoder().decode_block(block_base(record.branch_pc))
        for instr in result.branches:
            if instr.target is not None:
                sim.btb.insert(instr.pc, instr.target, instr.kind)
                self.predecode_fills += 1
        # Indirect branches have no encoded target; the demand stream
        # trains them (the engine inserts on the redirect).

    def on_demand(self, index, record, outcome, cycle) -> None:
        super().on_demand(index, record, outcome, cycle)

    def storage_bytes(self) -> int:
        # Boomerang is metadata-free beyond its basic-block BTB and FTQ.
        return self.window * 8
