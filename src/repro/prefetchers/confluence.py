"""Confluence, modelled as SHIFT plus a near-ideal BTB (paper Section VI-D1).

SHIFT records the L1i *access* stream (block-grained, consecutive
duplicates compacted) in a long history buffer virtualized in the LLC and
keeps an index from block address to that block's most recent history
position.  On an L1i miss, the index locates the history position and the
following entries are replayed as prefetches; while the demand stream
keeps matching the replayed stream, the stream advances and prefetches
stay ``lookahead`` blocks ahead.

The paper evaluates Confluence as SHIFT with a 16 K-entry BTB, "an upper
bound for what can be achieved by Confluence" — attaching this prefetcher
therefore swaps the simulator's BTB for a 16 K-entry one instead of
modelling AirBTB prefilling.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..btb import ConventionalBtb
from ..frontend.engine import HIT
from .base import Prefetcher


class ShiftHistory:
    """Circular access-history buffer plus block -> position index."""

    def __init__(self, n_entries: int = 32 * 1024):
        if n_entries <= 0:
            raise ValueError("history size must be positive")
        self.n_entries = n_entries
        self._buffer: List[int] = [0] * n_entries
        self._head = 0
        self._filled = 0
        self._index: Dict[int, int] = {}
        self._last_recorded: Optional[int] = None

    def record(self, line: int) -> None:
        if line == self._last_recorded:
            return
        self._last_recorded = line
        pos = self._head
        old = self._buffer[pos] if self._filled == self.n_entries else None
        if old is not None and self._index.get(old) == pos:
            del self._index[old]
        self._buffer[pos] = line
        self._index[line] = pos
        self._head = (pos + 1) % self.n_entries
        self._filled = min(self._filled + 1, self.n_entries)

    def position_of(self, line: int) -> Optional[int]:
        return self._index.get(line)

    def read(self, pos: int) -> Optional[int]:
        if self._filled == 0:
            return None
        pos %= self.n_entries
        # Never read unwritten or about-to-be-overwritten slots.
        if self._filled < self.n_entries and pos >= self._head:
            return None
        return self._buffer[pos]

    def storage_bytes(self) -> int:
        # ~26-bit block pointers in the history + index entries
        # (virtualized in the LLC in the real design).
        return (self.n_entries * 26 + len(self._index) * 0) // 8 + \
            self.n_entries // 4 * 30 // 8


class ConfluencePrefetcher(Prefetcher):
    """SHIFT instruction streaming + 16 K-entry near-ideal BTB.

    Pass a pre-built ``shared_history`` to share the metadata across
    cores — SHIFT's defining idea: one history, virtualized in the LLC,
    amortized over every core running the same workload.  The paper's
    related-work section notes the flip side, which the multicore tests
    exercise: with *different* workloads per core the shared history
    interleaves unrelated streams and replay quality collapses.
    """

    def __init__(self, history_entries: int = 32 * 1024,
                 degree: int = 4, lookahead: int = 8,
                 btb_entries: int = 16 * 1024,
                 shared_history: "ShiftHistory" = None,
                 use_airbtb: bool = False,
                 airbtb_entries: int = 512):
        super().__init__()
        self.history = shared_history if shared_history is not None \
            else ShiftHistory(history_entries)
        self.degree = degree
        self.lookahead = lookahead
        self.btb_entries = btb_entries
        #: Model the *real* Confluence BTB (AirBTB, bulk-filled from
        #: pre-decoded arriving blocks) instead of the paper's 16 K-entry
        #: upper bound.
        self.use_airbtb = use_airbtb
        self.airbtb_entries = airbtb_entries
        self._stream_pos: Optional[int] = None
        self._stream_ahead = 0
        self.name = "confluence_airbtb" if use_airbtb else "confluence"
        self.stream_starts = 0

    def attach(self, sim) -> None:
        super().attach(sim)
        if self.use_airbtb:
            from ..btb import AirBtb
            sim.btb = AirBtb(self.airbtb_entries)
        else:
            # Paper policy: model Confluence's BTB side as a 16 K-entry
            # conventional BTB ("an upper bound", Section VI-D1).
            sim.btb = ConventionalBtb(self.btb_entries, assoc=8,
                                      name="confluence-btb")

    def on_fill(self, line_addr, was_prefetch, cycle) -> None:
        if not self.use_airbtb or self.sim.program is None:
            return
        # Arriving blocks are pre-decoded and their branches inserted
        # into AirBTB in bulk — Confluence's unified instruction/BTB
        # supply idea.
        result = self.sim.predecoder().decode_block(line_addr)
        if result.branches:
            self.sim.btb.fill_block(line_addr, result.branches)

    # ------------------------------------------------------------------

    def on_demand(self, index, record, outcome, cycle) -> None:
        line = record.line

        if self._stream_pos is not None:
            nxt = self.history.read(self._stream_pos + 1)
            if nxt == line:
                # Demand follows the replayed stream: slide the window.
                self._stream_pos += 1
                self._stream_ahead = max(0, self._stream_ahead - 1)
                self._replay_window()
            elif outcome is not HIT:
                self._stream_pos = None

        if outcome is not HIT and self._stream_pos is None:
            pos = self.history.position_of(line)
            if pos is not None:
                self._stream_pos = pos
                self._stream_ahead = 0
                self.stream_starts += 1
                # The index and history live virtualized in the LLC: a
                # stream start pays two dependent LLC reads before the
                # first prefetches can issue (paper Section V-F).
                self._replay_window(
                    delay=2 * self.sim.latency.config.llc_round_trip)

        # Record *after* lookup so the index points at the previous
        # occurrence, not the access we are handling now.
        self.history.record(line)

    def _replay_window(self, delay: int = 0) -> None:
        want = min(self.degree, self.lookahead - self._stream_ahead)
        if want <= 0 or self._stream_pos is None:
            return
        pos = self._stream_pos + self._stream_ahead
        for _ in range(want):
            pos += 1
            line = self.history.read(pos)
            if line is None:
                return
            self.sim.issue_prefetch(line, delay=delay)
            self._stream_ahead += 1

    def storage_bytes(self) -> int:
        return self.history.storage_bytes()
