"""Prefetcher interface.

A prefetcher observes the demand stream through callbacks and issues
requests through the simulator's :meth:`issue_prefetch` /
:meth:`lookup_cache` services.  Schemes that own extra frontend
structures (BTB prefetch buffer, L1i prefetch buffer) install them on the
simulator in :meth:`attach`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..frontend.engine import FrontendSimulator
    from ..memory.cache import CacheLine
    from ..workloads.trace import FetchRecord


class Prefetcher:
    """Base class: a no-op prefetcher."""

    name = "none"

    def __init__(self) -> None:
        self.sim: "FrontendSimulator" = None  # set by attach()
        #: Scoped telemetry emitter (set by attach); events carry this
        #: prefetcher's name as their source.  No-op while no event log
        #: is attached to the simulator.
        self.telemetry = None

    def attach(self, sim: "FrontendSimulator") -> None:
        """Bind to a simulator.  Override to install buffers; call super."""
        self.sim = sim
        self.telemetry = sim.emitter(self.name)

    # -- event hooks -----------------------------------------------------

    def on_demand(self, index: int, record: "FetchRecord", outcome: str,
                  cycle: int) -> None:
        """Called for every demand access, after it completed.

        ``outcome`` is ``"hit"``, ``"miss"`` or ``"late"`` (demand caught
        an in-flight prefetch).  ``index`` is the trace position, which
        BTB-directed schemes use to track their runahead distance.
        """

    def on_fill(self, line_addr: int, was_prefetch: bool, cycle: int) -> None:
        """A block arrived in the L1i."""

    def on_evict(self, line: "CacheLine", cycle: int) -> None:
        """A block left the L1i (metadata still readable on ``line``)."""

    def on_prefetch_hit(self, line_addr: int, cycle: int) -> None:
        """The core demanded a block that a prefetch brought (or is
        bringing) in — the 'useful prefetch' training event."""

    def on_branch_retire(self, record: "FetchRecord", cycle: int) -> None:
        """The terminator branch of ``record`` retired."""

    # -- bookkeeping -------------------------------------------------------

    def storage_bytes(self) -> int:
        """Extra per-core storage this scheme adds (Table II)."""
        return 0
