"""Adaptive-depth sequential prefetching (an extension experiment).

The paper resolves the NXL timeliness/accuracy trade-off with per-block
usefulness bits (SN4L).  A classic alternative from the prefetching
literature is *feedback-directed throttling*: keep a single global depth
and adjust it from measured accuracy and lateness.  This extension
implements that alternative so the repository can quantify how much of
SN4L's benefit per-block selectivity provides over global throttling —
an ablation the paper argues implicitly.
"""

from __future__ import annotations

from ..isa import CACHE_BLOCK_SIZE
from .base import Prefetcher


class AdaptiveNxlPrefetcher(Prefetcher):
    """NXL with a feedback-controlled depth in [1, max_depth].

    Every ``epoch`` completed prefetches, the controller looks at the
    epoch's accuracy (useful / completed) and lateness (late-useful /
    useful) and moves the depth:

    * accuracy below ``low_accuracy``  -> shallower (waste dominates);
    * accuracy above ``high_accuracy`` and lateness above
      ``late_threshold`` -> deeper (coverage is late, not wrong).
    """

    name = "adaptive_nxl"

    def __init__(self, max_depth: int = 8, start_depth: int = 2,
                 epoch: int = 64, low_accuracy: float = 0.55,
                 high_accuracy: float = 0.75, late_threshold: float = 0.25):
        super().__init__()
        if not 1 <= start_depth <= max_depth:
            raise ValueError("need 1 <= start_depth <= max_depth")
        if not 0.0 <= low_accuracy <= high_accuracy <= 1.0:
            raise ValueError("need 0 <= low_accuracy <= high_accuracy <= 1")
        self.max_depth = max_depth
        self.depth = start_depth
        self.epoch = epoch
        self.low_accuracy = low_accuracy
        self.high_accuracy = high_accuracy
        self.late_threshold = late_threshold
        # Epoch counters.
        self._useful = 0
        self._useless = 0
        self._late = 0
        self.depth_history = [start_depth]

    # -- feedback -----------------------------------------------------------

    def _epoch_done(self) -> bool:
        return self._useful + self._useless >= self.epoch

    def _adjust(self) -> None:
        done = self._useful + self._useless
        accuracy = self._useful / done if done else 1.0
        lateness = self._late / self._useful if self._useful else 0.0
        if accuracy < self.low_accuracy and self.depth > 1:
            self.depth -= 1
        elif accuracy > self.high_accuracy \
                and lateness > self.late_threshold \
                and self.depth < self.max_depth:
            self.depth += 1
        self.depth_history.append(self.depth)
        self._useful = self._useless = self._late = 0

    # -- events ---------------------------------------------------------------

    def on_demand(self, index, record, outcome, cycle) -> None:
        if outcome == "late":
            self._late += 1
        line = record.line
        for i in range(1, self.depth + 1):
            self.sim.issue_prefetch(line + i * CACHE_BLOCK_SIZE)

    def on_prefetch_hit(self, line_addr, cycle) -> None:
        self._useful += 1
        if self._epoch_done():
            self._adjust()

    def on_evict(self, line, cycle) -> None:
        if line.is_prefetch:
            self._useless += 1
            if self._epoch_done():
                self._adjust()

    # -- reporting ---------------------------------------------------------------

    @property
    def mean_depth(self) -> float:
        return sum(self.depth_history) / len(self.depth_history)

    def storage_bytes(self) -> int:
        return 8  # a few counters and the depth register
