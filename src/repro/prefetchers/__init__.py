"""Baseline prefetchers the paper compares against, plus the interface."""

from .adaptive import AdaptiveNxlPrefetcher
from .base import Prefetcher
from .boomerang import BoomerangPrefetcher
from .confluence import ConfluencePrefetcher, ShiftHistory
from .discontinuity import (
    ConventionalDiscontinuityPrefetcher,
    DiscontinuityTable,
)
from .fdip import FdipPrefetcher
from .nextline import (
    NextLineOnMissPrefetcher,
    NextLineTaggedPrefetcher,
    NextXLinePrefetcher,
    next_line,
    next_x_line,
)
from .rdip import RdipPrefetcher, SignatureTable
from .runahead import RunaheadPrefetcher, pseudo_random
from .shotgun import ShotgunBtbAdapter, ShotgunPrefetcher
from .temporal import PifPrefetcher, TifsPrefetcher

__all__ = [
    "Prefetcher",
    "AdaptiveNxlPrefetcher",
    "NextXLinePrefetcher",
    "NextLineOnMissPrefetcher",
    "NextLineTaggedPrefetcher",
    "next_line",
    "next_x_line",
    "ConventionalDiscontinuityPrefetcher",
    "DiscontinuityTable",
    "ConfluencePrefetcher",
    "ShiftHistory",
    "TifsPrefetcher",
    "PifPrefetcher",
    "RdipPrefetcher",
    "SignatureTable",
    "FdipPrefetcher",
    "BoomerangPrefetcher",
    "ShotgunPrefetcher",
    "ShotgunBtbAdapter",
    "RunaheadPrefetcher",
    "pseudo_random",
]
