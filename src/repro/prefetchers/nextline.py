"""Next-X-line sequential prefetchers (NL, N2L, N4L, N8L).

Upon every demand access to block ``A``, an NXL prefetcher probes blocks
``A+1 .. A+X`` and prefetches the ones that miss.  The paper's Section IV
uses this family to expose the timeliness/accuracy trade-off: deeper
prefetching improves CMAL until useless prefetches inflate LLC latency and
bandwidth (N8L), motivating the selective N4L (SN4L).
"""

from __future__ import annotations

from ..frontend.l1pb import L1PrefetchBuffer
from ..isa import CACHE_BLOCK_SIZE
from .base import Prefetcher


class NextXLinePrefetcher(Prefetcher):
    """Prefetch the next ``depth`` blocks on every demand access.

    ``use_buffer`` places prefetches in a 64-entry L1i prefetch buffer
    instead of the cache, as in the paper's Fig. 5 study that isolates
    bandwidth/latency side effects from cache pollution.
    """

    def __init__(self, depth: int = 1, use_buffer: bool = False,
                 buffer_entries: int = 64):
        super().__init__()
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.depth = depth
        self.use_buffer = use_buffer
        self.buffer_entries = buffer_entries
        self.name = f"n{depth}l" if depth > 1 else "nl"

    def attach(self, sim) -> None:
        super().attach(sim)
        if self.use_buffer:
            sim.l1_prefetch_buffer = L1PrefetchBuffer(self.buffer_entries)

    def on_demand(self, index, record, outcome, cycle) -> None:
        line = record.line
        for i in range(1, self.depth + 1):
            self.sim.issue_prefetch(line + i * CACHE_BLOCK_SIZE)

    def storage_bytes(self) -> int:
        if self.use_buffer and self.sim is not None \
                and self.sim.l1_prefetch_buffer is not None:
            return self.sim.l1_prefetch_buffer.storage_bytes()
        return 0


class NextLineOnMissPrefetcher(Prefetcher):
    """NLmiss (paper Section IV, citing Xia & Torrellas): prefetch the
    next block only on a demand *miss*, not on every access.

    Far cheaper in lookups and bandwidth than plain NL, but covers only
    the first miss of each sequential run.
    """

    name = "nlmiss"

    def __init__(self, depth: int = 1):
        super().__init__()
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.depth = depth

    def on_demand(self, index, record, outcome, cycle) -> None:
        if outcome == "hit":
            return
        for i in range(1, self.depth + 1):
            self.sim.issue_prefetch(record.line + i * CACHE_BLOCK_SIZE)


class NextLineTaggedPrefetcher(Prefetcher):
    """NLtagged (paper Section IV): tag-directed next-line prefetching.

    Prefetch ``A+1`` when ``A`` misses *or* when ``A`` was itself brought
    in by a prefetch and is now demanded (the classic tagged scheme of
    Smith) — so a consumed sequential run keeps extending itself one
    block at a time without prefetching on every hit.
    """

    name = "nltagged"

    def __init__(self, depth: int = 1):
        super().__init__()
        if depth < 1:
            raise ValueError("prefetch depth must be >= 1")
        self.depth = depth

    def _extend(self, line: int) -> None:
        for i in range(1, self.depth + 1):
            self.sim.issue_prefetch(line + i * CACHE_BLOCK_SIZE)

    def on_demand(self, index, record, outcome, cycle) -> None:
        if outcome != "hit":
            self._extend(record.line)

    def on_prefetch_hit(self, line_addr, cycle) -> None:
        self._extend(line_addr)


def next_line() -> NextXLinePrefetcher:
    return NextXLinePrefetcher(1)


def next_x_line(depth: int) -> NextXLinePrefetcher:
    return NextXLinePrefetcher(depth)
