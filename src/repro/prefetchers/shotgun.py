"""Shotgun: BTB-directed prefetching over a split U-BTB/C-BTB/RIB.

Shotgun (Kumar et al., ASPLOS'18; paper Sections II-B and III) dedicates
most BTB storage to unconditional branches (U-BTB), each entry carrying
spatial *footprints* of the blocks used around the branch target (call
footprint) and around the return site (return footprint).  On a U-BTB hit
the footprint blocks are bulk-prefetched and pre-decoded to proactively
prefill the small C-BTB through a 32-entry BTB prefetch buffer.  On a
U-BTB or C-BTB miss the runahead falls back to reactive prefill: fetch the
block, pre-decode, fill, continue — one block at a time.

Footprints are learned from the *retired* instruction stream, so entries
recreated by pre-decode prefilling have no footprints.  That is the
paper's Fig. 1 critique: on footprint misses Shotgun degenerates to the
slow reactive path, the FTQ drains, and the core stalls (Table I).
"""

from __future__ import annotations

from typing import List, Optional

from ..btb import BtbEntry, BtbPrefetchBuffer, ShotgunBtb, UBtbEntry
from ..frontend.l1pb import L1PrefetchBuffer
from ..isa import CACHE_BLOCK_SIZE, BranchKind, block_base
from .runahead import RunaheadPrefetcher

_UNCONDITIONAL = (BranchKind.JUMP, BranchKind.CALL, BranchKind.INDIRECT)


class ShotgunBtbAdapter:
    """Presents the three-way split BTB to the engine's demand path.

    Hardware searches the three structures simultaneously on every lookup
    (paper Section V-F); the adapter mirrors that and routes inserts by
    branch kind.
    """

    def __init__(self, shotgun: ShotgunBtb):
        self.shotgun = shotgun
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int):
        s = self.shotgun
        entry = s.c_btb.lookup(pc)
        if entry is None:
            u = s.u_btb.lookup(pc)
            if u is not None and u.target is not None:
                entry = u
        if entry is None and s.rib.lookup(pc):
            entry = BtbEntry(pc, -1, BranchKind.RETURN)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def peek(self, pc: int):
        s = self.shotgun
        entry = s.c_btb.peek(pc)
        if entry is not None:
            return entry
        u = s.u_btb.peek(pc)
        if u is not None and u.target is not None:
            return u
        if s.rib.peek(pc):
            return BtbEntry(pc, -1, BranchKind.RETURN)
        return None

    def insert(self, pc: int, target: int, kind: BranchKind) -> None:
        self.shotgun.insert_branch(pc, kind, target)

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class ShotgunPrefetcher(RunaheadPrefetcher):
    """The full Shotgun scheme."""

    name = "shotgun"

    def __init__(self, u_entries: int = 1536, c_entries: int = 128,
                 rib_entries: int = 512, window: int = 32,
                 mispredict_rate: float = 0.04,
                 predecode_latency: int = 3,
                 l1_buffer_entries: int = 64,
                 btb_buffer_entries: int = 32):
        super().__init__(window, mispredict_rate, predecode_latency)
        self.shotgun = ShotgunBtb(u_entries=u_entries, c_entries=c_entries,
                                  rib_entries=rib_entries)
        self.l1_buffer_entries = l1_buffer_entries
        self.btb_buffer_entries = btb_buffer_entries
        self._call_stack: List[UBtbEntry] = []
        #: Footprint blocks awaiting arrival before they can be
        #: pre-decoded for proactive C-BTB prefill.
        self._pending_prefill: set = set()
        self.footprint_prefetches = 0
        self.proactive_prefills = 0

    def attach(self, sim) -> None:
        super().attach(sim)
        sim.btb = ShotgunBtbAdapter(self.shotgun)
        sim.l1_prefetch_buffer = L1PrefetchBuffer(self.l1_buffer_entries)
        sim.btb_prefetch_buffer = BtbPrefetchBuffer(self.btb_buffer_entries)

    # ------------------------------------------------------------------
    # retire-stream learning

    def on_branch_retire(self, record, cycle) -> None:
        if record.branch_kind in _UNCONDITIONAL and record.taken:
            return_site = None
            if record.branch_kind in (BranchKind.CALL, BranchKind.INDIRECT):
                return_site = record.branch_pc + record.branch_size
            self.shotgun.retire_unconditional(
                record.branch_pc, record.branch_target,
                record.branch_kind, return_site=return_site)
        elif record.branch_kind is BranchKind.RETURN:
            self.shotgun.insert_branch(record.branch_pc,
                                       BranchKind.RETURN, None)

    def on_demand(self, index, record, outcome, cycle) -> None:
        self.shotgun.retire_block_access(record.line)
        super().on_demand(index, record, outcome, cycle)

    # ------------------------------------------------------------------
    # runahead

    def process_runahead(self, index: int, record) -> bool:
        sim = self.sim
        sim.issue_prefetch(record.line)

        if not record.has_branch or not record.taken:
            if record.has_branch and record.branch_kind is BranchKind.COND:
                return self._conditional(index, record)
            return True

        kind = record.branch_kind
        if kind is BranchKind.COND:
            return self._conditional(index, record)
        if kind is BranchKind.RETURN:
            self._return_branch()
            return True
        return self._unconditional(index, record)

    def _conditional(self, index: int, record) -> bool:
        sim = self.sim
        known = self.shotgun.c_btb.peek(record.branch_pc) is not None
        if not known:
            buffered = sim.btb_prefetch_buffer.lookup(record.branch_pc)
            if buffered is not None and buffered.target is not None:
                self.shotgun.insert_branch(record.branch_pc,
                                           BranchKind.COND, buffered.target)
            else:
                # Reactive C-BTB prefill: the slow one-block-at-a-time path.
                self.block_on_fill(record.branch_pc, sim.cycle)
                self._predecode_prefill(block_base(record.branch_pc))
                return False
        if self.sample_mispredict(record, index):
            self.resync(index)
            return False
        return True

    def _unconditional(self, index: int, record) -> bool:
        sim = self.sim
        entry = self.shotgun.lookup_unconditional(record.branch_pc)
        if entry is None:
            # U-BTB miss: reactive prefill.  Pre-decode recreates the
            # entry (sans footprints) for encoded-target branches only.
            self.block_on_fill(record.branch_pc, sim.cycle)
            self._predecode_prefill(block_base(record.branch_pc),
                                    mark_prefilled=True)
            if record.branch_kind is BranchKind.INDIRECT:
                # Even pre-decode cannot reveal an indirect target.
                self.resync(index)
            return False

        if record.branch_kind is BranchKind.INDIRECT \
                and entry.target != record.branch_target:
            # The U-BTB's stale indirect target sends the runahead down
            # the wrong path.
            self.resync(index)
            return False
        if entry.call_footprint:
            self._prefetch_footprint(entry.call_footprint)
        if record.branch_kind in (BranchKind.CALL, BranchKind.INDIRECT):
            self._call_stack.append(entry)
            if len(self._call_stack) > 64:
                self._call_stack.pop(0)
        return True

    def _return_branch(self) -> None:
        if self._call_stack:
            entry = self._call_stack.pop()
            if entry.return_footprint:
                self._prefetch_footprint(entry.return_footprint)

    # ------------------------------------------------------------------

    def _prefetch_footprint(self, footprint) -> None:
        sim = self.sim
        for block in footprint.blocks():
            addr = block * CACHE_BLOCK_SIZE
            if sim.issue_prefetch(addr):
                self.footprint_prefetches += 1
            # Proactive prefill: pre-decode the footprint block into the
            # BTB prefetch buffer so C-BTB misses inside the region are
            # rescued without stalling.  A block can only be pre-decoded
            # once its bytes are actually here.
            if sim.l1i.contains(addr) or (
                    sim.l1_prefetch_buffer is not None
                    and sim.l1_prefetch_buffer.contains(addr)):
                self._predecode_prefill(addr)
            else:
                self._pending_prefill.add(block_base(addr))
                if len(self._pending_prefill) > 128:
                    self._pending_prefill.pop()

    def on_fill(self, line_addr, was_prefetch, cycle) -> None:
        if line_addr in self._pending_prefill:
            self._pending_prefill.discard(line_addr)
            self._predecode_prefill(line_addr)

    def _predecode_prefill(self, block_addr: int,
                           mark_prefilled: bool = False) -> None:
        result = self.sim.predecoder().decode_block(block_addr)
        if not result.branches:
            return
        self.sim.btb_prefetch_buffer.fill(block_addr, result.branches)
        self.proactive_prefills += 1
        if mark_prefilled:
            for instr in result.branches:
                if instr.kind in _UNCONDITIONAL and instr.target is not None:
                    self.shotgun.insert_branch(instr.pc, instr.kind,
                                               instr.target, prefilled=True)

    # ------------------------------------------------------------------

    @property
    def footprint_miss_ratio(self) -> float:
        return self.shotgun.footprint_miss_ratio

    def storage_bytes(self) -> int:
        """Extra storage over a conventional 2 K-entry BTB (paper: ~6 KB).

        The split BTB replaces the baseline BTB, so only the additional
        segments (footprints, basic-block metadata) plus the two prefetch
        buffers count.
        """
        conventional = 2048 * 50 // 8
        extra_btb = max(0, self.shotgun.storage_bytes() - conventional)
        buffers = 0
        if self.sim is not None:
            if self.sim.l1_prefetch_buffer is not None:
                buffers += self.sim.l1_prefetch_buffer.storage_bytes()
            if self.sim.btb_prefetch_buffer is not None:
                buffers += self.sim.btb_prefetch_buffer.storage_bytes()
        return extra_btb + buffers
