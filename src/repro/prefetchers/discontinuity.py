"""Conventional discontinuity prefetcher (Spracklen et al., HPCA'05 style).

The straightforward implementation the paper improves upon (Section V-B):
a table mapping a trigger block to the *full target address* of the
discontinuity miss that followed it.  Stored tagless in the conventional
design to bound its tens-of-kilobytes cost, which is exactly what causes
the overprediction Fig. 12 quantifies; ``tag_bits`` selects the tagging
policy for that study.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..frontend.engine import HIT
from ..isa import CACHE_BLOCK_SIZE
from .base import Prefetcher


class DiscontinuityTable:
    """Block -> discontinuity-target-block mapping with optional tags."""

    def __init__(self, n_entries: int = 2048, tag_bits: Optional[int] = 0,
                 block_size: int = CACHE_BLOCK_SIZE):
        if n_entries <= 0:
            raise ValueError("table size must be positive")
        self.n_entries = n_entries
        self.tag_bits = tag_bits
        self.block_size = block_size
        self._rows: Dict[int, Tuple[int, int]] = {}
        self._true_owner: Dict[int, int] = {}
        self.lookups = 0
        self.hits = 0
        self.false_hits = 0

    @property
    def fully_tagged(self) -> bool:
        return self.tag_bits is None

    def _row_tag(self, addr: int) -> Tuple[int, int]:
        block = addr // self.block_size
        row = block % self.n_entries
        rest = block // self.n_entries
        if self.fully_tagged:
            tag = rest
        elif self.tag_bits == 0:
            tag = 0
        else:
            tag = rest & ((1 << self.tag_bits) - 1)
        return row, tag

    def record(self, trigger_addr: int, target_addr: int) -> None:
        row, tag = self._row_tag(trigger_addr)
        self._rows[row] = (tag, target_addr - target_addr % self.block_size)
        self._true_owner[row] = trigger_addr // self.block_size

    def lookup(self, trigger_addr: int) -> Optional[int]:
        self.lookups += 1
        row, tag = self._row_tag(trigger_addr)
        entry = self._rows.get(row)
        if entry is None or entry[0] != tag:
            return None
        self.hits += 1
        if self._true_owner.get(row) != trigger_addr // self.block_size:
            self.false_hits += 1
        return entry[1]

    def storage_bytes(self) -> int:
        tag_bits = 40 if self.fully_tagged else (self.tag_bits or 0)
        target_bits = 34  # full block address
        return self.n_entries * (tag_bits + target_bits) // 8


class ConventionalDiscontinuityPrefetcher(Prefetcher):
    """Record discontinuity miss targets; replay them on re-access."""

    def __init__(self, n_entries: int = 2048, tag_bits: Optional[int] = 0):
        super().__init__()
        self.table = DiscontinuityTable(n_entries, tag_bits)
        self._prev_line: Optional[int] = None
        self.name = "discontinuity"
        self.overpredictions = 0
        self.predictions = 0

    def on_demand(self, index, record, outcome, cycle) -> None:
        line = record.line
        if outcome is not HIT and not record.seq \
                and self._prev_line is not None \
                and self._prev_line != line:
            self.table.record(self._prev_line, line)
        target = self.table.lookup(line)
        if target is not None and target != line:
            self.predictions += 1
            self.sim.issue_prefetch(target)
        self._prev_line = line

    def on_evict(self, line, cycle) -> None:
        if line.is_prefetch:
            self.overpredictions += 1

    @property
    def overprediction_ratio(self) -> float:
        if not self.predictions:
            return 0.0
        return self.overpredictions / self.predictions

    def storage_bytes(self) -> int:
        return self.table.storage_bytes()
