"""Temporal instruction prefetchers: TIFS and PIF (paper Section II-A).

* **TIFS** (Ferdman et al., MICRO'08) records and replays the L1i *miss*
  stream: on a miss, the positions following that miss's last occurrence
  in the miss history are prefetched.
* **PIF** (Ferdman et al., MICRO'11) records the *access* (retire-order)
  stream instead, which captures misses before they happen at the cost of
  a far longer history (~200 KB per core) — the storage burden that
  motivated SHIFT/Confluence and ultimately this paper.

Both reuse the circular history + index machinery of
:class:`~repro.prefetchers.confluence.ShiftHistory`; what differs is the
recorded stream, the storage budget, and where the metadata lives
(private here, so no LLC-round-trip issue delay, unlike Confluence).
"""

from __future__ import annotations

from .base import Prefetcher
from .confluence import ShiftHistory


class _StreamReplayPrefetcher(Prefetcher):
    """Shared record/replay core for the temporal schemes."""

    def __init__(self, history_entries: int, degree: int, lookahead: int):
        super().__init__()
        self.history = ShiftHistory(history_entries)
        self.degree = degree
        self.lookahead = lookahead
        self._stream_pos = None
        self._stream_ahead = 0
        self.stream_starts = 0

    # -- subclass hooks ---------------------------------------------------

    def records_stream(self, record, outcome) -> bool:
        """Should this access be appended to the history?"""
        raise NotImplementedError

    # -- replay -------------------------------------------------------------

    def _replay_window(self) -> None:
        want = min(self.degree, self.lookahead - self._stream_ahead)
        if want <= 0 or self._stream_pos is None:
            return
        pos = self._stream_pos + self._stream_ahead
        for _ in range(want):
            pos += 1
            line = self.history.read(pos)
            if line is None:
                return
            self.sim.issue_prefetch(line)
            self._stream_ahead += 1

    def on_demand(self, index, record, outcome, cycle) -> None:
        line = record.line

        if self._stream_pos is not None:
            nxt = self.history.read(self._stream_pos + 1)
            if nxt == line:
                self._stream_pos += 1
                self._stream_ahead = max(0, self._stream_ahead - 1)
                self._replay_window()
            elif outcome != "hit":
                self._stream_pos = None

        if outcome != "hit" and self._stream_pos is None:
            pos = self.history.position_of(line)
            if pos is not None:
                self._stream_pos = pos
                self._stream_ahead = 0
                self.stream_starts += 1
                self._replay_window()

        if self.records_stream(record, outcome):
            self.history.record(line)


class TifsPrefetcher(_StreamReplayPrefetcher):
    """Temporal Instruction Fetch Streaming: replay the miss stream."""

    name = "tifs"

    def __init__(self, history_entries: int = 8 * 1024, degree: int = 4,
                 lookahead: int = 8):
        super().__init__(history_entries, degree, lookahead)

    def records_stream(self, record, outcome) -> bool:
        return outcome != "hit"

    def storage_bytes(self) -> int:
        return self.history.storage_bytes()


class PifPrefetcher(_StreamReplayPrefetcher):
    """Proactive Instruction Fetch: replay the full access stream.

    The longer, denser history buys higher coverage; the paper quotes
    ~200 KB per core for the original design.
    """

    name = "pif"

    def __init__(self, history_entries: int = 48 * 1024, degree: int = 6,
                 lookahead: int = 12):
        super().__init__(history_entries, degree, lookahead)

    def records_stream(self, record, outcome) -> bool:
        return True

    def storage_bytes(self) -> int:
        return self.history.storage_bytes()
