"""FDIP: classic fetch-directed instruction prefetching.

Reinman, Calder and Austin (MICRO'99), cited by the paper as [10] — the
original BTB-directed scheme Boomerang revived.  The branch prediction
unit runs ahead through the BTB and prefetches the discovered blocks, but
unlike Boomerang there is **no pre-decode BTB prefilling**: a BTB miss
simply ends the runahead until the demand stream resolves the branch and
trains the BTB.  This is the "need a near-ideal BTB" weakness the paper's
Section II-B describes.
"""

from __future__ import annotations

from ..isa import BranchKind
from .runahead import RunaheadPrefetcher


class FdipPrefetcher(RunaheadPrefetcher):
    """BTB-directed runahead without BTB prefilling."""

    name = "fdip"

    def process_runahead(self, index: int, record) -> bool:
        sim = self.sim
        sim.issue_prefetch(record.line)

        if not record.has_branch:
            return True
        if record.branch_kind is BranchKind.RETURN:
            return True  # RAS-resolved

        entry = sim.btb.peek(record.branch_pc)
        if entry is None:
            # No prefill path: give up until demand trains the BTB.
            self.runahead_btb_misses += 1
            self.resync(index)
            return False

        if record.branch_kind is BranchKind.COND \
                and self.sample_mispredict(record, index):
            self.resync(index)
            return False
        if record.branch_kind is BranchKind.INDIRECT \
                and entry.target != record.branch_target:
            self.resync(index)
            return False
        return True

    def storage_bytes(self) -> int:
        return self.window * 8  # FTQ only; metadata-free
