"""Static program statistics.

Summarises a generated program the way a binary-analysis tool would:
text size, function size distribution, basic-block geometry, branch mix,
and cache-line branch density (the quantity behind the paper's Fig. 8).
Used to validate that synthetic programs look like server binaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..isa import BranchKind
from .graph import ControlFlowGraph
from .layout import Program


@dataclass
class ProgramStats:
    """Aggregate static statistics of one laid-out program."""

    text_bytes: int
    n_functions: int
    n_blocks: int
    n_instructions: int
    n_branches: int
    branch_mix: Dict[str, int] = field(default_factory=dict)
    function_bytes: List[int] = field(default_factory=list)
    block_instrs: List[int] = field(default_factory=list)
    branches_per_line: List[int] = field(default_factory=list)
    cold_block_fraction: float = 0.0

    @property
    def branch_density(self) -> float:
        """Branches per instruction."""
        if not self.n_instructions:
            return 0.0
        return self.n_branches / self.n_instructions

    @property
    def mean_function_bytes(self) -> float:
        return float(np.mean(self.function_bytes)) if self.function_bytes \
            else 0.0

    @property
    def mean_block_instrs(self) -> float:
        return float(np.mean(self.block_instrs)) if self.block_instrs \
            else 0.0

    @property
    def mean_branches_per_line(self) -> float:
        if not self.branches_per_line:
            return 0.0
        return float(np.mean(self.branches_per_line))

    def summary(self) -> str:
        mix = ", ".join(f"{k}: {v}" for k, v in sorted(self.branch_mix.items()))
        return "\n".join([
            f"text            {self.text_bytes / 1024:.1f} KB",
            f"functions       {self.n_functions} "
            f"(mean {self.mean_function_bytes:.0f} B)",
            f"basic blocks    {self.n_blocks} "
            f"(mean {self.mean_block_instrs:.1f} instr)",
            f"instructions    {self.n_instructions}",
            f"branches        {self.n_branches} "
            f"({self.branch_density:.1%} of instructions)",
            f"branch mix      {mix}",
            f"branches/line   {self.mean_branches_per_line:.2f}",
            f"cold blocks     {self.cold_block_fraction:.1%}",
        ])


def analyze_program(program: Program) -> ProgramStats:
    """Compute :class:`ProgramStats` for a laid-out program."""
    cfg: ControlFlowGraph = program.cfg
    branch_mix: Counter = Counter()
    function_bytes = []
    block_instrs = []
    n_instr = 0
    n_branches = 0
    n_cold = 0
    for func in cfg.functions:
        function_bytes.append(sum(b.size for b in func.blocks))
        for blk in func.blocks:
            block_instrs.append(blk.n_instr)
            n_instr += blk.n_instr
            if blk.is_cold:
                n_cold += 1
            for instr in blk.instructions:
                if instr.is_branch:
                    n_branches += 1
                    branch_mix[instr.kind.name] += 1

    branches_per_line = [len(program.branch_byte_offsets(line))
                         for line in program.lines()]

    return ProgramStats(
        text_bytes=program.text_bytes,
        n_functions=len(cfg.functions),
        n_blocks=cfg.n_blocks,
        n_instructions=n_instr,
        n_branches=n_branches,
        branch_mix=dict(branch_mix),
        function_bytes=function_bytes,
        block_instrs=block_instrs,
        branches_per_line=branches_per_line,
        cold_block_fraction=n_cold / cfg.n_blocks if cfg.n_blocks else 0.0,
    )


def branch_kind_fractions(stats: ProgramStats) -> Dict[str, float]:
    """Branch mix as fractions; keys are BranchKind names."""
    total = sum(stats.branch_mix.values())
    if not total:
        return {}
    return {k: v / total for k, v in stats.branch_mix.items()}


def expected_server_shape(stats: ProgramStats) -> List[str]:
    """Validate server-binary-like shape; returns a list of violations."""
    problems = []
    if stats.text_bytes < 64 * 1024:
        problems.append("text smaller than 64 KB — not server-scale")
    if not 0.05 <= stats.branch_density <= 0.4:
        problems.append(
            f"branch density {stats.branch_density:.2f} outside [0.05, 0.4]")
    fractions = branch_kind_fractions(stats)
    if fractions.get(BranchKind.COND.name, 0) < 0.2:
        problems.append("conditional branches under 20% of branches")
    if fractions.get(BranchKind.RETURN.name, 0) < 0.05:
        problems.append("returns under 5% of branches")
    if stats.cold_block_fraction <= 0.0:
        problems.append("no cold (error-path) blocks generated")
    if stats.mean_branches_per_line > 8:
        problems.append("implausibly branch-dense cache lines")
    return problems
