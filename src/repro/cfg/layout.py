"""Code layout: assign addresses to a CFG and emit a real text segment.

Functions are laid out in function-id order, blocks in program order inside
each function, so fall-through edges are physically sequential and cold
error blocks sit inline between hot blocks — the layout that makes plain
NXL prefetchers issue useless prefetches (paper Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa import (
    CACHE_BLOCK_SIZE,
    FIXED_INSTRUCTION_SIZE,
    MAX_VARIABLE_SIZE,
    MIN_VARIABLE_SIZE,
    VL_BRANCH_MIN_SIZE,
    BranchKind,
    Instruction,
    PredecodeCaches,
    Predecoder,
    TextSegment,
    block_base,
)
from .graph import BasicBlock, ControlFlowGraph

DEFAULT_TEXT_BASE = 0x10000
FUNCTION_ALIGNMENT = 16


@dataclass(frozen=True)
class LineSpan:
    """The portion of one basic block that lives in one cache line."""

    line_base: int
    first_pc: int
    n_instr: int
    #: True when this span contains the block's terminator (always the
    #: last span of a block that has a terminator).
    has_terminator: bool


class Program:
    """A laid-out synthetic program: CFG + byte image + derived indexes."""

    def __init__(self, cfg: ControlFlowGraph, segment: TextSegment):
        self.cfg = cfg
        self.segment = segment
        self._spans: Dict[int, Tuple[LineSpan, ...]] = {}
        self._branch_offsets: Dict[int, Tuple[int, ...]] = {}
        # One decode memo per program: every predecoder built from this
        # Program shares it (the segment is immutable), so back-to-back
        # simulations skip the cold re-decode of the whole text.
        self._predecode_caches = PredecodeCaches()
        self._index_lines()

    @property
    def variable_length(self) -> bool:
        return self.segment.variable_length

    @property
    def text_bytes(self) -> int:
        return self.segment.size

    def predecoder(self, **kwargs) -> Predecoder:
        return Predecoder(self.segment, caches=self._predecode_caches,
                          **kwargs)

    def spans_of(self, bid: int) -> Tuple[LineSpan, ...]:
        """Cache-line spans of a basic block, in fetch order."""
        return self._spans[bid]

    def branch_byte_offsets(self, line_base: int) -> Tuple[int, ...]:
        """Ground-truth byte offsets of branches in a cache line.

        This is what the retire stream would reveal; it seeds branch
        footprints for the VL-ISA experiments (Fig. 8/9).
        """
        return self._branch_offsets.get(line_base, ())

    def lines(self) -> List[int]:
        """All cache-line base addresses that hold instructions."""
        seen = set()
        for spans in self._spans.values():
            for s in spans:
                seen.add(s.line_base)
        return sorted(seen)

    def _index_lines(self) -> None:
        for blk in self.cfg.iter_blocks():
            spans: List[LineSpan] = []
            cur_line = -1
            first_pc = 0
            count = 0
            for instr in blk.instructions:
                line = block_base(instr.pc)
                if line != cur_line:
                    if count:
                        spans.append(LineSpan(cur_line, first_pc, count, False))
                    cur_line = line
                    first_pc = instr.pc
                    count = 0
                count += 1
                if instr.is_branch:
                    offs = self._branch_offsets.setdefault(line, ())
                    self._branch_offsets[line] = offs + (instr.pc - line,)
            if count:
                spans.append(LineSpan(cur_line, first_pc, count,
                                      blk.terminator is not None))
            self._spans[blk.bid] = tuple(spans)
        for line, offs in self._branch_offsets.items():
            self._branch_offsets[line] = tuple(sorted(offs))


def _terminator_kind(block: BasicBlock) -> Optional[BranchKind]:
    return block.terminator.kind if block.terminator is not None else None


def _instruction_sizes(block: BasicBlock, variable_length: bool,
                       rng: np.random.Generator) -> List[int]:
    if not variable_length:
        return [FIXED_INSTRUCTION_SIZE] * block.n_instr
    sizes = [int(rng.integers(MIN_VARIABLE_SIZE, MAX_VARIABLE_SIZE + 1))
             for _ in range(block.n_instr)]
    kind = _terminator_kind(block)
    if kind is not None and kind.target_encoded:
        sizes[-1] = max(sizes[-1], VL_BRANCH_MIN_SIZE)
    return sizes


def layout_program(cfg: ControlFlowGraph, variable_length: bool = False,
                   base: int = DEFAULT_TEXT_BASE, seed: int = 0) -> Program:
    """Assign addresses, build instructions and write the text segment."""
    rng = np.random.default_rng(seed ^ 0x1A40)

    # Pass 1: sizes and addresses.
    all_sizes: Dict[int, List[int]] = {}
    cursor = base
    for func in cfg.functions:
        rem = cursor % FUNCTION_ALIGNMENT
        if rem:
            cursor += FUNCTION_ALIGNMENT - rem
        for blk in func.blocks:
            sizes = _instruction_sizes(blk, variable_length, rng)
            all_sizes[blk.bid] = sizes
            blk.addr = cursor
            blk.size = sum(sizes)
            cursor += blk.size

    segment = TextSegment(base=base, size=cursor - base,
                          variable_length=variable_length)

    # Pass 2: resolve targets and emit bytes.
    for func in cfg.functions:
        for blk in func.blocks:
            sizes = all_sizes[blk.bid]
            pcs: List[int] = []
            pc = blk.addr
            for s in sizes:
                pcs.append(pc)
                pc += s
            instrs: List[Instruction] = []
            for i, (ipc, isize) in enumerate(zip(pcs, sizes)):
                is_last = i == len(sizes) - 1
                term = blk.terminator if is_last else None
                if term is None:
                    instrs.append(Instruction(pc=ipc, size=isize))
                    continue
                target = None
                if term.kind in (BranchKind.COND, BranchKind.JUMP):
                    target = cfg.block(term.taken_succ).addr
                elif term.kind is BranchKind.CALL:
                    target = cfg.function(term.callee).entry.addr
                instrs.append(Instruction(pc=ipc, size=isize,
                                          kind=term.kind, target=target))
            blk.instructions = instrs
            for instr in instrs:
                segment.write_instruction(instr)

    return Program(cfg, segment)
