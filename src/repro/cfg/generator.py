"""Synthetic control-flow-graph generator.

Server workloads have the properties the paper measures because of their
control-flow structure: deep software stacks (many functions, deep call
chains), massive instruction footprints, mostly-biased conditional branches,
and rarely executed error/exception paths interleaved with hot code
(Algorithm 1 in the paper).  This generator produces programs with exactly
those features, parameterised so that each evaluated workload can be given
its own footprint and branchiness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..isa import BranchKind
from .graph import BasicBlock, ControlFlowGraph, Function, Terminator


@dataclass
class CfgParams:
    """Shape parameters of a synthetic program.

    The defaults produce a mid-sized server-like binary (~250 KB of text
    with the fixed-length ISA).  Workload profiles scale these.
    """

    n_functions: int = 600
    #: Mean number of structural segments (straight run / diamond / loop /
    #: call site / error check) per function.
    avg_segments: float = 6.0
    avg_block_instr: float = 8.0
    min_block_instr: int = 2
    max_block_instr: int = 24

    # Segment mix (remaining probability mass is straight-line code).
    p_diamond: float = 0.22
    p_loop: float = 0.08
    p_call: float = 0.28
    p_error_check: float = 0.14

    #: Fraction of call sites that are indirect calls.
    p_indirect: float = 0.05
    #: Probability that a rarely-executed error path is entered.
    error_taken_prob: float = 0.01
    #: Typical taken probability of a biased conditional branch.
    biased_taken_prob: float = 0.08
    #: Fraction of diamond conditionals that are roughly 50/50.
    p_balanced: float = 0.15
    #: Mean iteration count of loops (geometric).
    loop_mean_iters: float = 8.0
    #: Fraction of functions that are hot shared utilities (memcpy-like).
    utility_fraction: float = 0.05
    #: Probability that a call site targets a utility function.
    p_call_utility: float = 0.30

    def __post_init__(self) -> None:
        if self.n_functions < 2:
            raise ValueError("need at least two functions")
        mix = self.p_diamond + self.p_loop + self.p_call + self.p_error_check
        if mix > 1.0:
            raise ValueError(f"segment mix sums to {mix} > 1")
        if not 1 <= self.min_block_instr <= self.max_block_instr:
            raise ValueError("invalid block instruction bounds")


class CfgGenerator:
    """Generates a :class:`ControlFlowGraph` from :class:`CfgParams`.

    Deterministic given (params, seed).  Functions form an acyclic call
    graph (callees always have a larger function id, except the shared
    utility functions which are callable from anywhere), so every walk of
    the program terminates.
    """

    def __init__(self, params: CfgParams, seed: int = 0):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self._next_bid = 0

    def generate(self) -> ControlFlowGraph:
        p = self.params
        n_util = max(1, int(p.n_functions * p.utility_fraction))
        # Utilities occupy the tail ids so every function may call them.
        self._utility_fids = list(range(p.n_functions - n_util, p.n_functions))
        functions = [self._gen_function(fid) for fid in range(p.n_functions)]
        return ControlFlowGraph(functions)

    # ------------------------------------------------------------------
    # helpers

    def _new_bid(self) -> int:
        bid = self._next_bid
        self._next_bid += 1
        return bid

    def _block_len(self) -> int:
        p = self.params
        n = int(self.rng.poisson(p.avg_block_instr - p.min_block_instr))
        return int(np.clip(n + p.min_block_instr,
                           p.min_block_instr, p.max_block_instr))

    def _pick_callee(self, fid: int) -> Optional[int]:
        """Zipf-weighted forward callee, or a shared utility."""
        p = self.params
        is_util = fid in self._utility_fids
        if not is_util and self.rng.random() < p.p_call_utility:
            return int(self.rng.choice(self._utility_fids))
        lo = fid + 1
        hi = self.params.n_functions - (0 if is_util else len(self._utility_fids))
        if lo >= hi:
            return None
        # Prefer nearby callees (locality in the call graph).
        span = hi - lo
        ranks = np.arange(1, span + 1, dtype=float)
        weights = 1.0 / ranks
        weights /= weights.sum()
        return int(lo + self.rng.choice(span, p=weights))

    def _cond_taken_prob(self) -> float:
        p = self.params
        if self.rng.random() < p.p_balanced:
            return float(self.rng.uniform(0.35, 0.65))
        base = p.biased_taken_prob * float(self.rng.uniform(0.5, 1.5))
        prob = float(np.clip(base, 0.005, 0.45))
        # Half the biased branches are biased-taken rather than not-taken.
        if self.rng.random() < 0.5:
            prob = 1.0 - prob
        return prob

    # ------------------------------------------------------------------
    # function body construction

    def _gen_function(self, fid: int) -> Function:
        p = self.params
        is_util = fid in self._utility_fids
        n_segments = max(1, int(self.rng.geometric(1.0 / p.avg_segments)))
        if is_util:
            n_segments = max(1, n_segments // 2)

        blocks: List[BasicBlock] = []
        for _ in range(n_segments):
            r = self.rng.random()
            can_call = self._pick_callee(fid) is not None
            if r < p.p_diamond:
                self._emit_diamond(fid, blocks)
            elif r < p.p_diamond + p.p_loop:
                self._emit_loop(fid, blocks)
            elif r < p.p_diamond + p.p_loop + p.p_call and can_call and not is_util:
                self._emit_call(fid, blocks)
            elif r < p.p_diamond + p.p_loop + p.p_call + p.p_error_check:
                self._emit_error_check(fid, blocks)
            else:
                self._emit_straight(fid, blocks)

        # Function epilogue: a return block.
        blocks.append(BasicBlock(
            bid=self._new_bid(), func=fid, n_instr=self._block_len(),
            terminator=Terminator(BranchKind.RETURN),
        ))
        return Function(fid=fid, blocks=blocks)

    def _emit_straight(self, fid: int, blocks: List[BasicBlock]) -> None:
        blocks.append(BasicBlock(
            bid=self._new_bid(), func=fid, n_instr=self._block_len()))

    def _emit_call(self, fid: int, blocks: List[BasicBlock]) -> None:
        p = self.params
        callee = self._pick_callee(fid)
        if callee is None:
            # No callable target (tail of the call-graph DAG): plain code.
            self._emit_straight(fid, blocks)
            return
        if self.rng.random() < p.p_indirect:
            # Indirect call dispatching over a small set of callees.
            callees = {callee}
            for _ in range(int(self.rng.integers(1, 4))):
                extra = self._pick_callee(fid)
                if extra is not None:
                    callees.add(extra)
            probs = self.rng.dirichlet(np.ones(len(callees)) * 2.0)
            term = Terminator(
                BranchKind.INDIRECT,
                indirect_callees=tuple(zip(sorted(callees), map(float, probs))),
            )
        else:
            term = Terminator(BranchKind.CALL, callee=callee)
        blocks.append(BasicBlock(
            bid=self._new_bid(), func=fid, n_instr=self._block_len(),
            terminator=term))

    def _emit_diamond(self, fid: int, blocks: List[BasicBlock]) -> None:
        cond_bid = self._new_bid()
        then_bid = self._new_bid()
        else_bid = self._new_bid()
        join_bid = self._new_bid()
        prob = self._cond_taken_prob()
        blocks.append(BasicBlock(
            bid=cond_bid, func=fid, n_instr=self._block_len(),
            terminator=Terminator(BranchKind.COND, taken_succ=else_bid,
                                  taken_prob=prob)))
        blocks.append(BasicBlock(
            bid=then_bid, func=fid, n_instr=self._block_len(),
            terminator=Terminator(BranchKind.JUMP, taken_succ=join_bid)))
        blocks.append(BasicBlock(
            bid=else_bid, func=fid, n_instr=self._block_len(),
            is_cold=prob < 0.05))
        blocks.append(BasicBlock(
            bid=join_bid, func=fid, n_instr=self._block_len()))

    def _emit_loop(self, fid: int, blocks: List[BasicBlock]) -> None:
        p = self.params
        head_bid = self._new_bid()
        # Back-edge taken probability from the mean iteration count.
        iters = max(2.0, float(self.rng.normal(p.loop_mean_iters,
                                               p.loop_mean_iters / 3)))
        back_prob = 1.0 - 1.0 / iters
        blocks.append(BasicBlock(
            bid=head_bid, func=fid, n_instr=self._block_len(),
            terminator=Terminator(BranchKind.COND, taken_succ=head_bid,
                                  taken_prob=back_prob)))

    def _emit_error_check(self, fid: int, blocks: List[BasicBlock]) -> None:
        """A biased check whose taken path is a cold inline error block,
        mirroring Algorithm 1's try/catch layout."""
        p = self.params
        check_bid = self._new_bid()
        cold_bid = self._new_bid()
        join_bid = self._new_bid()
        blocks.append(BasicBlock(
            bid=check_bid, func=fid, n_instr=self._block_len(),
            terminator=Terminator(BranchKind.COND, taken_succ=cold_bid,
                                  taken_prob=p.error_taken_prob)))
        # Hot path jumps over the inline cold handler.
        blocks.append(BasicBlock(
            bid=self._new_bid(), func=fid, n_instr=self._block_len(),
            terminator=Terminator(BranchKind.JUMP, taken_succ=join_bid)))
        blocks.append(BasicBlock(
            bid=cold_bid, func=fid,
            n_instr=max(self._block_len(), 2 * self.params.min_block_instr),
            is_cold=True))
        blocks.append(BasicBlock(
            bid=join_bid, func=fid, n_instr=self._block_len()))


def generate_cfg(params: Optional[CfgParams] = None, seed: int = 0) -> ControlFlowGraph:
    """Convenience wrapper: generate a program from ``params`` and ``seed``."""
    return CfgGenerator(params or CfgParams(), seed=seed).generate()
