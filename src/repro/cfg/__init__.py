"""Synthetic control-flow graphs: data model, generator, and code layout."""

from .generator import CfgGenerator, CfgParams, generate_cfg
from .graph import BasicBlock, ControlFlowGraph, Function, Terminator
from .layout import (
    DEFAULT_TEXT_BASE,
    FUNCTION_ALIGNMENT,
    LineSpan,
    Program,
    layout_program,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "Function",
    "Terminator",
    "CfgParams",
    "CfgGenerator",
    "generate_cfg",
    "Program",
    "LineSpan",
    "layout_program",
    "DEFAULT_TEXT_BASE",
    "FUNCTION_ALIGNMENT",
]
