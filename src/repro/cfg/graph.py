"""Control-flow-graph data model for synthetic programs.

A synthetic program is a set of functions, each a list of basic blocks laid
out consecutively.  Every block optionally ends with a terminator branch;
blocks without a terminator fall through to the next block of the function.
Addresses are assigned later by :mod:`repro.cfg.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..isa import BranchKind, Instruction


@dataclass
class Terminator:
    """The branch that ends a basic block.

    ``taken_succ`` is a basic-block id for COND/JUMP, or ``None`` for
    RETURN.  For CALL and INDIRECT the callee is a *function* id (INDIRECT
    models an indirect call that dispatches over ``indirect_callees``).
    COND blocks also fall through to the next block with probability
    ``1 - taken_prob``.
    """

    kind: BranchKind
    taken_succ: Optional[int] = None
    callee: Optional[int] = None
    taken_prob: float = 1.0
    indirect_callees: Sequence[Tuple[int, float]] = ()

    def __post_init__(self) -> None:
        if self.kind is BranchKind.COND and self.taken_succ is None:
            raise ValueError("conditional terminator needs a taken successor")
        if self.kind is BranchKind.JUMP and self.taken_succ is None:
            raise ValueError("jump terminator needs a successor")
        if self.kind is BranchKind.CALL and self.callee is None:
            raise ValueError("call terminator needs a callee")
        if self.kind is BranchKind.INDIRECT and not self.indirect_callees:
            raise ValueError("indirect terminator needs callees")
        if not 0.0 <= self.taken_prob <= 1.0:
            raise ValueError("taken probability must be in [0, 1]")


@dataclass
class BasicBlock:
    """A basic block: ``n_instr`` instructions, the last being the terminator
    when one is present."""

    bid: int
    func: int
    n_instr: int
    terminator: Optional[Terminator] = None
    is_cold: bool = False

    # Filled in by layout:
    addr: int = -1
    size: int = -1
    instructions: List[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_instr < 1:
            raise ValueError("a basic block holds at least one instruction")

    @property
    def laid_out(self) -> bool:
        return self.addr >= 0

    @property
    def end(self) -> int:
        if not self.laid_out:
            raise RuntimeError(f"block {self.bid} not laid out yet")
        return self.addr + self.size

    @property
    def branch(self) -> Optional[Instruction]:
        """The terminator instruction, once laid out."""
        if self.terminator is None or not self.instructions:
            return None
        return self.instructions[-1]


@dataclass
class Function:
    """A function: contiguous basic blocks, entered at ``blocks[0]``."""

    fid: int
    blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise RuntimeError(f"function {self.fid} has no blocks")
        return self.blocks[0]

    @property
    def n_instr(self) -> int:
        return sum(b.n_instr for b in self.blocks)


class ControlFlowGraph:
    """The whole synthetic program."""

    def __init__(self, functions: Sequence[Function]):
        if not functions:
            raise ValueError("a program needs at least one function")
        self.functions: List[Function] = list(functions)
        self._by_fid: Dict[int, Function] = {f.fid: f for f in self.functions}
        self._by_bid: Dict[int, BasicBlock] = {}
        for f in self.functions:
            for b in f.blocks:
                if b.bid in self._by_bid:
                    raise ValueError(f"duplicate basic-block id {b.bid}")
                self._by_bid[b.bid] = b
        self._validate()

    def _validate(self) -> None:
        for f in self.functions:
            if not f.blocks:
                raise ValueError(f"function {f.fid} is empty")
            last = f.blocks[-1]
            if last.terminator is None or last.terminator.kind not in (
                    BranchKind.RETURN, BranchKind.JUMP):
                raise ValueError(
                    f"function {f.fid} must end in a return or jump, "
                    f"got {last.terminator}"
                )
            for i, b in enumerate(f.blocks):
                t = b.terminator
                if t is None and i == len(f.blocks) - 1:
                    raise ValueError(
                        f"last block {b.bid} of function {f.fid} falls off the end"
                    )
                if t is None:
                    continue
                for succ in (t.taken_succ,):
                    if succ is not None and succ not in self._by_bid:
                        raise ValueError(f"block {b.bid} targets unknown block {succ}")
                if t.callee is not None and t.callee not in self._by_fid:
                    raise ValueError(f"block {b.bid} calls unknown function {t.callee}")
                for callee, _p in t.indirect_callees:
                    if callee not in self._by_fid:
                        raise ValueError(
                            f"block {b.bid} indirectly calls unknown function {callee}"
                        )

    def function(self, fid: int) -> Function:
        return self._by_fid[fid]

    def block(self, bid: int) -> BasicBlock:
        return self._by_bid[bid]

    def fallthrough_of(self, block: BasicBlock) -> Optional[BasicBlock]:
        """The next block of the same function, if any."""
        func = self._by_fid[block.func]
        idx = func.blocks.index(block)
        if idx + 1 < len(func.blocks):
            return func.blocks[idx + 1]
        return None

    @property
    def n_blocks(self) -> int:
        return len(self._by_bid)

    @property
    def n_instr(self) -> int:
        return sum(f.n_instr for f in self.functions)

    def iter_blocks(self):
        for f in self.functions:
            yield from f.blocks
