"""Conventional program-counter-indexed branch target buffer.

This is the BTB the paper's proposal leaves untouched ("our goal is not to
change the structure of BTB", Section V-C): a set-associative structure
keyed by branch PC, storing the branch kind and (for non-return branches)
the last observed target.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..isa import BranchKind


@dataclass
class BtbEntry:
    pc: int
    target: int
    kind: BranchKind


class ConventionalBtb:
    """Set-associative, LRU, PC-indexed BTB."""

    def __init__(self, n_entries: int = 2048, assoc: int = 4,
                 name: str = "btb"):
        if n_entries <= 0 or assoc <= 0 or n_entries % assoc:
            raise ValueError("BTB entries must be a positive multiple of assoc")
        self.name = name
        self.n_entries = n_entries
        self.assoc = assoc
        self.n_sets = n_entries // assoc
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, pc: int) -> OrderedDict:
        return self._sets[(pc >> 2) % self.n_sets]

    def lookup(self, pc: int) -> Optional[BtbEntry]:
        """Architectural lookup: updates LRU and hit/miss statistics."""
        cset = self._set_of(pc)
        entry = cset.get(pc)
        if entry is None:
            self.misses += 1
            return None
        cset.move_to_end(pc)
        self.hits += 1
        return entry

    def peek(self, pc: int) -> Optional[BtbEntry]:
        """Side-effect-free probe (used by prefetchers, not counted)."""
        return self._set_of(pc).get(pc)

    def insert(self, pc: int, target: int, kind: BranchKind) -> None:
        cset = self._set_of(pc)
        if pc in cset:
            entry = cset[pc]
            entry.target = target
            entry.kind = kind
            cset.move_to_end(pc)
            return
        if len(cset) >= self.assoc:
            cset.popitem(last=False)
        cset[pc] = BtbEntry(pc, target, kind)

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    #: Approximate bits per entry: ~46-bit tag+target and a 2-bit kind.
    ENTRY_BITS = 48 + 2

    def storage_bytes(self) -> int:
        return self.n_entries * self.ENTRY_BITS // 8


class ReturnAddressStack:
    """A bounded return-address stack.

    Returns normally take their target from the RAS, which is why the
    paper's Dis prefetcher and BTBs treat returns specially (Shotgun gives
    them a dedicated RIB)."""

    def __init__(self, depth: int = 32):
        if depth <= 0:
            raise ValueError("RAS depth must be positive")
        self.depth = depth
        self._stack: List[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            # Circular overwrite of the oldest entry.
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)
