"""BTB prefetch buffer (paper Section V-C).

Pre-decoded branches are not inserted straight into the BTB; they go into a
small 2-way set-associative buffer whose entries are organised like
Confluence's AirBTB entries: one entry per *cache block*, holding all (up
to a bounded number of) branches of that block.  A later BTB lookup that
misses but hits in the buffer moves the matching branch into the BTB,
avoiding the miss penalty.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..isa import CACHE_BLOCK_SIZE, BranchKind, Instruction


@dataclass
class BufferedBranch:
    pc: int
    target: Optional[int]
    kind: BranchKind


class BtbPrefetchBuffer:
    """Block-grained, set-associative buffer of pre-decoded branches."""

    #: Bound on branches stored per block entry; matches the branch
    #: footprint size (Fig. 8: four branches cover almost all blocks).
    BRANCHES_PER_ENTRY = 4

    def __init__(self, n_entries: int = 32, assoc: int = 2,
                 block_size: int = CACHE_BLOCK_SIZE):
        if n_entries <= 0 or assoc <= 0 or n_entries % assoc:
            raise ValueError("buffer entries must be a positive multiple of assoc")
        self.n_entries = n_entries
        self.assoc = assoc
        self.block_size = block_size
        self.n_sets = n_entries // assoc
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.inserts = 0

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.n_sets]

    def fill(self, block_addr: int, branches: Sequence[Instruction]) -> None:
        """Store the pre-decoded branches of one cache block (one access)."""
        line = block_addr // self.block_size
        cset = self._set_of(line)
        entry: Dict[int, BufferedBranch] = {}
        for instr in branches[:self.BRANCHES_PER_ENTRY]:
            entry[instr.pc] = BufferedBranch(instr.pc, instr.target, instr.kind)
        if line in cset:
            cset[line].update(entry)
            cset.move_to_end(line)
        else:
            if len(cset) >= self.assoc:
                cset.popitem(last=False)
            cset[line] = entry
        self.inserts += 1

    def fill_prepared(self, line: int,
                      prepared: Sequence[BufferedBranch]) -> None:
        """Store pre-built :class:`BufferedBranch` objects (one access).

        ``line`` is the block index (``block_addr // block_size``) and
        ``prepared`` is already bounded to :attr:`BRANCHES_PER_ENTRY`.
        The objects may be shared across fills — nothing in the frontend
        mutates a BufferedBranch after construction (the BTB copies its
        fields on promotion) — which lets prefetchers cache the prepared
        entry per block instead of rebuilding it every pre-decode pass.
        Semantically identical to :meth:`fill`.
        """
        cset = self._sets[line % self.n_sets]
        existing = cset.get(line)
        if existing is not None:
            for branch in prepared:
                existing[branch.pc] = branch
            cset.move_to_end(line)
        else:
            if len(cset) >= self.assoc:
                cset.popitem(last=False)
            cset[line] = {branch.pc: branch for branch in prepared}
        self.inserts += 1

    def lookup(self, pc: int) -> Optional[BufferedBranch]:
        """Probe for a branch at ``pc``; a hit promotes nothing by itself —
        the caller moves the entry into the BTB."""
        line = pc // self.block_size
        cset = self._set_of(line)
        entry = cset.get(line)
        if entry is None:
            self.misses += 1
            return None
        branch = entry.get(pc)
        if branch is None:
            self.misses += 1
            return None
        cset.move_to_end(line)
        self.hits += 1
        return branch

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    #: Per entry: block tag (~40 bits) + 4 branches x (6-bit offset +
    #: 32-bit target + 2-bit kind).
    ENTRY_BITS = 40 + 4 * (6 + 32 + 2)

    def storage_bytes(self) -> int:
        return self.n_entries * self.ENTRY_BITS // 8
