"""AirBTB: Confluence's block-oriented BTB (Kaynak et al., MICRO'15).

The paper evaluates Confluence with a 16 K-entry conventional BTB as an
explicit *upper bound*; the real Confluence design is **AirBTB** — a
small BTB organised by cache block whose entries are inserted in bulk
when the instruction prefetcher brings (pre-decodes) a block, and evicted
when the block's entry falls out.  This module implements AirBTB so the
repository can quantify how close the real design comes to the paper's
upper-bound modelling.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..isa import CACHE_BLOCK_SIZE, BranchKind, Instruction


@dataclass
class AirBtbBranch:
    offset: int
    target: Optional[int]
    kind: BranchKind


class AirBtb:
    """Block-grained BTB: one entry holds all branches of a cache block.

    The engine-facing interface matches ``ConventionalBtb`` (lookup /
    peek / insert by branch pc), so it can replace the simulator's BTB
    directly.  ``fill_block`` is the bulk-insert path driven by the
    prefetcher's pre-decoder.
    """

    #: Branch slots per block entry (AirBTB uses a small fixed bundle).
    BRANCHES_PER_ENTRY = 4

    def __init__(self, n_entries: int = 512, assoc: int = 4,
                 block_size: int = CACHE_BLOCK_SIZE):
        if n_entries <= 0 or assoc <= 0 or n_entries % assoc:
            raise ValueError("entries must be a positive multiple of assoc")
        self.n_entries = n_entries
        self.assoc = assoc
        self.block_size = block_size
        self.n_sets = n_entries // assoc
        self._sets: List[OrderedDict] = [OrderedDict()
                                         for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0
        self.bulk_fills = 0

    # -- block-grained plumbing -------------------------------------------

    def _set_of(self, line: int) -> OrderedDict:
        return self._sets[line % self.n_sets]

    def _entry_for(self, pc: int) -> Optional[Dict[int, AirBtbBranch]]:
        line = pc // self.block_size
        return self._set_of(line).get(line)

    def fill_block(self, block_addr: int,
                   branches: Sequence[Instruction]) -> None:
        """Bulk-insert a pre-decoded block's branches (one BTB write)."""
        line = block_addr // self.block_size
        cset = self._set_of(line)
        entry: Dict[int, AirBtbBranch] = {}
        for instr in branches[:self.BRANCHES_PER_ENTRY]:
            entry[instr.pc] = AirBtbBranch(
                offset=instr.pc % self.block_size,
                target=instr.target, kind=instr.kind)
        if line in cset:
            cset[line].update(entry)
            cset.move_to_end(line)
        else:
            if len(cset) >= self.assoc:
                cset.popitem(last=False)
            cset[line] = entry
        self.bulk_fills += 1

    # -- ConventionalBtb-compatible interface ------------------------------

    def lookup(self, pc: int):
        entry = self._entry_for(pc)
        branch = entry.get(pc) if entry is not None else None
        if branch is None:
            self.misses += 1
            return None
        line = pc // self.block_size
        self._set_of(line).move_to_end(line)
        self.hits += 1
        return branch

    def peek(self, pc: int):
        entry = self._entry_for(pc)
        return entry.get(pc) if entry is not None else None

    def insert(self, pc: int, target: int, kind: BranchKind) -> None:
        """Demand-side single-branch insert (e.g. after a redirect)."""
        line = pc // self.block_size
        cset = self._set_of(line)
        entry = cset.get(line)
        if entry is None:
            if len(cset) >= self.assoc:
                cset.popitem(last=False)
            entry = {}
            cset[line] = entry
        if pc in entry:
            entry[pc].target = target
            entry[pc].kind = kind
        elif len(entry) < self.BRANCHES_PER_ENTRY:
            entry[pc] = AirBtbBranch(offset=pc % self.block_size,
                                     target=target, kind=kind)
        cset.move_to_end(line)

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    #: Block tag (~40b) + 4 x (6b offset + 32b target + 3b kind).
    ENTRY_BITS = 40 + 4 * (6 + 32 + 3)

    def storage_bytes(self) -> int:
        return self.n_entries * self.ENTRY_BITS // 8
