"""Basic-block-oriented BTB, as used by Boomerang.

Boomerang's frontend works in basic-block units: the BTB is indexed by the
*start address* of a basic block and each entry describes where the block
ends (its terminator branch) and where it goes.  This is what lets
Boomerang *detect* BTB misses — asking for a block start and missing means
the control flow beyond that point is unknown, so the prefetcher must stop
and resolve the miss by pre-decoding (Section II-B).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from ..isa import BranchKind


@dataclass
class BasicBlockEntry:
    start: int
    #: Bytes from ``start`` to the end of the terminator instruction.
    size: int
    branch_pc: int
    kind: BranchKind
    #: Encoded/last target for COND/JUMP/CALL; None for RETURN/INDIRECT.
    target: Optional[int]

    @property
    def fallthrough(self) -> int:
        return self.start + self.size


class BasicBlockBtb:
    """Set-associative BTB keyed by basic-block start address."""

    def __init__(self, n_entries: int = 2048, assoc: int = 4,
                 name: str = "bb-btb"):
        if n_entries <= 0 or assoc <= 0 or n_entries % assoc:
            raise ValueError("BTB entries must be a positive multiple of assoc")
        self.name = name
        self.n_entries = n_entries
        self.assoc = assoc
        self.n_sets = n_entries // assoc
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, start: int) -> OrderedDict:
        return self._sets[(start >> 2) % self.n_sets]

    def lookup(self, start: int) -> Optional[BasicBlockEntry]:
        cset = self._set_of(start)
        entry = cset.get(start)
        if entry is None:
            self.misses += 1
            return None
        cset.move_to_end(start)
        self.hits += 1
        return entry

    def peek(self, start: int) -> Optional[BasicBlockEntry]:
        return self._set_of(start).get(start)

    def insert(self, entry: BasicBlockEntry) -> None:
        cset = self._set_of(entry.start)
        if entry.start in cset:
            cset[entry.start] = entry
            cset.move_to_end(entry.start)
            return
        if len(cset) >= self.assoc:
            cset.popitem(last=False)
        cset[entry.start] = entry

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    #: Tag + size (6b) + offset (4b) + kind (3b) + target (~32b).
    ENTRY_BITS = 40 + 6 + 4 + 3 + 32

    def storage_bytes(self) -> int:
        return self.n_entries * self.ENTRY_BITS // 8
