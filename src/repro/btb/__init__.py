"""Branch-target-buffer organisations and related frontend structures."""

from .airbtb import AirBtb, AirBtbBranch
from .basic_block import BasicBlockBtb, BasicBlockEntry
from .conventional import BtbEntry, ConventionalBtb, ReturnAddressStack
from .prefetch_buffer import BtbPrefetchBuffer, BufferedBranch
from .shotgun_btb import (
    CBtbEntry,
    RegionFootprint,
    ShotgunBtb,
    UBtbEntry,
)

__all__ = [
    "AirBtb",
    "AirBtbBranch",
    "ConventionalBtb",
    "BtbEntry",
    "ReturnAddressStack",
    "BasicBlockBtb",
    "BasicBlockEntry",
    "BtbPrefetchBuffer",
    "BufferedBranch",
    "ShotgunBtb",
    "UBtbEntry",
    "CBtbEntry",
    "RegionFootprint",
]
