"""Shotgun's split BTB organisation (paper Sections II-B and III).

Shotgun divides BTB storage into three structures:

* **U-BTB** — unconditional branches (jumps, calls, indirect calls).  Each
  entry additionally stores two spatial *footprints*: the blocks touched
  around the branch target (*call footprint*) and around the return site
  (*return footprint*).  Footprints are learned from the retired
  instruction stream, so BTB prefilling can recreate the entry's target but
  never its footprints — the root cause of the paper's Fig. 1 critique.
* **C-BTB** — a small table for conditional branches, aggressively
  prefilled by pre-decoding prefetched blocks.
* **RIB** — return instruction buffer; returns take targets from the RAS.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..isa import CACHE_BLOCK_SIZE, BranchKind


@dataclass
class RegionFootprint:
    """A bit vector of useful blocks around an anchor block.

    ``bits`` bit *i* set means block ``anchor_block + i - blocks_before``
    was touched while the region was live.
    """

    anchor_block: int
    bits: int = 0
    blocks_before: int = 2
    blocks_after: int = 5

    @property
    def span(self) -> int:
        return self.blocks_before + 1 + self.blocks_after

    def record(self, block: int) -> bool:
        rel = block - self.anchor_block + self.blocks_before
        if 0 <= rel < self.span:
            self.bits |= 1 << rel
            return True
        return False

    def blocks(self) -> List[int]:
        return [self.anchor_block - self.blocks_before + i
                for i in range(self.span) if self.bits >> i & 1]

    def __bool__(self) -> bool:
        return self.bits != 0


@dataclass
class UBtbEntry:
    pc: int
    target: Optional[int]
    kind: BranchKind
    call_footprint: Optional[RegionFootprint] = None
    return_footprint: Optional[RegionFootprint] = None
    #: True when the entry was created by BTB prefilling (pre-decode):
    #: the target is known but footprints cannot be recreated.
    prefilled: bool = False


@dataclass
class CBtbEntry:
    pc: int
    target: int


class _AssocTable:
    """Small generic set-associative LRU table keyed by PC."""

    def __init__(self, n_entries: int, assoc: int, name: str):
        if n_entries <= 0 or assoc <= 0 or n_entries % assoc:
            raise ValueError(f"{name}: entries must be a positive multiple of assoc")
        self.name = name
        self.n_entries = n_entries
        self.assoc = assoc
        self.n_sets = n_entries // assoc
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def _set_of(self, pc: int) -> OrderedDict:
        return self._sets[(pc >> 2) % self.n_sets]

    def lookup(self, pc: int):
        cset = self._set_of(pc)
        entry = cset.get(pc)
        if entry is None:
            self.misses += 1
            return None
        cset.move_to_end(pc)
        self.hits += 1
        return entry

    def peek(self, pc: int):
        return self._set_of(pc).get(pc)

    def insert(self, pc: int, entry) -> None:
        cset = self._set_of(pc)
        if pc in cset:
            cset[pc] = entry
            cset.move_to_end(pc)
            return
        if len(cset) >= self.assoc:
            cset.popitem(last=False)
        cset[pc] = entry

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


@dataclass
class _OpenRegion:
    """A footprint being collected from the retire stream."""

    owner_pc: int
    footprint: RegionFootprint
    is_call_footprint: bool


class ShotgunBtb:
    """The three-way split BTB plus retired-stream footprint learning."""

    def __init__(self, u_entries: int = 1536, c_entries: int = 128,
                 rib_entries: int = 512, u_assoc: int = 4,
                 c_assoc: int = 4, rib_assoc: int = 4,
                 block_size: int = CACHE_BLOCK_SIZE):
        self.u_btb = _AssocTable(u_entries, u_assoc, "u-btb")
        self.c_btb = _AssocTable(c_entries, c_assoc, "c-btb")
        self.rib = _AssocTable(rib_entries, rib_assoc, "rib")
        self.block_size = block_size
        self._open_regions: List[_OpenRegion] = []
        # Footprint accounting for Fig. 1.
        self.footprint_accesses = 0
        self.footprint_misses = 0

    # -- lookups ---------------------------------------------------------

    def lookup_unconditional(self, pc: int) -> Optional[UBtbEntry]:
        entry = self.u_btb.lookup(pc)
        if entry is not None:
            self.footprint_accesses += 1
            if not entry.call_footprint and not entry.return_footprint:
                self.footprint_misses += 1
        else:
            # A missing entry necessarily misses its footprints too.
            self.footprint_accesses += 1
            self.footprint_misses += 1
        return entry

    def lookup_conditional(self, pc: int) -> Optional[CBtbEntry]:
        return self.c_btb.lookup(pc)

    def lookup_return(self, pc: int) -> bool:
        return self.rib.lookup(pc) is not None

    @property
    def footprint_miss_ratio(self) -> float:
        if not self.footprint_accesses:
            return 0.0
        return self.footprint_misses / self.footprint_accesses

    # -- fills -------------------------------------------------------------

    def insert_branch(self, pc: int, kind: BranchKind,
                      target: Optional[int], prefilled: bool = False) -> None:
        """Route a branch to its table.  ``prefilled`` marks pre-decode
        fills, which can never carry footprints."""
        if kind is BranchKind.COND:
            if target is not None:
                self.c_btb.insert(pc, CBtbEntry(pc, target))
            return
        if kind is BranchKind.RETURN:
            self.rib.insert(pc, True)
            return
        existing = self.u_btb.peek(pc)
        if existing is not None:
            existing.target = target if target is not None else existing.target
            return
        self.u_btb.insert(pc, UBtbEntry(pc, target, kind, prefilled=prefilled))

    # -- footprint learning from the retire stream -------------------------

    MAX_OPEN_REGIONS = 4

    def retire_unconditional(self, pc: int, target: Optional[int],
                             kind: BranchKind,
                             return_site: Optional[int] = None) -> None:
        """An unconditional branch retired: close open regions, open new ones.

        The *call footprint* region anchors at the target block; for calls,
        a *return footprint* region anchors at the return-site block.
        """
        self.insert_branch(pc, kind, target)
        entry = self.u_btb.peek(pc)
        self._open_regions = [
            r for r in self._open_regions
            if self._install_if_done(r) is False
        ]
        if entry is None:
            return
        entry.prefilled = False
        if target is not None:
            self._open_regions.append(_OpenRegion(
                owner_pc=pc,
                footprint=RegionFootprint(anchor_block=target // self.block_size),
                is_call_footprint=True))
        if kind is BranchKind.CALL and return_site is not None:
            self._open_regions.append(_OpenRegion(
                owner_pc=pc,
                footprint=RegionFootprint(anchor_block=return_site // self.block_size),
                is_call_footprint=False))
        while len(self._open_regions) > self.MAX_OPEN_REGIONS:
            self._install_region(self._open_regions.pop(0))

    def _install_if_done(self, region: _OpenRegion) -> bool:
        """Close every region when a new unconditional retires: install."""
        self._install_region(region)
        return True

    def _install_region(self, region: _OpenRegion) -> None:
        entry = self.u_btb.peek(region.owner_pc)
        if entry is None or not region.footprint:
            return
        if region.is_call_footprint:
            entry.call_footprint = region.footprint
        else:
            entry.return_footprint = region.footprint

    def retire_block_access(self, block_addr: int) -> None:
        """Feed a retired demand block into all open footprint regions."""
        block = block_addr // self.block_size
        for region in self._open_regions:
            region.footprint.record(block)

    # -- storage ------------------------------------------------------------

    #: U-BTB entry: tag+target (~72b) + two footprints (2 x 8b) + kind.
    U_ENTRY_BITS = 72 + 16 + 3
    C_ENTRY_BITS = 40 + 32
    RIB_ENTRY_BITS = 40

    def storage_bytes(self) -> int:
        return (self.u_btb.n_entries * self.U_ENTRY_BITS +
                self.c_btb.n_entries * self.C_ENTRY_BITS +
                self.rib.n_entries * self.RIB_ENTRY_BITS) // 8
