"""Multi-core co-simulation: N frontends over a shared LLC and NoC.

The paper evaluates a sixteen-core CMP whose cores share a 32 MB LLC and
a mesh NoC.  This module co-simulates N per-core frontends in virtual-time
order: at every step the core with the smallest local clock advances by
one fetch record, so the shared structures (LLC contents, the contention
tracker that inflates fill latencies) see the cores' requests interleaved
the way concurrent cores would issue them.

Homogeneous mode (the paper's setup) runs each core on a different
*sample* of the same workload; heterogeneous mode mixes workloads, which
is exactly the case the paper notes defeats shared-history schemes like
SHIFT/Confluence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..frontend import FrontendConfig, FrontendSimulator, FrontendStats
from ..memory import DynamicallyVirtualizedLlc, LastLevelCache, LatencyModel
from ..workloads import Trace


@dataclass
class CoreResult:
    core: int
    workload: str
    stats: FrontendStats


@dataclass
class MulticoreResult:
    cores: List[CoreResult] = field(default_factory=list)

    @property
    def total_instructions(self) -> int:
        return sum(c.stats.instructions for c in self.cores)

    @property
    def aggregate_ipc(self) -> float:
        cycles = max((c.stats.total_cycles for c in self.cores), default=0)
        return self.total_instructions / cycles if cycles else 0.0

    def stats_of(self, core: int) -> FrontendStats:
        return self.cores[core].stats


class MulticoreSimulator:
    """Co-simulates one frontend per trace over shared LLC + bandwidth."""

    def __init__(self, traces: Sequence[Trace],
                 prefetcher_factory: Optional[Callable[[], object]] = None,
                 config: Optional[FrontendConfig] = None,
                 programs: Optional[Sequence] = None,
                 shared_llc_size: Optional[int] = None):
        if not traces:
            raise ValueError("need at least one core/trace")
        self.config = config or FrontendConfig()
        cfg = self.config
        llc_size = shared_llc_size if shared_llc_size is not None else \
            cfg.llc_size * len(traces)
        llc_cls = DynamicallyVirtualizedLlc if cfg.dv_llc else LastLevelCache
        self.llc = llc_cls(llc_size, cfg.llc_assoc, cfg.block_size)
        # One shared latency model: every core's fills add contention.
        self.latency = LatencyModel(cfg.latency)
        self.cores: List[FrontendSimulator] = []
        for i, trace in enumerate(traces):
            program = programs[i] if programs is not None else None
            prefetcher = prefetcher_factory() if prefetcher_factory else None
            self.cores.append(FrontendSimulator(
                trace, config=cfg, prefetcher=prefetcher, program=program,
                llc=self.llc, latency=self.latency))

    @classmethod
    def from_mix(cls, mix, n_records: int, scale: float = 1.0,
                 base_sample: int = 0, jobs: Optional[int] = None,
                 prefetcher_factory: Optional[Callable[[], object]] = None,
                 config: Optional[FrontendConfig] = None,
                 shared_llc_size: Optional[int] = None
                 ) -> "MulticoreSimulator":
        """Build a simulator for a :class:`~repro.multicore.mixes.WorkloadMix`.

        ``jobs`` parallelises the per-core trace generation (the setup
        cost, which dominates for short co-simulations); the simulation
        itself still interleaves cores in virtual-time order.
        """
        from .mixes import build_mix
        traces, programs = build_mix(mix, n_records, scale=scale,
                                     base_sample=base_sample, jobs=jobs)
        return cls(traces, prefetcher_factory=prefetcher_factory,
                   config=config, programs=programs,
                   shared_llc_size=shared_llc_size)

    def run(self, warmup: int = 0) -> MulticoreResult:
        """Advance all cores in virtual-time order until traces finish."""
        # Heap of (core_cycle, core_index, record_index).
        heap = [(0, i, 0) for i in range(len(self.cores))]
        heapq.heapify(heap)
        while heap:
            _cycle, i, idx = heapq.heappop(heap)
            core = self.cores[i]
            if idx == warmup and warmup > 0:
                core._reset_measurement()
            core.process_record(idx, core.trace[idx])
            if idx + 1 < len(core.trace):
                heapq.heappush(heap, (core.cycle, i, idx + 1))
        result = MulticoreResult()
        for i, core in enumerate(self.cores):
            result.cores.append(CoreResult(
                core=i, workload=core.trace.name, stats=core.finalize()))
        return result
