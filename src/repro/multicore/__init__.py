"""Multi-core co-simulation over a shared LLC and contention domain."""

from .mixes import (
    STANDARD_MIXES,
    WorkloadMix,
    build_mix,
    heterogeneous_mix,
    homogeneous_mix,
)
from .simulator import CoreResult, MulticoreResult, MulticoreSimulator

__all__ = [
    "MulticoreSimulator",
    "MulticoreResult",
    "CoreResult",
    "WorkloadMix",
    "homogeneous_mix",
    "heterogeneous_mix",
    "build_mix",
    "STANDARD_MIXES",
]
