"""Standard workload mixes for multi-core experiments.

CMP studies evaluate both *homogeneous* setups (every core runs a sample
of the same workload — the paper's own configuration) and *heterogeneous*
mixes (consolidated servers).  This module names canonical mixes and
builds the per-core traces/programs for :class:`MulticoreSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..workloads import get_generator, workload_names


@dataclass(frozen=True)
class WorkloadMix:
    """A named assignment of workloads to cores."""

    name: str
    assignments: Tuple[str, ...]

    @property
    def n_cores(self) -> int:
        return len(self.assignments)

    @property
    def homogeneous(self) -> bool:
        return len(set(self.assignments)) == 1


def homogeneous_mix(workload: str, n_cores: int = 4) -> WorkloadMix:
    if n_cores < 1:
        raise ValueError("need at least one core")
    return WorkloadMix(name=f"homo_{workload}_{n_cores}",
                       assignments=(workload,) * n_cores)


def heterogeneous_mix(workloads: Sequence[str],
                      name: str = "") -> WorkloadMix:
    if not workloads:
        raise ValueError("need at least one workload")
    known = set(workload_names())
    unknown = [w for w in workloads if w not in known]
    if unknown:
        raise ValueError(f"unknown workloads: {', '.join(unknown)}")
    return WorkloadMix(name=name or "mix_" + "_".join(workloads),
                       assignments=tuple(workloads))


#: Canonical mixes used by the multicore tests and examples.
STANDARD_MIXES: Dict[str, WorkloadMix] = {
    "oltp4": homogeneous_mix("oltp_db_a", 4),
    "web4": homogeneous_mix("web_apache", 4),
    "consolidated4": heterogeneous_mix(
        ("oltp_db_a", "web_apache", "media_streaming", "web_search"),
        name="consolidated4"),
    "webfarm4": heterogeneous_mix(
        ("web_apache", "web_zeus", "web_frontend", "web_apache"),
        name="webfarm4"),
}


def _generate_core_trace(payload: Tuple[str, float, int, int]):
    """Walk one core's trace (module-level so it can run in a worker)."""
    workload, scale, n_records, sample = payload
    return get_generator(workload, scale=scale).generate(n_records,
                                                         sample=sample)


def build_mix(mix: WorkloadMix, n_records: int, scale: float = 1.0,
              base_sample: int = 0, jobs: Optional[int] = None):
    """Materialise a mix: (traces, programs) ready for MulticoreSimulator.

    Cores running the same workload get *different* samples (independent
    request arrival orders), like distinct server threads.  Per-core
    trace walks are independent, so ``jobs > 1`` generates them in
    parallel; sample seeding keeps the traces identical either way.
    """
    sample_counters: Dict[str, int] = {}
    payloads: List[Tuple[str, float, int, int]] = []
    for workload in mix.assignments:
        sample = base_sample + sample_counters.get(workload, 0)
        sample_counters[workload] = sample_counters.get(workload, 0) + 1
        payloads.append((workload, scale, n_records, sample))
    from ..experiments.parallel import map_parallel
    traces = map_parallel(_generate_core_trace, payloads, jobs=jobs)
    programs = [get_generator(w, scale=scale).program
                for w in mix.assignments]
    return traces, programs
