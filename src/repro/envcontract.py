"""The environment-variable contract: every ``REPRO_*`` knob, declared.

The simulator's behaviour-affecting environment variables are easy to
grow and easy to rot: a reading site with a typo'd name silently falls
back to its default, a renamed variable leaves dead documentation, and
two sites can disagree about what "unset" means.  This module is the
single source of truth the ENV lint pack checks reads against
(``ENV001``-``ENV003``) and the generator for the docs table and the
CI artifact (``repro lint --env-table``).

Declaring a variable here is a *contract*: the name is reserved, the
type documents how the raw string is interpreted, and ``default`` is
the exact fallback every reading site must pass (``None`` means the
site reads ``os.environ.get(NAME)`` with no fallback and handles the
missing case itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["EnvVar", "CONTRACT", "contract", "render_markdown"]


@dataclass(frozen=True)
class EnvVar:
    """One declared environment variable."""

    name: str
    #: How the raw string is interpreted: ``flag`` (truthy strings),
    #: ``path``, ``int``, ``float`` or ``bytes`` (size suffixes).
    type: str
    #: The fallback every reading site must use; ``None`` = no fallback.
    default: Optional[str]
    description: str


CONTRACT: Tuple[EnvVar, ...] = (
    EnvVar("REPRO_CACHE_DIR", "path", None,
           "Root of the sharded result store; unset picks the "
           "platform cache directory."),
    EnvVar("REPRO_CACHE_DISABLE", "flag", "",
           "Set to 1/true/yes to bypass the result store entirely "
           "(every run recomputes)."),
    EnvVar("REPRO_CACHE_BUDGET", "bytes", None,
           "LRU eviction budget for the store, e.g. 500M or 2G; "
           "unset means unbounded."),
    EnvVar("REPRO_JOBS", "int", "",
           "Worker-process count for parallel sweeps and the lint "
           "file pass; empty/unset means serial."),
    EnvVar("REPRO_NO_COMPILE", "flag", "",
           "Set to disable the specialised hot-path dispatch in the "
           "proactive prefetcher (debugging aid)."),
    EnvVar("REPRO_NO_NUMPY", "flag", None,
           "Set to force the pure-python struct-of-arrays fallback "
           "even when numpy imports."),
    EnvVar("REPRO_TRACE_SAMPLE", "float", "",
           "Trace sampling rate in [0, 1]; empty/unset falls back to "
           "the tracer's compiled-in default."),
)


def contract() -> Dict[str, EnvVar]:
    """The declared variables, keyed by name."""
    return {var.name: var for var in CONTRACT}


def _show_default(default: Optional[str]) -> str:
    if default is None:
        return "*(none)*"
    if default == "":
        return '`""`'
    return f"`{default}`"


def render_markdown() -> str:
    """The contract as a GitHub-flavoured markdown table.

    This exact text is embedded in ``docs/static-analysis.md`` (a test
    keeps the two in sync) and uploaded as a CI artifact via
    ``repro lint --env-table``.
    """
    lines = [
        "| variable | type | default | description |",
        "|---|---|---|---|",
    ]
    for var in CONTRACT:
        lines.append(f"| `{var.name}` | {var.type} | "
                     f"{_show_default(var.default)} | {var.description} |")
    return "\n".join(lines) + "\n"
