"""Trace-level predictability studies behind the paper's motivation figures.

* Fig. 6 — stability of the "which of the four subsequent blocks get
  accessed" pattern across a block's cache residencies;
* Fig. 7 — stability of the branch instruction responsible for a block's
  discontinuities;
* Fig. 8 — how many branches per block a branch footprint must store;
* Fig. 9 — how many branch footprints per LLC set are needed.

These are functional analyses: they run over the trace (plus a functional
cache model where residency matters) without the timing machinery.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Sequence

from ..cfg import Program
from ..isa import CACHE_BLOCK_SIZE
from ..memory import DynamicallyVirtualizedLlc
from ..workloads import Trace


def next4_pattern_predictability(trace: Trace, l1i_size: int = 32 * 1024,
                                 l1i_assoc: int = 8,
                                 block_size: int = CACHE_BLOCK_SIZE) -> float:
    """Fig. 6: per-bit accuracy of predicting a block's next-4 access
    pattern from its previous residency's pattern.

    A functional L1i tracks residencies.  While block ``B`` is resident,
    accesses to ``B+1 .. B+4`` set bits in its pattern; on eviction the
    pattern is compared bit-by-bit with the pattern of ``B``'s previous
    residency.
    """
    n_sets = l1i_size // block_size // l1i_assoc
    sets: List[OrderedDict] = [OrderedDict() for _ in range(n_sets)]
    patterns: Dict[int, int] = {}       # resident block -> current pattern
    last_pattern: Dict[int, int] = {}   # block -> pattern at last eviction
    matches = 0
    total = 0

    def evict(block: int) -> None:
        nonlocal matches, total
        pat = patterns.pop(block, 0)
        prev = last_pattern.get(block)
        if prev is not None:
            for i in range(4):
                total += 1
                if (pat >> i & 1) == (prev >> i & 1):
                    matches += 1
        last_pattern[block] = pat

    for record in trace:
        block = record.line // block_size
        # Mark this access in the patterns of the four preceding blocks.
        for back in range(1, 5):
            pred = block - back
            if pred in patterns:
                patterns[pred] |= 1 << (back - 1)
        cset = sets[block % n_sets]
        if block in cset:
            cset.move_to_end(block)
            continue
        if len(cset) >= l1i_assoc:
            victim, _ = cset.popitem(last=False)
            evict(victim)
        cset[block] = True
        patterns.setdefault(block, 0)

    return matches / total if total else 0.0


def discontinuity_branch_predictability(trace: Trace,
                                        block_size: int = CACHE_BLOCK_SIZE
                                        ) -> float:
    """Fig. 7: fraction of consecutive discontinuities out of the same
    block that were caused by the same branch instruction."""
    last_branch: Dict[int, int] = {}
    same = 0
    total = 0
    prev = None
    for record in trace:
        if prev is not None and not record.seq \
                and record.line != prev.line \
                and prev.has_branch and prev.taken:
            src_block = prev.branch_pc // block_size
            seen = last_branch.get(src_block)
            if seen is not None:
                total += 1
                if seen == prev.branch_pc:
                    same += 1
            last_branch[src_block] = prev.branch_pc
        prev = record
    return same / total if total else 0.0


def uncovered_branches_by_footprint_size(program: Program,
                                         max_branches: int = 6
                                         ) -> Dict[int, float]:
    """Fig. 8: fraction of branches left uncovered when a branch footprint
    stores at most ``k`` branches per cache block, for k = 1..max."""
    per_block: List[int] = []
    for line in program.lines():
        n = len(program.branch_byte_offsets(line))
        if n:
            per_block.append(n)
    total = sum(per_block)
    out: Dict[int, float] = {}
    for k in range(1, max_branches + 1):
        covered = sum(min(n, k) for n in per_block)
        out[k] = 1.0 - covered / total if total else 0.0
    return out


def uncovered_footprints_by_slots(trace: Trace, program: Program,
                                  slots: Sequence[int] = (1, 2, 3, 4),
                                  llc_size: int = 2 * 1024 * 1024,
                                  llc_assoc: int = 16) -> Dict[int, float]:
    """Fig. 9: BF fetch miss ratio as a function of footprints per LLC set.

    Replays the instruction stream through a DV-LLC configured with ``k``
    footprint slots per set; every block access first asks for the
    block's footprint and stores it on a miss, so the steady-state miss
    ratio measures how often ``k`` slots are insufficient.
    """
    out: Dict[int, float] = {}
    for k in slots:
        llc = DynamicallyVirtualizedLlc(llc_size, llc_assoc, bf_slots=k)
        stored_once = set()
        half = len(trace) // 2
        covered = 0
        uncovered = 0
        for i, record in enumerate(trace):
            llc.access(record.line, is_instruction=True)
            offsets = program.branch_byte_offsets(record.line)
            if not offsets:
                continue  # branchless blocks own no footprint
            got = llc.get_footprint(record.line)
            if i >= half and record.line in stored_once:
                # A re-lookup of a previously constructed footprint: a
                # miss now means the k slots were insufficient (cold
                # first-touches are not capacity effects).
                if got is None:
                    uncovered += 1
                else:
                    covered += 1
            if got is None:
                llc.store_footprint(record.line, offsets)
                stored_once.add(record.line)
        total = covered + uncovered
        out[k] = uncovered / total if total else 0.0
    return out
