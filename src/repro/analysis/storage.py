"""Storage-budget accounting behind the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

KB = 1024


@dataclass(frozen=True)
class StorageItem:
    name: str
    bits_per_entry: int
    entries: int

    @property
    def bytes(self) -> int:
        return self.bits_per_entry * self.entries // 8


def _total(items: List[StorageItem]) -> int:
    return sum(i.bytes for i in items)


def sn4l_dis_btb_budget(l1i_lines: int = 512) -> Tuple[List[StorageItem], int]:
    """Paper Section VI-D3: the 7.6 KB of SN4L+Dis+BTB."""
    items = [
        StorageItem("SeqTable (16 K x 1 bit)", 1, 16 * 1024),
        StorageItem("DisTable (4 K x (4-bit tag + 4-bit offset))", 8, 4096),
        StorageItem("BTB prefetch buffer (32 x ~2 Kb/8)", 8 * 32, 32),
        StorageItem("L1i local status + prefetch flag", 5, l1i_lines),
        StorageItem("SeqQueue/DisQueue/RLUQueue (3 x 16 x ~43 bits)",
                    43, 48),
        StorageItem("RLU (8 x 40-bit tags)", 40, 8),
    ]
    return items, _total(items)


def shotgun_budget() -> Tuple[List[StorageItem], int]:
    """Shotgun's ~6 KB of additions over a conventional BTB."""
    items = [
        StorageItem("U-BTB footprint + size fields (1.5 K x ~19 bits)",
                    19, 1536),
        StorageItem("L1i prefetch buffer (64 x (tag + 64 B))",
                    (40 + 64 * 8), 64),
        StorageItem("BTB prefetch buffer (32 x ~2 Kb/8)", 8 * 32, 32),
    ]
    return items, _total(items)


def confluence_budget() -> Tuple[List[StorageItem], int]:
    """Confluence/SHIFT: >200 KB of metadata virtualized in the LLC."""
    items = [
        StorageItem("SHIFT history buffer (32 K x ~26 bits, in LLC)",
                    26, 32 * 1024),
        StorageItem("SHIFT index (8 K x ~30 bits, in LLC)", 30, 8 * 1024),
        StorageItem("LLC tag extensions (SHIFT-style virtualization)",
                    4, 32 * 1024),
    ]
    return items, _total(items)


#: Declared per-core metadata budget (bytes) for every registered
#: scheme, the binding target of the BUD004 lint rule: the rule folds
#: each ``SCHEMES`` factory's table geometry out of the source and
#: fails when the recomputed figure exceeds (or the scheme is missing
#: from) this table.  The caps equal today's folds exactly, so *any*
#: geometry drift — a bumped default left over from a sweep, a new zoo
#: scheme without a declared budget — trips the gate.  Schemes whose
#: storage is architectural state only (perfect-Lxi oracles, plain
#: next-line) declare 0.
SCHEME_METADATA_BUDGETS: Dict[str, int] = {
    "baseline": 0,
    "nl": 0,
    "n2l": 0,
    "n4l": 0,
    "n8l": 0,
    # 64-entry L1i prefetch buffer: (40-bit tag + 64 B line) / entry.
    "nl_buf": 4416,
    "n2l_buf": 4416,
    "n4l_buf": 4416,
    "n8l_buf": 4416,
    # SeqTable (16 K x 1 bit) + L1i local status/prefetch flag.
    "sn4l": 2368,
    # DisTable + L1i status + queues/RLU (no SeqTable, no BTB buffer).
    "dis": 4714,
    "sn4l_dis": 6762,
    # The paper's proposal: the full Table II fold (seed tree 7562 B,
    # inside the 7786 B / 7.6 KB claim).
    "sn4l_dis_btb": 7562,
    "discontinuity": 8704,   # 2 K untagged entries x 34-bit targets
    "nlmiss": 0,
    "adaptive_nxl": 8,       # one depth/accuracy register
    "nltagged": 0,
    "tifs": 34304,           # 8 K-entry history + index
    "pif": 205824,           # 48 K-entry history + index
    "rdip": 84992,           # 2 K signatures x (20 + 12 x 26) bits
    "fdip": 256,             # 32-deep FTQ x 8 B
    "confluence": 137216,    # 32 K-entry SHIFT history + index
    "boomerang": 256,        # 32-deep FTQ x 8 B
    # Split-BTB additions over a conventional 2 K x 50-bit BTB, plus
    # both prefetch buffers.
    "shotgun": 13600,
    "perfect_l1i": 0,
    "perfect_l1i_btb": 0,
}


def comparison_table() -> Dict[str, Dict[str, object]]:
    """Rows of Table II: storage, structural requirements, scalability."""
    _, ours = sn4l_dis_btb_budget()
    _, shotgun = shotgun_budget()
    _, confluence = confluence_budget()
    return {
        "sn4l_dis_btb": {
            "storage_bytes": ours,
            "btb_modification": False,
            "instruction_prefetch_buffer": False,
            "scalability_bytes": 6 * KB,   # doubling SeqTable + DisTable
            "search_complexity": "low",
            "modular": True,
            "handles_large_workloads": True,
        },
        "shotgun": {
            "storage_bytes": shotgun,
            "btb_modification": True,
            "instruction_prefetch_buffer": True,
            "scalability_bytes": 20 * KB,  # doubling the U-BTB
            "search_complexity": "high",
            "modular": False,
            "handles_large_workloads": False,
        },
        "confluence": {
            "storage_bytes": confluence,
            "btb_modification": True,
            "instruction_prefetch_buffer": False,
            "scalability_bytes": None,
            "search_complexity": "high",
            "modular": False,
            "handles_large_workloads": True,
        },
    }
