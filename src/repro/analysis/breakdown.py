"""Cycle-stack (stall breakdown) reporting.

Architecture papers reason about where cycles go; this module turns a
run's :class:`~repro.frontend.stats.FrontendStats` into a normalized
cycle stack and renders it as text bars, so any experiment can show *why*
a scheme won, not just that it did.
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..frontend.stats import FrontendStats

#: Cycle-stack categories, in display order.
CATEGORIES = ("delivery", "icache", "btb", "mispredict", "backend")


def cycle_stack(stats: FrontendStats) -> Dict[str, float]:
    """Fractions of total cycles per category (sums to 1)."""
    total = stats.total_cycles
    if total <= 0:
        return {c: 0.0 for c in CATEGORIES}
    return {
        "delivery": stats.delivery_cycles / total,
        "icache": stats.icache_stall_cycles / total,
        "btb": stats.btb_stall_cycles / total,
        "mispredict": stats.mispredict_stall_cycles / total,
        "backend": stats.backend_cycles / total,
    }


def frontend_bound_fraction(stats: FrontendStats) -> float:
    """The slice of the cycle stack a frontend prefetcher can attack."""
    stack = cycle_stack(stats)
    return stack["icache"] + stack["btb"]


def render_cycle_stack(stats: FrontendStats, label: str = "",
                       width: int = 50) -> str:
    """One run's cycle stack as a labelled ASCII bar."""
    stack = cycle_stack(stats)
    lines = [f"cycle stack {label}".rstrip()]
    for cat in CATEGORIES:
        frac = stack[cat]
        bar = "#" * max(0, round(frac * width))
        lines.append(f"  {cat:10s} {frac:6.1%} {bar}")
    return "\n".join(lines)


def render_stack_comparison(runs: Mapping[str, FrontendStats],
                            width: int = 40) -> str:
    """Compare several runs' stacks; rows are schemes, columns categories."""
    header = f"{'scheme':16s}" + "".join(f"{c:>12s}" for c in CATEGORIES) \
        + f"{'cycles':>12s}"
    lines = [header]
    for name, stats in runs.items():
        stack = cycle_stack(stats)
        cells = "".join(f"{stack[c]:>12.1%}" for c in CATEGORIES)
        lines.append(f"{name:16s}{cells}{stats.total_cycles:>12d}")
    return "\n".join(lines)


def stall_reduction(baseline: FrontendStats,
                    scheme: FrontendStats) -> Dict[str, float]:
    """Per-category stall cycles removed relative to the baseline (can be
    negative when a scheme adds stalls of a category)."""
    out = {}
    for cat, base_attr in (("icache", "icache_stall_cycles"),
                           ("btb", "btb_stall_cycles"),
                           ("mispredict", "mispredict_stall_cycles")):
        base = getattr(baseline, base_attr)
        mine = getattr(scheme, base_attr)
        out[cat] = (base - mine) / base if base else 0.0
    return out
