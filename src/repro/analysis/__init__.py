"""Analysis utilities: metric aggregation, predictability studies, storage."""

from .breakdown import (
    CATEGORIES,
    cycle_stack,
    frontend_bound_fraction,
    render_cycle_stack,
    render_stack_comparison,
    stall_reduction,
)
from .metrics import (
    arithmetic_mean,
    average_over_workloads,
    fscr,
    geometric_mean,
    miss_coverage,
    normalize,
    per_kilo_instruction,
    speedup,
)
from .predictability import (
    discontinuity_branch_predictability,
    next4_pattern_predictability,
    uncovered_branches_by_footprint_size,
    uncovered_footprints_by_slots,
)
from .storage import (
    StorageItem,
    comparison_table,
    confluence_budget,
    shotgun_budget,
    sn4l_dis_btb_budget,
)

__all__ = [
    "arithmetic_mean",
    "geometric_mean",
    "speedup",
    "miss_coverage",
    "fscr",
    "normalize",
    "per_kilo_instruction",
    "average_over_workloads",
    "next4_pattern_predictability",
    "discontinuity_branch_predictability",
    "uncovered_branches_by_footprint_size",
    "uncovered_footprints_by_slots",
    "StorageItem",
    "sn4l_dis_btb_budget",
    "shotgun_budget",
    "confluence_budget",
    "comparison_table",
    "cycle_stack",
    "frontend_bound_fraction",
    "render_cycle_stack",
    "render_stack_comparison",
    "stall_reduction",
    "CATEGORIES",
]
