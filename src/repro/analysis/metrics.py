"""Aggregation helpers for the paper's metrics."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("mean of no values")
    return sum(vals) / len(vals)


def geometric_mean(values: Sequence[float]) -> float:
    """The conventional aggregate for speedups across workloads."""
    vals = list(values)
    if not vals:
        raise ValueError("geomean of no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline_cycles: float, scheme_cycles: float) -> float:
    if scheme_cycles <= 0:
        raise ValueError("cycles must be positive")
    return baseline_cycles / scheme_cycles


def miss_coverage(baseline_misses: float, scheme_misses: float) -> float:
    """Fraction of baseline misses the scheme eliminated (floored at 0)."""
    if baseline_misses <= 0:
        return 0.0
    return max(0.0, 1.0 - scheme_misses / baseline_misses)


def fscr(baseline_stalls: float, scheme_stalls: float) -> float:
    """Frontend Stall Cycle Reduction (Fig. 15)."""
    if baseline_stalls <= 0:
        return 0.0
    return 1.0 - scheme_stalls / baseline_stalls


def normalize(values: Mapping[str, float], base_key: str) -> Dict[str, float]:
    """Normalise a per-scheme metric to one scheme (e.g. lookups, Fig. 14)."""
    base = values[base_key]
    if base == 0:
        raise ValueError(f"cannot normalise to zero {base_key!r}")
    return {k: v / base for k, v in values.items()}


def per_kilo_instruction(count: float, instructions: int) -> float:
    if instructions <= 0:
        raise ValueError("instructions must be positive")
    return count * 1000.0 / instructions


def average_over_workloads(per_workload: Mapping[str, Mapping[str, float]],
                           metric_keys: Iterable[str],
                           geo: bool = False) -> Dict[str, float]:
    """Average a {workload: {metric: value}} nest across workloads."""
    out: Dict[str, float] = {}
    names = list(per_workload)
    for key in metric_keys:
        vals = [per_workload[w][key] for w in names]
        out[key] = geometric_mean(vals) if geo else arithmetic_mean(vals)
    return out
