"""Fig. 1: Shotgun's U-BTB footprint miss ratio per workload.

Paper: footprint misses are frequent, ranging from 4% to 31%, with
OLTP (DB A) the worst."""

from conftest import BENCH_RECORDS

from repro.experiments import figures, render_per_workload


def test_fig01_footprint_miss_ratio(once):
    data = once(figures.fig01_footprint_miss_ratio,
                n_records=BENCH_RECORDS)
    print()
    print(render_per_workload("Fig 1: Shotgun U-BTB footprint miss ratio",
                              data))
    values = list(data.values())
    # Shape: frequent misses across the board, OLTP (DB A) the highest.
    assert all(0.01 <= v <= 0.6 for v in values)
    assert max(data, key=data.get) == "oltp_db_a"
    assert data["oltp_db_a"] > 2 * min(values)
