"""Ablations of the proactive chain (paper Section V-B design choices).

1. Chain depth: "four is a reasonable threshold to terminate the chain".
2. Chain width: SN1L past the first discontinuity trades accuracy for
   timeliness; SN4L everywhere issues more useless prefetches.
"""

from conftest import BENCH_RECORDS

from repro.core import sn4l_dis_btb
from repro.experiments import run_scheme

WORKLOADS = ["web_apache", "oltp_db_a"]


def run_depths():
    out = {}
    for depth in (1, 2, 4, 8):
        for w in WORKLOADS:
            res = run_scheme(
                w, "sn4l_dis_btb", n_records=BENCH_RECORDS,
                prefetcher_factory=lambda d=depth: sn4l_dis_btb(max_depth=d),
                cache_key_extra=f"depth={depth}")
            base = run_scheme(w, "baseline", n_records=BENCH_RECORDS)
            out.setdefault(depth, []).append(
                (res.stats.speedup_over(base.stats),
                 res.stats.prefetch_accuracy))
    return {d: (sum(s for s, _ in v) / len(v), sum(a for _, a in v) / len(v))
            for d, v in out.items()}


def test_chain_depth(once):
    data = once(run_depths)
    print()
    print(f"{'depth':>6s} {'speedup':>8s} {'accuracy':>9s}")
    for depth, (sp, acc) in sorted(data.items()):
        print(f"{depth:>6d} {sp:8.3f} {acc:9.1%}")
    # Depth helps up to the paper's choice of 4...
    assert data[4][0] >= data[1][0] - 0.005
    # ...with diminishing returns beyond it.
    assert data[8][0] - data[4][0] <= data[4][0] - data[1][0] + 0.01


def run_widths():
    out = {}
    for width in (1, 4):
        speeds, accs = [], []
        for w in WORKLOADS:
            res = run_scheme(
                w, "sn4l_dis_btb", n_records=BENCH_RECORDS,
                prefetcher_factory=lambda c=width: sn4l_dis_btb(
                    chain_width=c),
                cache_key_extra=f"width={width}")
            base = run_scheme(w, "baseline", n_records=BENCH_RECORDS)
            speeds.append(res.stats.speedup_over(base.stats))
            accs.append(res.stats.prefetch_accuracy)
        out[width] = (sum(speeds) / len(speeds), sum(accs) / len(accs))
    return out


def test_chain_width(once):
    data = once(run_widths)
    print()
    print(f"{'width':>6s} {'speedup':>8s} {'accuracy':>9s}")
    for width, (sp, acc) in sorted(data.items()):
        print(f"{width:>6d} {sp:8.3f} {acc:9.1%}")
    # SN1L past discontinuities (the paper's pick) is at least as
    # accurate as chaining full SN4L windows.
    assert data[1][1] >= data[4][1] - 0.01
    # And performance is essentially equivalent.
    assert abs(data[1][0] - data[4][0]) < 0.05
