"""Shared configuration for the per-figure benchmarks.

Every benchmark regenerates one of the paper's tables/figures.  All of
them share the same trace length so the cached baseline runs are reused
across benchmark modules within one pytest session; pytest-benchmark's
timing then reports the cost of each figure's *additional* simulations.
"""

import pytest

#: Records per workload trace (warmup = first third).  Shorter than the
#: full experiment default so the whole suite stays in the minutes range;
#: run the examples/ scripts for full-length numbers.
BENCH_RECORDS = 45_000


@pytest.fixture
def once(benchmark):
    """Run the figure driver exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
