"""Fig. 18: SN4L+Dis+BTB's speedup over Shotgun as the BTB shrinks.

Paper: the smaller the BTB (i.e. the more BTB misses, as in commercial
workloads with huge footprints), the wider the gap in our favour."""

from conftest import BENCH_RECORDS

from repro.experiments import figures, render_sweep

WORKLOADS = ["oltp_db_a", "web_apache", "web_search"]


def test_fig18_btb_size_sweep(once):
    data = once(figures.fig18_btb_sweep, WORKLOADS,
                n_records=BENCH_RECORDS)
    print()
    print(render_sweep("Fig 18: ours/Shotgun speedup vs BTB budget",
                       data, x_name="btb_entries"))
    sizes = sorted(data, reverse=True)  # 2048 ... 256
    # We win at every size, and the advantage grows as the BTB shrinks.
    assert all(data[s] > 0.98 for s in sizes)
    assert data[sizes[-1]] > data[sizes[0]]
