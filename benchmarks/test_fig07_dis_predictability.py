"""Fig. 7: predictability of the discontinuity-causing branch.

Paper: 78-83% (avg 80%) of consecutive discontinuities out of a block
are caused by the same single branch instruction."""

from conftest import BENCH_RECORDS

from repro.analysis import arithmetic_mean
from repro.experiments import figures, render_per_workload


def test_fig07_predictability(once):
    data = once(figures.fig07_dis_predictability, n_records=BENCH_RECORDS)
    print()
    print(render_per_workload(
        "Fig 7: same-branch discontinuity predictability", data))
    avg = arithmetic_mean(list(data.values()))
    print(f"average            {avg:.1%}")
    assert 0.6 <= avg <= 0.95  # paper: 0.80
    for workload, value in data.items():
        assert value >= 0.5, workload
